//! Crash and recovery: demonstrate WAFL's consistency guarantees (§II-C).
//!
//! 1. Acknowledged writes are logged to NVRAM before the reply.
//! 2. A consistency point atomically persists a batch by overwriting the
//!    superblock after all data and metafiles are on disk.
//! 3. After a crash, the last committed CP's image is loaded and the
//!    NVRAM log is replayed — no acknowledged write is ever lost, and no
//!    committed block is ever clobbered by post-recovery allocation.
//!
//! ```sh
//! cargo run --release --example crash_replay
//! ```

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn main() {
    let geometry = GeometryBuilder::new()
        .aa_stripes(256)
        .raid_group(3, 1, 32 * 1024)
        .build();
    let fs = Filesystem::new(
        FsConfig::default(),
        geometry,
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));

    // Generation 1: committed by a CP.
    for fbn in 0..128 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    let r = fs.run_cp();
    println!(
        "CP {} committed generation 1 ({} buffers)",
        r.cp_id, r.buffers_cleaned
    );

    // Generation 2: acknowledged (in NVRAM) but NOT yet committed.
    for fbn in 0..64 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    fs.create_file(VolumeId(0), FileId(2));
    fs.write(VolumeId(0), FileId(2), 0, 0xCAFE);
    println!(
        "acknowledged 65 more writes (NVRAM log holds {} ops)",
        fs.nvlog().current_len()
    );

    // CRASH. All in-memory state is lost; the drives and the committed
    // superblock survive; the NVRAM log survives (it is nonvolatile).
    println!("-- simulated crash --");
    let recovered = fs.crash_and_recover(ExecMode::Inline);

    // Replay restored the acknowledged-but-uncommitted state:
    for fbn in 0..64 {
        assert_eq!(
            recovered.read(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 2)),
            "replayed overwrite at fbn {fbn}"
        );
    }
    for fbn in 64..128 {
        assert_eq!(
            recovered.read(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 1)),
            "committed generation-1 block at fbn {fbn}"
        );
    }
    assert_eq!(recovered.read(VolumeId(0), FileId(2), 0), Some(0xCAFE));
    println!("recovery verified: generation 2 replayed over the generation-1 image");

    // The replayed ops commit durably on the next CP, and new allocation
    // never clobbers pre-crash committed blocks.
    let r = recovered.run_cp();
    println!(
        "post-recovery CP {} cleaned {} buffers",
        r.cp_id, r.buffers_cleaned
    );
    assert_eq!(
        recovered.read_persisted(VolumeId(0), FileId(1), 10),
        Some(stamp(1, 10, 2))
    );
    assert_eq!(
        recovered.read_persisted(VolumeId(0), FileId(1), 100),
        Some(stamp(1, 100, 1))
    );
    recovered
        .verify_integrity()
        .expect("consistent after recovery");

    // Double crash: crash again right after recovery, before the CP's
    // log is re-committed… state must still be exact.
    let twice = recovered.crash_and_recover(ExecMode::Inline);
    assert_eq!(
        twice.read(VolumeId(0), FileId(1), 10),
        Some(stamp(1, 10, 2))
    );
    assert_eq!(twice.read(VolumeId(0), FileId(2), 0), Some(0xCAFE));
    twice
        .verify_integrity()
        .expect("consistent after double crash");
    println!("double-crash recovery verified — done");
}
