//! NFS filer: many small files, metadata-heavy traffic — the batched
//! inode cleaning scenario of §V-C. Runs the same workload twice on the
//! real file system, with batching enabled and disabled, and compares
//! cleaner-message counts per CP.
//!
//! ```sh
//! cargo run --release --example filer_nfs
//! ```

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

const FILES: u64 = 2_000;
const ROUNDS: u64 = 3;

fn run(batching: bool) -> (u64, u64, std::time::Duration) {
    let geometry = GeometryBuilder::new()
        .aa_stripes(512)
        .raid_group(4, 1, 128 * 1024)
        .build();
    let mut cfg = FsConfig::default();
    cfg.cleaner.batching = batching;
    cfg.cleaner.threads = 2;
    let fs = Filesystem::new(cfg, geometry, DriveKind::Ssd, ExecMode::Inline);
    fs.create_volume(VolumeId(0));
    for f in 0..FILES {
        fs.create_file(VolumeId(0), FileId(f));
    }

    let t0 = std::time::Instant::now();
    let mut total_msgs = 0u64;
    let mut total_buffers = 0u64;
    for round in 1..=ROUNDS {
        // Each round dirties every file with 1–3 blocks (metadata-ish +
        // small appends) — "large numbers of inodes … each has few dirty
        // buffers" (§V-C).
        for f in 0..FILES {
            let blocks = 1 + (f % 3);
            for fbn in 0..blocks {
                fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, round));
            }
        }
        let report = fs.run_cp();
        total_msgs += report.cleaner_messages as u64;
        total_buffers += report.buffers_cleaned as u64;
    }
    let elapsed = t0.elapsed();
    fs.verify_integrity().expect("consistent");
    (total_msgs, total_buffers, elapsed)
}

fn main() {
    let (batched_msgs, buffers, t_on) = run(true);
    let (unbatched_msgs, buffers2, t_off) = run(false);
    assert_eq!(buffers, buffers2);
    println!("NFS-mix: {FILES} files × {ROUNDS} rounds, {buffers} buffers cleaned");
    println!("  batching ON : {batched_msgs:>6} cleaner messages  ({t_on:.2?})");
    println!("  batching OFF: {unbatched_msgs:>6} cleaner messages  ({t_off:.2?})");
    println!(
        "  message reduction: {:.1}×",
        unbatched_msgs as f64 / batched_msgs as f64
    );
    assert!(
        batched_msgs * 2 < unbatched_msgs,
        "batching should fold many inodes per message"
    );
    println!("done");
}
