//! OLTP storage server: drive the *real* file system (not the simulator)
//! with an OLTP-like read/write mix from multiple client threads while
//! consistency points run back to back, with the dynamic cleaner tuner
//! adjusting the cleaner-thread count from measured utilization (§V-B).
//!
//! ```sh
//! cargo run --release --example oltp_server
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wafl::{DynamicTuner, ExecMode, FileId, Filesystem, FsConfig, TunerConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

const CLIENTS: usize = 4;
const FILES_PER_CLIENT: u64 = 8;
const FILE_BLOCKS: u64 = 512;
const RUN: Duration = Duration::from_millis(1500);

fn main() {
    let geometry = GeometryBuilder::new()
        .aa_stripes(512)
        .raid_group(6, 1, 128 * 1024)
        .build();
    let mut cfg = FsConfig::default();
    cfg.cleaner.threads = 4;
    let fs = Arc::new(Filesystem::new(
        cfg,
        geometry,
        DriveKind::Ssd,
        ExecMode::Pool(2),
    ));

    // Data set: each client owns FILES_PER_CLIENT files, pre-filled.
    fs.create_volume(VolumeId(0));
    for c in 0..CLIENTS as u64 {
        for f in 0..FILES_PER_CLIENT {
            let file = FileId(c * FILES_PER_CLIENT + f);
            fs.create_file(VolumeId(0), file);
            for fbn in 0..FILE_BLOCKS {
                fs.write(VolumeId(0), file, fbn, stamp(file.0, fbn, 0));
            }
        }
    }
    fs.run_cp();
    println!("pre-filled {} files", CLIENTS as u64 * FILES_PER_CLIENT);

    // Client threads: 2:1 read/write mix over random blocks.
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for c in 0..CLIENTS as u64 {
        let fs = Arc::clone(&fs);
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        clients.push(std::thread::spawn(move || {
            // Simple xorshift for thread-local randomness.
            let mut x = 0x9e3779b9u64.wrapping_mul(c + 1);
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let mut version = 1u64;
            // ordering: shutdown flag; no data is published through it.
            while !stop.load(Ordering::Relaxed) {
                let file = FileId(c * FILES_PER_CLIENT + rng() % FILES_PER_CLIENT);
                let fbn = rng() % FILE_BLOCKS;
                if rng() % 3 == 0 {
                    version += 1;
                    fs.write(VolumeId(0), file, fbn, stamp(file.0, fbn, version));
                } else {
                    let _ = fs.read(VolumeId(0), file, fbn);
                }
                // ordering: statistics counter; staleness is acceptable.
                ops.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // CP loop + dynamic tuner: run CPs back to back; every interval feed
    // the measured cleaner utilization to the tuner and actuate the pool.
    let mut tuner = DynamicTuner::new(
        TunerConfig {
            max_threads: 4,
            ..TunerConfig::default()
        },
        2,
    );
    let start = Instant::now();
    let mut cps = 0u32;
    let mut last_busy = 0u64;
    let mut last_tick = Instant::now();
    while start.elapsed() < RUN {
        let report = fs.run_cp();
        cps += 1;
        if last_tick.elapsed() >= Duration::from_millis(50) {
            let busy = fs.cleaner_pool().busy_ns();
            let window = last_tick.elapsed().as_nanos() as u64;
            let active = fs.cleaner_pool().active_limit() as u64;
            let util = ((busy - last_busy) as f64 / (window * active) as f64).clamp(0.0, 1.0);
            let target = tuner.decide(util);
            fs.cleaner_pool().set_active_limit(target);
            last_busy = busy;
            last_tick = Instant::now();
        }
        if cps.is_multiple_of(50) {
            println!(
                "cp {:>4}: {} buffers, {} msgs, active cleaners {}",
                report.cp_id,
                report.buffers_cleaned,
                report.cleaner_messages,
                fs.cleaner_pool().active_limit()
            );
        }
    }
    // ordering: shutdown flag; no data is published through it.
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    // Final CP so every acknowledged write is durable.
    fs.run_cp();

    // ordering: statistics counter; staleness is acceptable.
    let total = ops.load(Ordering::Relaxed);
    println!(
        "ran {} client ops across {} CPs in {:?} (tuner: {} activations, {} deactivations)",
        total,
        cps,
        start.elapsed(),
        tuner.activations(),
        tuner.deactivations()
    );
    fs.verify_integrity().expect("consistent after OLTP run");
    println!("integrity verified — done");
}
