//! Snapshots: retained consistency-point images (§II-C — "each CP is a
//! self-consistent point-in-time image"). Demonstrates block sharing,
//! overwrite protection, reading old data, and space reclamation on
//! snapshot delete.
//!
//! ```sh
//! cargo run --release --example snapshots
//! ```

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn main() {
    let fs = Filesystem::new(
        FsConfig::default(),
        GeometryBuilder::new()
            .aa_stripes(256)
            .raid_group(4, 1, 32 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));

    // Version 1 of a 256-block file.
    for fbn in 0..256 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    fs.create_snapshot(VolumeId(0), "monday");
    let free_after_snap = fs.allocator().infra().aggmap().free_count();
    println!("took snapshot 'monday' (free blocks: {free_after_snap})");

    // Overwrite the whole file: copy-on-write allocates 256 new blocks;
    // the old ones now belong to the snapshot.
    for fbn in 0..256 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    fs.run_cp();
    let free_now = fs.allocator().infra().aggmap().free_count();
    println!(
        "overwrote the file: {} new blocks consumed, old blocks retained by the snapshot",
        free_after_snap - free_now
    );

    // Both versions are readable.
    assert_eq!(
        fs.read_persisted(VolumeId(0), FileId(1), 100),
        Some(stamp(1, 100, 2))
    );
    assert_eq!(
        fs.read_snapshot(VolumeId(0), "monday", FileId(1), 100),
        Some(stamp(1, 100, 1))
    );
    println!("active file reads v2; snapshot 'monday' reads v1");

    // Snapshots survive crashes (they are part of the committed image).
    let fs = fs.crash_and_recover(ExecMode::Inline);
    assert_eq!(
        fs.read_snapshot(VolumeId(0), "monday", FileId(1), 100),
        Some(stamp(1, 100, 1))
    );
    println!("snapshot survived a crash + NVRAM replay");

    // Deleting the snapshot reclaims the 256 exclusively-owned blocks.
    let reclaimed = fs.delete_snapshot(VolumeId(0), "monday").unwrap();
    fs.allocator().drain();
    println!("deleted 'monday': reclaimed {reclaimed} blocks");
    assert_eq!(reclaimed, 256);
    fs.run_cp();
    fs.verify_integrity().expect("consistent");
    println!("integrity verified — done");
}
