//! Quickstart: create a file system, write some files, run a consistency
//! point, verify the data on (simulated) disk, and look at the allocator
//! statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn main() {
    // An aggregate with one RAID group: 4 data drives + 1 parity, 64 Ki
    // blocks per drive (1 GiB of 4 KiB blocks), allocation areas of 512
    // stripes.
    let geometry = GeometryBuilder::new()
        .aa_stripes(512)
        .raid_group(4, 1, 64 * 1024)
        .build();

    // Default config: 64-block buckets, parallel infrastructure, 4
    // cleaner threads with batching. `ExecMode::Pool(2)` runs the
    // infrastructure on a real 2-thread Waffinity pool.
    let fs = Filesystem::new(
        FsConfig::default(),
        geometry,
        DriveKind::Ssd,
        ExecMode::Pool(2),
    );

    fs.create_volume(VolumeId(0));
    println!("created volume 0");

    // Write 3 files of 256 blocks (1 MiB) each.
    for f in 1..=3u64 {
        fs.create_file(VolumeId(0), FileId(f));
        for fbn in 0..256 {
            fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, 1));
        }
    }
    println!(
        "wrote 3 files ({} dirty inodes pending)",
        fs.dirty_inode_count()
    );

    // Flush everything with one consistency point.
    let report = fs.run_cp();
    println!(
        "CP {}: cleaned {} inodes / {} buffers in {} cleaner messages, \
         flushed {} metafile blocks in {} fix-point rounds",
        report.cp_id,
        report.inodes_cleaned,
        report.buffers_cleaned,
        report.cleaner_messages,
        report.metafile_blocks_written,
        report.fixpoint_rounds,
    );

    // Every block is now on stable storage; read through the committed
    // block map and the simulated media.
    for f in 1..=3u64 {
        for fbn in 0..256 {
            assert_eq!(
                fs.read_persisted(VolumeId(0), FileId(f), fbn),
                Some(stamp(f, fbn, 1)),
                "file {f} fbn {fbn} must be durable"
            );
        }
    }
    println!("verified 768 blocks on disk");

    // Overwrite one file — WAFL never writes in place, so this allocates
    // new blocks and frees the old ones.
    for fbn in 0..256 {
        fs.write(VolumeId(0), FileId(2), fbn, stamp(2, fbn, 2));
    }
    fs.run_cp();
    assert_eq!(
        fs.read_persisted(VolumeId(0), FileId(2), 100),
        Some(stamp(2, 100, 2))
    );
    println!("overwrote file 2 (copy-on-write)");

    // Allocator statistics: the GET/USE/PUT traffic of Figure 2.
    let s = fs.allocator().stats();
    println!(
        "allocator: {} GETs, {} USEs, {} PUTs, {} refill rounds, \
         {} VBNs committed, {} VBNs freed, {} tetris write I/Os",
        s.gets, s.uses, s.puts, s.refill_rounds, s.vbns_committed, s.vbns_freed, s.tetris_ios
    );
    let ratio = fs.io().full_stripe_ratio().unwrap_or(0.0);
    println!("full-stripe write ratio: {:.1}%", ratio * 100.0);

    fs.verify_integrity().expect("file system is consistent");
    println!("integrity verified — done");
}
