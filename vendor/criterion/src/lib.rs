//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API the workspace's `[[bench]]` targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Throughput`],
//! [`BenchmarkId`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros — over a simple calibrated wall-clock
//! loop. No statistics, HTML reports, or CLI parsing: each benchmark
//! prints one mean-time line. Good enough to keep bench targets
//! compiling and producing comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Rough target for each measured benchmark run.
const TARGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept (and ignore) CLI configuration, mirroring criterion's API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Final measurement summary hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// Identifier for one benchmark in a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accept (and ignore) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accept (and ignore) a measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this measurement's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(id: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run single iterations until we know roughly how long
    // one takes, then size the measured run to ~TARGET.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.0} elem/s", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.0} B/s", n as f64 * 1e9 / mean_ns)
        }
        None => String::new(),
    };
    println!("bench {id:<48} {mean_ns:>12.1} ns/iter ({iters} iters){rate}");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
