//! Minimal offline stand-in for `serde`.
//!
//! The real serde pipes values through visitor-based `Serializer` /
//! `Deserializer` traits; this stand-in collapses that machinery into a
//! single self-describing [`Value`] tree. [`Serialize`] renders a value
//! into a `Value`, [`Deserialize`] rebuilds one from it, and the
//! vendored `serde_json` prints/parses that tree as JSON. The derive
//! macros (feature `derive`, from the vendored `serde_derive`) generate
//! impls against exactly this interface, so derived types roundtrip
//! consistently — which is all the workspace's serialization tests
//! assert.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree — the meeting point of serialization and
/// deserialization (plays the role of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers u128 stamps).
    UInt(u128),
    /// Negative integer.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key → value map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) => "uint",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the self-describing tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u128,
                    other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 {
                    Value::UInt(n as u128)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i128::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} overflows i128")))?,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Maps serialize as a sequence of `[key, value]` pairs: keys here are
// typed IDs (e.g. tuple structs), not strings, and the vendored JSON
// only needs to roundtrip with itself.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Seq(items) => items,
            other => return type_err("sequence of pairs", other),
        };
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Seq(items) => items,
                    other => return type_err("tuple sequence", other),
                };
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of {want}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- derive support --------------------------------------------------

/// Look up `key` in a struct map and deserialize it. Missing keys
/// deserialize from `Null`, which lets `Option` fields default to
/// `None` while everything else reports a clear error.
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let big = u128::MAX - 3;
        assert_eq!(u128::from_value(&big.to_value()), Ok(big));
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&v.to_value()), Ok(None));
        let xs = vec![(1u64, 2u32), (3, 4)];
        assert_eq!(Vec::<(u64, u32)>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn missing_field_is_error_except_option() {
        let map = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(__field::<u64>(&map, "a"), Ok(1));
        assert!(__field::<u64>(&map, "b").is_err());
        assert_eq!(__field::<Option<u64>>(&map, "b"), Ok(None));
    }
}
