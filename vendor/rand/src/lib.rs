//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension with `gen`, `gen_bool`
//! and `gen_range` — over any `u64`-word generator. Distribution
//! support is limited to uniform primitives; that is all the simulator
//! and tests sample.

use std::ops::Range;

/// Core generator interface: a source of uniformly random words.
pub trait RngCore {
    /// Next uniformly random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (fixed-size byte array for the generators here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64 (matching the
    /// upstream convention of deriving the full seed deterministically).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types uniformly sampleable from a generator (the `Standard`
/// distribution subset).
pub trait UniformSample: Sized {
    /// Draw one value from the full domain (floats: `[0, 1)`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Sized {
    /// Draw uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo is biased for spans near 2^128; the spans used
                // here are far smaller, and determinism matters more
                // than the last ulp of uniformity in this stand-in.
                let draw = u128::sample(rng) % span;
                range.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

impl RangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Convenience extension over [`RngCore`] (auto-implemented).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its full uniform domain.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample(self) < p
    }

    /// Uniform draw from `[low, high)`.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports mirroring `rand::rngs` just enough for `use` paths.
pub mod rngs {
    /// Placeholder module (no OS RNG in the offline stand-in).
    pub struct OsRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Counter(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
