//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait over integer ranges, tuples, `Just`,
//! mapped strategies and weighted unions; `prop::collection::{vec,
//! btree_set}`; `prop::bool::ANY`; and the `proptest!` /
//! `prop_assert*!` / `prop_oneof!` macros. Cases are generated from a
//! deterministic per-case RNG so failures reproduce exactly; there is
//! **no shrinking** — the failing case index and assertion message are
//! reported instead.

/// Deterministic case RNG and failure type.
pub mod test_runner {
    use std::fmt;

    /// Per-case deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` — fixed base seed, so every run
        /// explores the same inputs.
        pub fn deterministic(case: u64) -> Self {
            Self {
                state: 0xD0E5_57A7_1C00_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128-bit draw.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform draw from `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            self.next_u128() % bound
        }
    }

    /// A failed property (carried out of the test body by `prop_assert*`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms (weights > 0).
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof needs at least one weighted arm");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.below(self.total as u128) as u64;
            for (w, s) in &self.arms {
                if draw < *w as u64 {
                    return s.generate(rng);
                }
                draw -= *w as u64;
            }
            unreachable!("weights sum covers all draws")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty strategy range");
            // Bias values toward both edges occasionally? Keep uniform;
            // the span may be the full 128-bit domain, so widen by
            // sampling twice when span overflows.
            let span = self.end - self.start;
            self.start + rng.below(span)
        }
    }

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// `vec` / `btree_set` collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Types usable as a collection size specification.
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u128) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `BTreeSet` of values from `element`; aims for a length in `size`
    /// but accepts fewer when the element domain is too small.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicates shrink small domains.
            for _ in 0..target.saturating_mul(8).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// `prop::bool` strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration (`cases` is the only knob honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path used by idiomatic proptest code.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Define property tests: `proptest! { #![proptest_config(...)] #[test] fn p(x in s) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ($($s,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(__case as u64);
                    let ($($p,)+) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!("proptest case #{} failed: {}", __case, __e);
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Choose between strategies, optionally weighted: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        let s = (0u64..1000, 0u8..255);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(
            (a, b) in (0u64..100, 0u64..100),
            xs in prop::collection::vec(0u32..10, 1..8),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(xs.len(), 0);
        }

        #[test]
        fn oneof_and_map_work(
            v in prop::collection::vec(
                prop_oneof![
                    3 => (0u8..10).prop_map(|x| x as u32),
                    1 => Just(99u32),
                ],
                1..50,
            ),
        ) {
            prop_assert!(v.iter().all(|&x| x < 10 || x == 99));
        }
    }
}
