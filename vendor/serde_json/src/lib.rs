//! Offline stand-in for `serde_json`, printing and parsing the vendored
//! `serde`'s [`Value`] tree as real JSON.
//!
//! Supports the full JSON grammar the workspace emits: objects, arrays,
//! strings with escapes, booleans, null, and numbers up to `u128`/`i128`
//! precision (block stamps are 128-bit). Floats are printed with Rust's
//! shortest-roundtrip `{:?}` format so `2.0` stays a float across a
//! roundtrip.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize `value` to JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` keeps a trailing `.0` on integral floats, so the
            // value parses back as a float.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's writer; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("surrogate \\u escape"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad float `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::Int(-(n as i128)))
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn u128_stamps_roundtrip() {
        let stamp = u128::MAX - 17;
        let j = to_string(&stamp).unwrap();
        assert_eq!(from_str::<u128>(&j).unwrap(), stamp);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quote\"\\slash\tтест".to_string();
        let j = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&j).unwrap(), s);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(u64, Option<f64>)> = vec![(1, Some(0.5)), (2, None)];
        let j = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, Option<f64>)>>(&j).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let j = to_string_pretty(&v).unwrap();
        assert!(j.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&j).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
