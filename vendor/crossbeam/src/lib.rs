//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only the multi-producer/multi-consumer channel subset used by this
//! workspace is provided: [`channel::unbounded`], [`channel::bounded`],
//! cloneable [`channel::Sender`]/[`channel::Receiver`], and disconnect
//! detection when every sender (or receiver) is dropped. Backed by a
//! `Mutex<VecDeque>` plus condition variables — correctness over
//! lock-freedom, which is all the tests need.

/// MPMC channels (the only crossbeam module this workspace uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signaled when an item arrives or the last sender disconnects.
        readable: Condvar,
        /// Signaled when space frees up (bounded) or the last receiver
        /// disconnects.
        writable: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely for multiple consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        /// Errors (returning the value) if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let inner = &*self.inner;
            let mut q = inner.lock();
            loop {
                if inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match inner.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = match inner.writable.wait(q) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            inner.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until an item arrives. Errors once the
        /// channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &*self.inner;
            let mut q = inner.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    inner.writable.notify_one();
                    return Ok(v);
                }
                if inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = match inner.readable.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &*self.inner;
            let mut q = inner.lock();
            if let Some(v) = q.pop_front() {
                drop(q);
                inner.writable.notify_one();
                return Ok(v);
            }
            if inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                let _g = self.inner.lock();
                self.inner.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = self.inner.lock();
                self.inner.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_distributes_all_items() {
            let (tx, rx) = unbounded();
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
