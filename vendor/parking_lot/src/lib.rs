//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with `parking_lot`'s ergonomics (no lock poisoning,
//! guards returned directly). Everything is implemented over
//! `std::sync`; poisoned locks are recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A mutex that hands back its guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock that hands back guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the deadline passed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with this crate's [`MutexGuard`].
///
/// `std::sync::Condvar::wait` consumes and returns the guard; parking_lot
/// takes `&mut guard`. Bridged here by briefly moving through the inner
/// std guard with an epoch counter to suppress lost-wakeup windows.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// Bumped on every notify so `wait` can double-check ordering.
    epoch: AtomicUsize,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            epoch: AtomicUsize::new(0),
        }
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.epoch.fetch_add(1, Ordering::Release);
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Run `f` on the std guard inside `guard`, replacing it with the guard
/// `f` returns. Uses a raw move because `MutexGuard` has no niche for a
/// placeholder; the closure always returns a valid replacement guard.
fn take_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `guard.inner` is a valid guard; we read it out, hand it to
    // `f` (which consumes it in the condvar wait and hands a fresh guard
    // back), and write the replacement before anyone can observe the
    // moved-from state. A panic inside the condvar wait would abort via
    // the write of the returned guard never happening — acceptable for a
    // test/simulation stand-in and no worse than a poisoned lock.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let replacement = f(inner);
        std::ptr::write(&mut guard.inner, replacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
