//! Offline stand-in for `rand_chacha`: a seeded, deterministic
//! [`ChaCha12Rng`] implementing the vendored `rand` traits.
//!
//! This is a real (reduced-round) ChaCha stream generator, so it keeps
//! ChaCha's statistical quality and 256-bit seeding, though the exact
//! output stream is not bit-compatible with the upstream crate (the
//! upstream word order is not replicated). All consumers in this
//! workspace only require determinism for a given seed, which holds.

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (12 rounds total, as the name says).
const DOUBLE_ROUNDS: usize = 6;

/// A deterministic ChaCha-based generator with a 256-bit seed.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    /// Constant + key + counter + nonce block layout, per the ChaCha spec.
    state: [u32; 16],
    /// Keystream block buffer.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        Self {
            state,
            buf: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(0x57A7_1C);
        let mut b = ChaCha12Rng::seed_from_u64(0x57A7_1C);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_not_obviously_degenerate() {
        let mut r = ChaCha12Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += r.next_u64().count_ones();
        }
        // 4096 bits drawn; expect roughly half set.
        assert!((1500..2600).contains(&ones), "popcount {ones}");
    }
}
