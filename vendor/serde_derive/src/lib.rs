//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (the `Value`-tree interface) for non-generic structs and enums.
//! Parsing is done directly over `proc_macro::TokenStream` — the build
//! environment has no crates.io access, so `syn`/`quote` are not
//! available. The supported grammar is exactly what this workspace
//! derives on: named structs, tuple structs, unit structs, and enums
//! with unit / tuple / struct variants, all without generics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` (Value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` (Value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- item model ------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields — only the count matters for codegen.
    Tuple(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match &tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive stub: bad struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match &tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive stub: bad enum body for `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive stub: cannot derive on `{other}`"),
    }
}

/// Advance past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracket group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `a: T, b: U<V, W>, ...` returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after `{name}`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count top-level fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then the
        // separating comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => map_literal_for(names, "&self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(String::from(\"{vname}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inner = map_literal_for(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(String::from(\"{vname}\"), {inner})]),\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// `Value::Map(vec![("a", to_value(<prefix>a)), ...])`.
fn map_literal_for(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = v; Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = v.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\
                                 \"wrong tuple arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::__field(__map, \"{f}\")?"))
                        .collect();
                    format!(
                        "let __map = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(n) => {
                        if *n == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __inner.as_seq().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(\
                                             \"wrong arity for {name}::{vname}\"));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}\n",
                                items.join(", ")
                            ));
                        }
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(__map, \"{f}\")?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __map = __inner.as_map().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected map for {name}::{vname}\"))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            // Avoid an unused binding when every variant is a unit
            // variant (no payload to destructure).
            let inner_bind = if tagged_arms.is_empty() {
                "_"
            } else {
                "__inner"
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, {inner_bind}) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::Error::custom(format!(\
                                         \"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::custom(format!(\
                                 \"expected {name} variant, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
