#!/usr/bin/env python3
"""DEPRECATED shim — the concurrency lint moved to `crates/ward`.

The regex gates that lived here (ordering justifications, cache shard
lock order, the unsafe audit, the arena reclamation gates, IoTicket
minting) were ported to the `ward` static analyzer, which adds the
cross-site checks regexes cannot express: the workspace lock-rank
graph, Release/Acquire `pairs-with` label pairing, and counter-plumbing
completeness. See `crates/ward/` and DESIGN.md §15.

This shim keeps old invocations working by forwarding to ward:

    lint_concurrency.py --check      ->  cargo run -p ward -- --check
    lint_concurrency.py --self-test  ->  cargo run -p ward -- --self-test

It will be removed once nothing calls it; update callers to invoke
ward directly (`cargo run --release -q -p ward -- --check`).
"""

import os
import subprocess
import sys


def main() -> int:
    known = {"--check", "--self-test"}
    args = sys.argv[1:]
    bad = [a for a in args if a not in known]
    if bad:
        print(f"lint_concurrency.py: unknown argument(s) {bad}; "
              "this shim only forwards --check/--self-test to ward",
              file=sys.stderr)
        return 2
    print("lint_concurrency.py is DEPRECATED: forwarding to "
          "`cargo run -p ward`; update the caller (see crates/ward/).",
          file=sys.stderr)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    cmd = ["cargo", "run", "--release", "-q", "-p", "ward", "--"]
    cmd += args if args else ["--check"]
    return subprocess.call(cmd, cwd=root)


if __name__ == "__main__":
    sys.exit(main())
