#!/usr/bin/env python3
"""Concurrency lint: memory-ordering justifications, lock-order checks,
and an audited unsafe inventory.

Checks
------
1. **Ordering justification**: every `Ordering::{Relaxed,Acquire,Release,
   AcqRel,SeqCst}` in Rust source must carry an `// ordering:` comment —
   on the same line, or in the comment block attached to the enclosing
   statement (scanning upward through the statement's continuation lines
   to its leading comments). Unjustified orderings are exactly how
   "works on x86" bugs get committed; the comment forces the author to
   state the happens-before edge (or the reason none is needed).
2. **Shard lock order** (`crates/alligator/src/cache.rs`): any function
   that accumulates multiple shard-lock guards must acquire them in
   ascending shard order (syntactically: an `.enumerate()` /
   ascending-range iteration with no `.rev()`), so lock ordering alone
   rules out deadlock.
3. **Unsafe audit**: every `unsafe` block/impl/fn must carry a
   `// SAFETY:` comment (same attachment rule as orderings). The full
   inventory is generated into UNSAFE_AUDIT.md; `--check` fails if the
   committed audit has drifted from the source.
4. **Arena reclamation gates** (`crates/alligator/src/{arena,treiber}.rs`):
   (a) no capacity-exhaustion `assert!`/`panic!` may return — running
   out of arena must surface as typed `ArenaFull` backpressure, not an
   abort (the bug class this module replaced); (b) the epoch-protocol
   atomics (`epoch`, `pin_state`, `overflow_pins`) must use `SeqCst`
   exclusively — the advance/pin race is reasoned in a single total
   order and a weakened access silently re-opens the reclamation race;
   (c) the arena must not reach up into the cache's locks
   (`lock_shard`/`lock_publish`) — its limbo mutex is a leaf, which is
   what makes calling `maintain()` under `publish` deadlock-free.
5. **Ticket minting** (workspace-wide): `IoTicket(` may be constructed
   only inside `crates/blockdev/src/aio.rs`. A completion ticket is the
   engine's receipt that a submission is queued; a forged ticket would
   unbalance the submitted/completed accounting that `drain` and the
   crash path rely on.

Usage
-----
    lint_concurrency.py              lint + regenerate UNSAFE_AUDIT.md
    lint_concurrency.py --check      lint + verify UNSAFE_AUDIT.md (CI)
    lint_concurrency.py --self-test  prove each check still detects its
                                     target violation class

Exit status 0 iff everything passes. No third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
AUDIT_PATH = REPO / "UNSAFE_AUDIT.md"
EXCLUDE_PARTS = {"vendor", "target", ".git"}

ORDERING_RE = re.compile(r"\bOrdering::(Relaxed|Acquire|Release|AcqRel|SeqCst)\b")
# `unsafe` introducing a block, fn, impl, or trait — not the word inside
# a comment or string (handled by stripping comments first).
UNSAFE_RE = re.compile(r"(^|[^\w#])unsafe\b")
SAFETY_TAG = "SAFETY:"
ORDERING_TAG = "ordering:"
# How far upward the statement scan may walk before giving up.
SCAN_LIMIT = 20


def rust_files() -> list[Path]:
    out = []
    for p in sorted(REPO.rglob("*.rs")):
        if EXCLUDE_PARTS.intersection(p.relative_to(REPO).parts):
            continue
        out.append(p)
    return out


def strip_comment(line: str) -> str:
    """Code portion of a line (string-literal-naive, fine for linting)."""
    i = line.find("//")
    return line if i < 0 else line[:i]


def is_comment_line(line: str) -> bool:
    s = line.lstrip()
    return s.startswith("//")


def statement_has_tag(lines: list[str], idx: int, tag: str) -> bool:
    """Does the statement containing line `idx` carry `tag` in a comment?

    Attachment rule: the tag counts if it appears in a comment on the
    line itself, on any earlier continuation line of the same statement,
    or in the contiguous comment block immediately above the statement.
    Statement boundaries (scanning upward) are blank lines or code lines
    ending in `;`, `{`, or `}`.
    """
    line = lines[idx]
    ci = line.find("//")
    if ci >= 0 and tag in line[ci:]:
        return True
    for off in range(1, SCAN_LIMIT + 1):
        j = idx - off
        if j < 0:
            return False
        prev = lines[j]
        if is_comment_line(prev):
            if tag in prev:
                return True
            continue  # comment block: keep climbing
        stripped = prev.strip()
        if not stripped:
            return False  # blank line: left the statement
        ci = prev.find("//")
        if ci >= 0 and tag in prev[ci:]:
            return True
        code = strip_comment(prev).rstrip()
        if code.endswith((";", "{", "}")):
            return False  # previous statement: stop
        # Continuation line (ends with ',', '(', operator, …): keep going.
    return False


def check_orderings(path: Path, lines: list[str]) -> list[str]:
    errs = []
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if not ORDERING_RE.search(code):
            continue
        if not statement_has_tag(lines, i, ORDERING_TAG):
            errs.append(
                f"{path.relative_to(REPO)}:{i + 1}: Ordering use without an "
                f"`// ordering:` justification: {line.strip()}"
            )
    return errs


def unsafe_kind(code: str) -> str:
    if re.search(r"\bunsafe\s+impl\b", code):
        return "unsafe impl"
    if re.search(r"\bunsafe\s+(?:\w+\s+)*fn\b", code):
        return "unsafe fn"
    if re.search(r"\bunsafe\s+trait\b", code):
        return "unsafe trait"
    return "unsafe block"


def safety_summary(lines: list[str], idx: int) -> str:
    """First line of the SAFETY comment attached to line `idx`."""
    line = lines[idx]
    ci = line.find("//")
    if ci >= 0 and SAFETY_TAG in line[ci:]:
        return line[line.index(SAFETY_TAG) + len(SAFETY_TAG) :].strip()
    for off in range(1, SCAN_LIMIT + 1):
        j = idx - off
        if j < 0:
            break
        prev = lines[j]
        if SAFETY_TAG in prev and (is_comment_line(prev) or prev.find("//") >= 0):
            return prev[prev.index(SAFETY_TAG) + len(SAFETY_TAG) :].strip()
        if is_comment_line(prev):
            continue
        code = strip_comment(prev).rstrip()
        if not prev.strip() or code.endswith((";", "{", "}")):
            break
    return ""


def check_unsafe(path: Path, lines: list[str]) -> tuple[list[str], list[dict]]:
    errs, inventory = [], []
    for i, line in enumerate(lines):
        code = strip_comment(line)
        if not UNSAFE_RE.search(code):
            continue
        justified = statement_has_tag(lines, i, SAFETY_TAG)
        entry = {
            "file": str(path.relative_to(REPO)),
            "line": i + 1,
            "kind": unsafe_kind(code),
            "summary": safety_summary(lines, i) if justified else "",
            "snippet": line.strip(),
        }
        inventory.append(entry)
        if not justified:
            errs.append(
                f"{path.relative_to(REPO)}:{i + 1}: {entry['kind']} without a "
                f"`// SAFETY:` comment: {line.strip()}"
            )
    return errs, inventory


def fn_bodies(text: str):
    """Yield (name, body) for each `fn` in `text` via brace matching."""
    for m in re.finditer(r"\bfn\s+(\w+)", text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth, j = 0, brace
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        yield m.group(1), text[brace : j + 1]


def check_lock_order(cache_path: Path, text: str) -> list[str]:
    """Multi-shard-lock functions must acquire in ascending shard order."""
    errs = []
    rel = cache_path.relative_to(REPO)
    seen_multi_lock = False
    for name, body in fn_bodies(text):
        # A function accumulates multiple live shard guards iff it stores
        # them (single-guard functions drop before re-locking).
        if "lock_shard" not in body or "guards.push" not in body:
            continue
        seen_multi_lock = True
        if ".rev()" in body:
            errs.append(
                f"{rel}: fn {name}: multi-shard locking iterates with .rev() — "
                f"shard locks must be acquired in ascending order"
            )
        if ".enumerate()" not in body and not re.search(r"for\s+\w+\s+in\s+0\s*\.\.", body):
            errs.append(
                f"{rel}: fn {name}: cannot prove ascending shard-lock order "
                f"(expected an .enumerate() or `for s in 0..` iteration)"
            )
    if not seen_multi_lock and "guards" in text:
        errs.append(f"{rel}: lock-order check found no multi-lock function to verify")
    return errs


EXHAUST_ABORT_RE = re.compile(r"\b(?:debug_)?(?:assert|panic)\w*!\s*[\((].{0,200}?exhaust", re.S)
# An atomic access to an epoch-protocol field, comments stripped and
# whitespace collapsed; group 2 spans the call's argument region where
# the Ordering tokens live.
EPOCH_ATOMIC_RE = re.compile(
    r"\b(epoch|pin_state|overflow_pins)\s*\.\s*"
    r"(?:load|store|swap|fetch_\w+|compare_exchange(?:_weak)?)\s*\(([^;]{0,250}?)\)",
    re.S,
)
WEAK_ORDERING_RE = re.compile(r"\bOrdering::(Relaxed|Acquire|Release|AcqRel)\b")


def strip_comments_text(text: str) -> str:
    """Whole-file comment strip (line comments only, as elsewhere)."""
    return "\n".join(strip_comment(l) for l in text.splitlines())


def check_no_exhaustion_aborts(path: Path, text: str) -> list[str]:
    """Gate 4a: capacity exhaustion must be `ArenaFull`, never an abort."""
    errs = []
    code = strip_comments_text(text)
    for m in EXHAUST_ABORT_RE.finditer(code):
        line = code[: m.start()].count("\n") + 1
        errs.append(
            f"{path.relative_to(REPO)}:{line}: capacity-exhaustion abort "
            f"reintroduced — return the typed ArenaFull error instead: "
            f"{m.group(0).splitlines()[0].strip()}"
        )
    return errs


def check_epoch_seqcst(path: Path, text: str) -> list[str]:
    """Gate 4b: epoch-protocol atomics are SeqCst-only."""
    errs = []
    code = strip_comments_text(text)
    for m in EPOCH_ATOMIC_RE.finditer(code):
        weak = WEAK_ORDERING_RE.search(m.group(2))
        if weak:
            line = code[: m.start()].count("\n") + 1
            errs.append(
                f"{path.relative_to(REPO)}:{line}: `{m.group(1)}` accessed with "
                f"Ordering::{weak.group(1)} — the epoch protocol is reasoned in "
                f"a single total order and must use SeqCst exclusively"
            )
    return errs


def check_arena_layering(path: Path, text: str) -> list[str]:
    """Gate 4c: the arena sits below the cache locks."""
    errs = []
    code = strip_comments_text(text)
    for needle in ("lock_shard", "lock_publish"):
        i = code.find(needle)
        if i >= 0:
            line = code[:i].count("\n") + 1
            errs.append(
                f"{path.relative_to(REPO)}:{line}: arena references the cache "
                f"lock `{needle}` — the arena's limbo mutex must stay a leaf "
                f"(maintain() runs under `publish`)"
            )
    return errs


TICKET_RE = re.compile(r"\bIoTicket\s*\(")
TICKET_HOME = "crates/blockdev/src/aio.rs"


def check_ticket_construction(path: Path, text: str) -> list[str]:
    """Gate 5: completion tickets are minted only by the aio engine."""
    if str(path.relative_to(REPO)) == TICKET_HOME:
        return []
    errs = []
    code = strip_comments_text(text)
    for m in TICKET_RE.finditer(code):
        line = code[: m.start()].count("\n") + 1
        errs.append(
            f"{path.relative_to(REPO)}:{line}: `IoTicket(` constructed outside "
            f"{TICKET_HOME} — tickets are minted only by `AioEngine::submit`; "
            f"a forged ticket unbalances the submitted/completed accounting"
        )
    return errs


def render_audit(inventory: list[dict]) -> str:
    lines = [
        "# Unsafe audit",
        "",
        "Generated by `scripts/lint_concurrency.py` — do not edit by hand.",
        "Every entry must carry a `// SAFETY:` comment in the source; the",
        "lint fails otherwise. Regenerate with:",
        "",
        "    python3 scripts/lint_concurrency.py",
        "",
        f"Total `unsafe` sites: {len(inventory)}",
        "",
        "| Location | Kind | Safety argument |",
        "|---|---|---|",
    ]
    for e in inventory:
        summary = e["summary"] or "(see preceding comment block)"
        summary = summary.replace("|", "\\|")
        lines.append(f"| `{e['file']}:{e['line']}` | {e['kind']} | {summary} |")
    lines.append("")
    return "\n".join(lines)


def run_lint(check_only: bool) -> int:
    errs: list[str] = []
    inventory: list[dict] = []
    for path in rust_files():
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        errs.extend(check_orderings(path, lines))
        file_errs, file_inv = check_unsafe(path, lines)
        errs.extend(file_errs)
        inventory.extend(file_inv)
        errs.extend(check_ticket_construction(path, text))
    cache_path = REPO / "crates" / "alligator" / "src" / "cache.rs"
    if cache_path.exists():
        errs.extend(check_lock_order(cache_path, cache_path.read_text(encoding="utf-8")))
    else:
        errs.append("crates/alligator/src/cache.rs missing — lock-order check skipped")
    arena_path = REPO / "crates" / "alligator" / "src" / "arena.rs"
    treiber_path = REPO / "crates" / "alligator" / "src" / "treiber.rs"
    if arena_path.exists():
        arena_text = arena_path.read_text(encoding="utf-8")
        errs.extend(check_no_exhaustion_aborts(arena_path, arena_text))
        errs.extend(check_epoch_seqcst(arena_path, arena_text))
        errs.extend(check_arena_layering(arena_path, arena_text))
    else:
        errs.append("crates/alligator/src/arena.rs missing — arena gates skipped")
    if treiber_path.exists():
        errs.extend(
            check_no_exhaustion_aborts(
                treiber_path, treiber_path.read_text(encoding="utf-8")
            )
        )
    else:
        errs.append("crates/alligator/src/treiber.rs missing — abort gate skipped")

    audit = render_audit(inventory)
    if check_only:
        current = AUDIT_PATH.read_text(encoding="utf-8") if AUDIT_PATH.exists() else ""
        if current != audit:
            errs.append(
                "UNSAFE_AUDIT.md is stale — regenerate with "
                "`python3 scripts/lint_concurrency.py`"
            )
    else:
        AUDIT_PATH.write_text(audit, encoding="utf-8")

    for e in errs:
        print(f"lint_concurrency: {e}", file=sys.stderr)
    n_ord = sum(
        1
        for p in rust_files()
        for line in p.read_text(encoding="utf-8").splitlines()
        if ORDERING_RE.search(strip_comment(line))
    )
    print(
        f"lint_concurrency: {'FAIL' if errs else 'OK'} — "
        f"{n_ord} ordering sites, {len(inventory)} unsafe sites, "
        f"{len(errs)} violations"
    )
    return 1 if errs else 0


# ---------------------------------------------------------------------------
# Self-test: each check must still detect its violation class.
# ---------------------------------------------------------------------------


def self_test() -> int:
    failures = []

    bad_ordering = [
        "fn f(x: &AtomicU64) {",
        "    x.store(1, Ordering::Relaxed);",
        "}",
    ]
    if not check_orderings(REPO / "self_test.rs", bad_ordering):
        failures.append("ordering check missed an unjustified Ordering::Relaxed")

    good_ordering = [
        "fn f(x: &AtomicU64) {",
        "    // ordering: counter, atomicity only.",
        "    x.store(1, Ordering::Relaxed);",
        "    x.compare_exchange(",
        "        0,",
        "        1,",
        "        // ordering: justified mid-statement.",
        "        Ordering::AcqRel,",
        "        Ordering::Acquire,",
        "    );",
        "}",
    ]
    if check_orderings(REPO / "self_test.rs", good_ordering):
        failures.append("ordering check flagged a justified site")

    bad_unsafe = ["fn f(p: *mut u8) {", "    unsafe { *p = 0 };", "}"]
    errs, _ = check_unsafe(REPO / "self_test.rs", bad_unsafe)
    if not errs:
        failures.append("unsafe check missed a SAFETY-less unsafe block")

    good_unsafe = [
        "fn f(p: *mut u8) {",
        "    // SAFETY: p is valid for writes by contract.",
        "    unsafe { *p = 0 };",
        "}",
    ]
    errs, inv = check_unsafe(REPO / "self_test.rs", good_unsafe)
    if errs:
        failures.append("unsafe check flagged a SAFETY-annotated block")
    if not inv or "valid for writes" not in inv[0]["summary"]:
        failures.append("unsafe inventory lost the SAFETY summary")

    bad_lock_order = (
        "impl C { fn insert_all_mutex(&self) { "
        "for (s, b) in shards.iter().enumerate().rev() { "
        "let g = self.lock_shard(s); guards.push(g); } } }"
    )
    if not check_lock_order(
        REPO / "crates" / "alligator" / "src" / "cache.rs", bad_lock_order
    ):
        failures.append("lock-order check missed a .rev() multi-lock loop")

    descending_no_proof = (
        "impl C { fn insert_all_mutex(&self) { "
        "for s in order { let g = self.lock_shard(s); guards.push(g); } } }"
    )
    if not check_lock_order(
        REPO / "crates" / "alligator" / "src" / "cache.rs", descending_no_proof
    ):
        failures.append("lock-order check accepted an unprovable iteration order")

    arena = REPO / "crates" / "alligator" / "src" / "arena.rs"
    abort_text = 'fn mint(&self) { assert!(idx < cap, "TreiberStack arena exhausted"); }'
    if not check_no_exhaustion_aborts(arena, abort_text):
        failures.append("arena gate missed a capacity-exhaustion assert")
    backpressure_text = (
        'fn push(&self) { self.try_push().expect("arena at capacity '
        '(use try_push_keyed for backpressure)"); }'
    )
    if check_no_exhaustion_aborts(arena, backpressure_text):
        failures.append("arena gate flagged the typed-backpressure panic text")

    weak_epoch = (
        "fn pin(&self) {\n"
        "    let e = self.epoch.load(Ordering::Acquire);\n"
        "    slot.pin_state\n"
        "        .compare_exchange(0, e, Ordering::SeqCst, Ordering::Acquire);\n"
        "}"
    )
    errs = check_epoch_seqcst(arena, weak_epoch)
    if len(errs) != 2:
        failures.append(
            f"epoch gate should flag both weakened accesses, flagged {len(errs)}"
        )
    seqcst_epoch = (
        "fn pin(&self) {\n"
        "    let e = self.epoch.load(Ordering::SeqCst);\n"
        "    let r = self.limbo_retire_epoch.load(Ordering::Acquire);\n"
        "    slot.pin_state\n"
        "        .compare_exchange(0, e, Ordering::SeqCst, Ordering::SeqCst);\n"
        "    self.overflow_pins.fetch_add(1, Ordering::SeqCst);\n"
        "}"
    )
    if check_epoch_seqcst(arena, seqcst_epoch):
        failures.append("epoch gate flagged SeqCst (or a non-protocol field)")

    forged = "fn f() { let t = IoTicket(7); }"
    if not check_ticket_construction(REPO / "crates" / "wafl" / "src" / "cp.rs", forged):
        failures.append("ticket gate missed a forged IoTicket")
    if check_ticket_construction(
        REPO / "crates" / "blockdev" / "src" / "aio.rs", forged
    ):
        failures.append("ticket gate flagged the aio engine's own mint site")
    if check_ticket_construction(
        REPO / "crates" / "wafl" / "src" / "cp.rs",
        "fn f(t: IoTicket) -> u64 { t.id() }",
    ):
        failures.append("ticket gate flagged a mere IoTicket type mention")

    layered = "fn maintain(&self) { let _g = self.cache.lock_shard(0); }"
    if not check_arena_layering(arena, layered):
        failures.append("layering gate missed a cache-lock reference in the arena")
    if check_arena_layering(arena, "fn maintain(&self) { self.limbo.lock(); }"):
        failures.append("layering gate flagged the arena's own leaf mutex")

    for f in failures:
        print(f"lint_concurrency self-test: {f}", file=sys.stderr)
    print(f"lint_concurrency self-test: {'FAIL' if failures else 'OK'}")
    return 1 if failures else 0


def main() -> int:
    args = set(sys.argv[1:])
    unknown = args - {"--check", "--self-test"}
    if unknown:
        print(f"lint_concurrency: unknown arguments {sorted(unknown)}", file=sys.stderr)
        return 2
    if "--self-test" in args:
        return self_test()
    return run_lint("--check" in args)


if __name__ == "__main__":
    sys.exit(main())
