#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run locally before
# pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test -q (tier-1: root package) ==="
cargo test -q

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== cargo test --workspace --features trace -q (obs rings compiled in) ==="
# The trace feature swaps the no-op macros for real per-thread event
# rings; the whole suite must stay green with them armed.
cargo test --workspace --features trace -q

echo "=== lock-free cache stress under debug assertions ==="
# The Treiber-stack hot path's internal invariants (tag monotonicity,
# arena bounds, fill accounting) are debug_assert!s; arm them while the
# stress suite hammers CAS pops, steals, batched GETs, and concurrent
# collective inserts.
RUSTFLAGS="-C debug-assertions=on" \
  cargo test --release -q -p alligator --test cache_stress

echo "=== arena boundedness soak under debug assertions ==="
# The bounded arena's accounting checks (chunk free counts, tag
# monotonicity, null-slab pin discipline) are armed while the soak
# fills a tiny-capped arena past ArenaFull and churns a population
# through grow/shrink looking for plateau and reclamation.
RUSTFLAGS="-C debug-assertions=on" \
  cargo test --release -q -p alligator --test arena_soak

echo "=== ward: concurrency analyzer (lock order, pairing, counters, audit) ==="
# Detection power first (every check must catch its seeded fixture),
# then the real scan: lock-rank graph, Release/Acquire pairs-with
# labels, counter plumbing, unsafe-audit freshness. --check also
# emits the machine-readable report, which must validate against the
# wafl.ward.v1 schema. See DESIGN.md §15 for the annotation contract.
cargo run --release -q -p ward -- --self-test
cargo run --release -q -p ward -- --check
cargo run --release -q -p ward -- --validate results/ward.json

echo "=== model checker: mc suite (10k schedules/invariant, debug assertions) ==="
# Every invariant in crates/mc/tests explores at least MC_SCHEDULES
# interleavings; failures print a replayable seed (MC_REPLAY=<seed>).
MC_SCHEDULES=10000 RUSTFLAGS="-C debug-assertions=on" \
  cargo test --release -q -p mc

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --all-targets -- -D warnings

echo "=== cargo clippy (workspace minus vendor; incl. mc shim mode) ==="
cargo clippy --workspace --all-targets \
  --exclude criterion --exclude crossbeam --exclude parking_lot \
  --exclude proptest --exclude rand --exclude rand_chacha \
  --exclude serde --exclude serde_derive --exclude serde_json \
  -- -D warnings
cargo clippy -p mc -p alligator --features alligator/mc --all-targets \
  -- -D warnings

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "=== exp_cache_contention smoke (tiny config) + schema validation ==="
# Quick sweep into a scratch dir so CI numbers never clobber the
# committed trajectory record, then validate both the fresh record and
# the committed one against the wafl.cache_contention.v2 schema.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
WAFL_BENCH_QUICK=1 WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --bin exp_cache_contention
cargo run --release -q -p wafl-bench --bin exp_cache_contention -- \
  --validate "$SMOKE_DIR/BENCH_cache_contention.json"
cargo run --release -q -p wafl-bench --bin exp_cache_contention -- \
  --validate BENCH_cache_contention.json

echo "=== exp_put_convoy smoke (traced build) + schema validation ==="
# Runs the real cleaner pool under tracing: exercises the obs rings,
# the Chrome-trace exporter, and the convoy-ratio schema end to end.
WAFL_BENCH_QUICK=1 WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --features trace --bin exp_put_convoy
cargo run --release -q -p wafl-bench --features trace --bin exp_put_convoy -- \
  --validate "$SMOKE_DIR/BENCH_put_convoy.json"
cargo run --release -q -p wafl-bench --features trace --bin exp_put_convoy -- \
  --validate BENCH_put_convoy.json

echo "=== exp_scrub smoke + schema validation ==="
# Online scrub over the Waffinity pool: detection, clean-image false
# positives, foreground interference, and checkpoint/resume gates.
WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --bin exp_scrub -- --smoke
cargo run --release -q -p wafl-bench --bin exp_scrub -- \
  --validate "$SMOKE_DIR/BENCH_scrub.json"
cargo run --release -q -p wafl-bench --bin exp_scrub -- \
  --validate BENCH_scrub.json

echo "=== exp_arena_churn smoke + schema validation ==="
# Bounded-arena memory gates: live-chunk plateau under churn, reuse
# over minting, and post-shrink reclamation — on both the fresh smoke
# record and the committed one.
WAFL_BENCH_QUICK=1 WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --bin exp_arena_churn
cargo run --release -q -p wafl-bench --bin exp_arena_churn -- \
  --validate "$SMOKE_DIR/BENCH_arena_churn.json"
cargo run --release -q -p wafl-bench --bin exp_arena_churn -- \
  --validate BENCH_arena_churn.json

echo "=== file-backend tests on a real tmpdir (O_DIRECT probe) ==="
# The aio file backend prefers O_DIRECT and quietly falls back to
# buffered I/O where the filesystem refuses it (tmpfs, some overlays).
# Probe the scratch dir first: with O_DIRECT available, re-run the
# file-backend suites pointed there so CI exercises the aligned-buffer
# path; otherwise skip with a notice (the buffered fallback is already
# covered by the workspace suite above).
if dd if=/dev/zero of="$SMOKE_DIR/.direct-probe" bs=4096 count=1 \
     oflag=direct conv=fsync status=none 2>/dev/null; then
  rm -f "$SMOKE_DIR/.direct-probe"
  TMPDIR="$SMOKE_DIR" cargo test --release -q -p wafl-blockdev --lib file_backend
  TMPDIR="$SMOKE_DIR" cargo test --release -q -p wafl \
    --test crash_recovery_prop file_backend_torn_stripe_remount
else
  echo "NOTICE: O_DIRECT unavailable under $SMOKE_DIR; skipping the \
file-backend re-run (buffered-fallback coverage still ran in the \
workspace suite)"
fi

echo "=== exp_io_engine smoke + schema validation ==="
# Async-engine pipelining gates: tickets balance at every depth, deep
# queues really overlap, and depth ≥ 8 beats the depth-1 synchronous
# baseline — ≥ 1.5× on the committed full record; the quick smoke
# gates at a 1.05× sanity floor because scratch filesystems make the
# amortized fsync nearly free.
WAFL_BENCH_QUICK=1 WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --bin exp_io_engine
cargo run --release -q -p wafl-bench --bin exp_io_engine -- \
  --validate "$SMOKE_DIR/BENCH_io_engine.json"
cargo run --release -q -p wafl-bench --bin exp_io_engine -- \
  --validate BENCH_io_engine.json

echo "=== exp_telemetry smoke (traced build) + schema validation ==="
# Continuous-telemetry gates: CP phase attribution (≥ 95% of wall time
# named), the drive-death blackbox bundle, and the sampler-overhead
# A/B. The < 5% sampler budget is enforced on full multi-core runs and
# reported-only (skip-with-notice) on quick smokes or 1-core boxes.
WAFL_BENCH_QUICK=1 WAFL_BENCH_ROOT="$SMOKE_DIR" WAFL_RESULTS_DIR="$SMOKE_DIR" \
  cargo run --release -q -p wafl-bench --features trace --bin exp_telemetry
cargo run --release -q -p wafl-bench --features trace --bin exp_telemetry -- \
  --validate "$SMOKE_DIR/BENCH_telemetry.json"
cargo run --release -q -p wafl-bench --features trace --bin exp_telemetry -- \
  --validate BENCH_telemetry.json

echo "=== miri: undefined-behavior check on the lock-free cores ==="
# The static analyzer proves annotation discipline; Miri checks the
# actual unsafe dereferences in the Treiber stack and arena under the
# interpreter's aliasing and validity rules. Nightly-only: skip with a
# notice where no nightly+miri toolchain is installed (the container
# bakes stable only) — the stanza arms itself on hosts that have it.
if command -v rustup >/dev/null 2>&1 \
   && rustup toolchain list 2>/dev/null | grep -q nightly \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'miri.*(installed)'; then
  # Interpreter is ~1000x slower than native: keep to the unit suites
  # of the two unsafe-heavy modules, with schedule counts at defaults.
  MIRIFLAGS="-Zmiri-ignore-leaks" \
    cargo +nightly miri test -q -p alligator --lib treiber
  MIRIFLAGS="-Zmiri-ignore-leaks" \
    cargo +nightly miri test -q -p alligator --lib arena
else
  echo "NOTICE: nightly+miri not installed; skipping the Miri pass \
(ward --check and the mc schedule exploration still gate this tree)"
fi

echo "=== tsan: data-race check on the cache stress suite ==="
# ThreadSanitizer needs -Z sanitizer=thread plus a rebuilt std
# (-Zbuild-std), both nightly-only; same skip-with-notice contract as
# the Miri stanza above.
HOST_TRIPLE="$(rustc -vV | sed -n 's/^host: //p')"
if command -v rustup >/dev/null 2>&1 \
   && rustup toolchain list 2>/dev/null | grep -q nightly \
   && rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src.*(installed)'; then
  RUSTFLAGS="-Z sanitizer=thread" \
    cargo +nightly test --release -q -p alligator --test cache_stress \
      -Z build-std --target "$HOST_TRIPLE"
else
  echo "NOTICE: nightly+rust-src not installed; skipping the TSan pass \
(the debug-assertion stress run above still covers conservation)"
fi

echo "CI green."
