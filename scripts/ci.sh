#!/usr/bin/env bash
# Full CI gate: build, tests, lints, formatting. Run locally before
# pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test -q (tier-1: root package) ==="
cargo test -q

echo "=== cargo test --workspace -q ==="
cargo test --workspace -q

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --all-targets -- -D warnings

echo "=== cargo fmt --check ==="
cargo fmt --check

echo "CI green."
