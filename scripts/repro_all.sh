#!/usr/bin/env bash
# Regenerate every paper artifact + extensions. Results land in results/.
set -euo pipefail
cd "$(dirname "$0")/.."
BINS="fig4 fig5 fig6 fig7 fig8 fig9 table_batching history exp_scaling exp_region_split exp_recovery ablation_chunk ablation_reinsert ablation_ranges"
for b in $BINS; do
  echo "=== $b ==="
  cargo run --release -p wafl-bench --bin "$b"
  echo
done
