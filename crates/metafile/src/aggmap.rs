//! [`AggregateMap`]: the combined free-space metadata of one aggregate.
//!
//! Bundles the PVBN [`ActiveMap`] with [`AaStats`] and the geometry, and
//! keeps the two consistent across the reserve / commit / release / free
//! lifecycle. This is the object the White Alligator *infrastructure*
//! manipulates from inside Waffinity; cleaner threads never touch it
//! (§IV-B2) — they only see buckets.

use crate::{AaStats, ActiveMap, AllocError};
use std::sync::Arc;
use wafl_blockdev::{AaId, AggregateGeometry, RaidGroupId, Vbn};

/// Free-space metadata for an aggregate: active map + AA stats.
pub struct AggregateMap {
    geo: Arc<AggregateGeometry>,
    map: ActiveMap,
    aa: AaStats,
}

impl AggregateMap {
    /// A fresh, empty aggregate (all blocks free).
    pub fn new(geo: Arc<AggregateGeometry>) -> Self {
        let map = ActiveMap::new(geo.total_vbns());
        let aa = AaStats::new_all_free(&geo);
        Self { geo, map, aa }
    }

    /// The aggregate geometry.
    #[inline]
    pub fn geometry(&self) -> &Arc<AggregateGeometry> {
        &self.geo
    }

    /// The underlying active map (read-mostly access for tests/CP flush).
    #[inline]
    pub fn active_map(&self) -> &ActiveMap {
        &self.map
    }

    /// AA statistics.
    #[inline]
    pub fn aa_stats(&self) -> &AaStats {
        &self.aa
    }

    /// Aggregate-wide free-block count.
    #[inline]
    pub fn free_count(&self) -> u64 {
        self.map.free_count()
    }

    /// Select the emptiest AA of a RAID group (the fill policy of §IV-D).
    #[inline]
    pub fn select_aa(&self, rg: RaidGroupId) -> Option<AaId> {
        self.aa.select_emptiest(rg)
    }

    /// Reserve up to `max` free VBNs for one data drive of an AA, scanning
    /// from `from_dbn` (relative progress within the AA) downward. Returns
    /// the reserved VBNs in ascending order. This is the per-drive half of
    /// a bucket refill.
    pub fn reserve_in_aa(&self, aa: AaId, drive_in_rg: u32, from_dbn: u64, max: usize) -> Vec<Vbn> {
        let g = self.geo.raid_group(aa.rg);
        let dbns = self.geo.aa_dbn_range(aa);
        let start = dbns.start.max(from_dbn);
        if start >= dbns.end {
            return Vec::new();
        }
        let base = g.drive_vbn_range(drive_in_rg).start;
        let got = self.map.reserve_scan(base + start, base + dbns.end, max);
        if !got.is_empty() {
            self.aa.on_reserve(aa, got.len() as u64);
        }
        got.into_iter().map(Vbn).collect()
    }

    /// Commit a consumed VBN: dirty the covering metafile block.
    pub fn commit_used(&self, vbn: Vbn) -> Result<(), AllocError> {
        self.map.commit_used(vbn.0)
    }

    /// Release an unconsumed reservation back to the free pool.
    pub fn release(&self, vbn: Vbn) -> Result<(), AllocError> {
        self.map.release(vbn.0)?;
        self.aa.on_release(self.geo.aa_of(vbn), 1);
        Ok(())
    }

    /// Adopt a VBN as used without dirtying metafiles — the crash-recovery
    /// path, which rebuilds the in-memory maps from the committed disk
    /// image (the on-disk bitmaps are by definition already current for
    /// adopted blocks).
    pub fn adopt_used(&self, vbn: Vbn) -> Result<(), AllocError> {
        self.map.reserve(vbn.0)?;
        self.aa.on_reserve(self.geo.aa_of(vbn), 1);
        Ok(())
    }

    /// Free a previously allocated VBN (overwrite/delete path).
    pub fn free(&self, vbn: Vbn) -> Result<(), AllocError> {
        self.map.free(vbn.0)?;
        self.aa.on_release(self.geo.aa_of(vbn), 1);
        Ok(())
    }

    /// Is a VBN used (or reserved)?
    #[inline]
    pub fn is_used(&self, vbn: Vbn) -> bool {
        self.map.is_used(vbn.0)
    }

    /// Drain the dirty metafile-block list (CP flush).
    pub fn take_dirty_blocks(&self) -> Vec<u64> {
        self.map.take_dirty_blocks()
    }

    /// Full consistency check: AA counters match bitmap recounts and the
    /// running free count is exact. Test/scrub helper; call only when
    /// quiesced.
    pub fn verify(&self) -> Result<(), String> {
        self.aa.verify_against(&self.geo, &self.map)?;
        let recount = self.map.recount_free();
        let running = self.map.free_count();
        if recount != running {
            return Err(format!(
                "free count drift: running {running}, recount {recount}"
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for AggregateMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregateMap")
            .field("free", &self.free_count())
            .field("total", &self.geo.total_vbns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_blockdev::{Dbn, GeometryBuilder};

    fn aggmap() -> AggregateMap {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 256)
                .raid_group(2, 1, 256)
                .build(),
        );
        AggregateMap::new(geo)
    }

    #[test]
    fn reserve_in_aa_yields_contiguous_drive_vbns() {
        let am = aggmap();
        let aa = AaId {
            rg: RaidGroupId(0),
            index: 0,
        };
        let vbns = am.reserve_in_aa(aa, 1, 0, 8);
        assert_eq!(vbns.len(), 8);
        // Drive 1 of RG0 starts at VBN 256; AA0 covers DBN [0,64).
        assert_eq!(vbns[0], Vbn(256));
        for w in vbns.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "bucket VBNs must be contiguous");
        }
        assert_eq!(am.aa_stats().free_in(aa), 64 * 3 - 8);
        am.verify().unwrap();
    }

    #[test]
    fn reserve_respects_aa_boundary() {
        let am = aggmap();
        let aa = AaId {
            rg: RaidGroupId(0),
            index: 0,
        };
        // Ask for more than the AA holds on one drive (64 stripes).
        let vbns = am.reserve_in_aa(aa, 0, 0, 1000);
        assert_eq!(vbns.len(), 64);
        am.verify().unwrap();
    }

    #[test]
    fn reserve_from_progress_offset() {
        let am = aggmap();
        let aa = AaId {
            rg: RaidGroupId(0),
            index: 2,
        }; // DBNs [128,192)
        let vbns = am.reserve_in_aa(aa, 0, 150, 4);
        assert_eq!(vbns[0], Vbn(150));
        let done = am.reserve_in_aa(aa, 0, 192, 4);
        assert!(done.is_empty(), "progress past AA end yields nothing");
    }

    #[test]
    fn commit_release_free_keep_consistency() {
        let am = aggmap();
        let aa = AaId {
            rg: RaidGroupId(1),
            index: 0,
        };
        let vbns = am.reserve_in_aa(aa, 0, 0, 10);
        for v in &vbns[..6] {
            am.commit_used(*v).unwrap();
        }
        for v in &vbns[6..] {
            am.release(*v).unwrap();
        }
        for v in &vbns[..3] {
            am.free(*v).unwrap();
        }
        am.verify().unwrap();
        assert_eq!(am.free_count(), am.geometry().total_vbns() - 10 + 4 + 3);
        // 6 commits + 3 frees all landed in metafile block 0 of the map.
        assert_eq!(am.take_dirty_blocks().len(), 1);
    }

    #[test]
    fn freeing_credits_the_correct_aa() {
        let am = aggmap();
        let geo = Arc::clone(am.geometry());
        let aa1 = AaId {
            rg: RaidGroupId(0),
            index: 1,
        };
        let before = am.aa_stats().free_in(aa1);
        let vbn = geo.vbn_at(RaidGroupId(0), 2, Dbn(70)); // AA1
        am.active_map().reserve(vbn.0).unwrap();
        am.aa_stats().on_reserve(aa1, 1);
        am.free(vbn).unwrap();
        assert_eq!(am.aa_stats().free_in(aa1), before);
        am.verify().unwrap();
    }

    #[test]
    fn select_aa_follows_drain() {
        let am = aggmap();
        let rg = RaidGroupId(0);
        let first = am.select_aa(rg).unwrap();
        assert_eq!(first.index, 0);
        // Drain AA0 on all drives.
        for d in 0..3 {
            am.reserve_in_aa(first, d, 0, 64);
        }
        let next = am.select_aa(rg).unwrap();
        assert_eq!(next.index, 1);
    }
}
