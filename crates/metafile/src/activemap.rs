//! The active map: one bit per block, used/free.
//!
//! Bit semantics: **1 = used (or reserved), 0 = free.**
//!
//! ## Lifecycle of a bit under White Alligator
//!
//! 1. The infrastructure *reserves* free VBNs when filling a bucket
//!    ([`ActiveMap::reserve_scan`]): the bit flips 0→1 atomically so no
//!    other bucket fill can hand out the same VBN, but the covering
//!    metafile block is **not** yet dirtied — the reservation is a purely
//!    in-memory fact.
//! 2. When a used bucket is committed (step 6 of Figure 2),
//!    [`ActiveMap::commit_used`] dirties the covering metafile block: the
//!    allocation now must reach persistent storage with the CP.
//! 3. VBNs that were reserved but never consumed are *released*
//!    ([`ActiveMap::release`]): bit 1→0, nothing dirtied.
//! 4. Overwrites free the old VBN ([`ActiveMap::free`]): bit 1→0 and the
//!    covering metafile block is dirtied.
//!
//! All bit updates are lock-free (`AtomicU64` words with CAS/fetch ops), so
//! the map can be exercised by real concurrent threads in tests; in the
//! production architecture the Waffinity Range affinities already serialize
//! conflicting metafile-block accesses, and the simulator models that
//! serialization explicitly.
//!
//! ## Metafile-block dirty tracking
//!
//! With 4 KiB blocks, one metafile block covers [`BITS_PER_MF_BLOCK`] =
//! 32768 VBNs. [`ActiveMap::take_dirty_blocks`] drains the set of dirty
//! metafile blocks; the CP engine write-allocates and flushes them, and the
//! simulator charges infrastructure CPU per dirty block. Random-write
//! workloads dirty many more metafile blocks than sequential ones for the
//! same number of frees — the paper's explanation for Figure 7.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of allocation bits covered by one 4 KiB metafile block.
pub const BITS_PER_MF_BLOCK: u64 = (wafl_blockdev::BLOCK_SIZE as u64) * 8;

/// Errors from active-map bit transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Attempted to mark used/reserve a bit that is already 1.
    AlreadyUsed(u64),
    /// Attempted to free/release a bit that is already 0.
    AlreadyFree(u64),
    /// Index beyond the map.
    OutOfRange(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::AlreadyUsed(i) => write!(f, "block {i} is already used"),
            AllocError::AlreadyFree(i) => write!(f, "block {i} is already free"),
            AllocError::OutOfRange(i) => write!(f, "block {i} is out of range"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The active bitmap over a block-number space (PVBNs for an aggregate,
/// VVBNs for a FlexVol volume).
///
/// ```
/// use wafl_metafile::ActiveMap;
///
/// let map = ActiveMap::new(1 << 16);
/// // Infrastructure fill: reserve a chunk of free blocks (in-memory).
/// let chunk = map.reserve_scan(0, 1 << 16, 64);
/// assert_eq!(chunk.len(), 64);
/// assert_eq!(map.dirty_block_count(), 0, "reservations are not persistent state");
/// // A cleaner consumed one; commit dirties the covering metafile block.
/// map.commit_used(chunk[0]).unwrap();
/// assert_eq!(map.dirty_block_count(), 1);
/// // The rest go back.
/// for &b in &chunk[1..] { map.release(b).unwrap(); }
/// assert_eq!(map.free_count(), (1 << 16) - 1);
/// ```
pub struct ActiveMap {
    words: Vec<AtomicU64>,
    nbits: u64,
    /// Number of 0-bits. Maintained with relaxed atomics; exact whenever
    /// the system is quiesced (asserted by the conservation tests).
    free_count: AtomicU64,
    /// One bit per metafile block: set when the block has an un-flushed
    /// allocation/free update.
    dirty: Vec<AtomicU64>,
    /// Lifetime count of metafile-block dirtyings (a block being dirtied
    /// while already dirty does not re-count). Reporting only.
    dirty_events: AtomicU64,
}

impl ActiveMap {
    /// Create a map of `nbits` blocks, all free.
    pub fn new(nbits: u64) -> Self {
        let nwords = nbits.div_ceil(64) as usize;
        let nmf_blocks = nbits.div_ceil(BITS_PER_MF_BLOCK);
        let ndirty_words = nmf_blocks.div_ceil(64) as usize;
        let map = Self {
            words: (0..nwords).map(|_| AtomicU64::new(0)).collect(),
            nbits,
            free_count: AtomicU64::new(nbits),
            dirty: (0..ndirty_words).map(|_| AtomicU64::new(0)).collect(),
            dirty_events: AtomicU64::new(0),
        };
        // Mark the tail bits of the last word as "used" so scans never
        // yield indices ≥ nbits.
        if !nbits.is_multiple_of(64) {
            let last = nwords - 1;
            let valid = nbits % 64;
            // ordering: construction-time store before the map is shared.
            map.words[last].store(!0u64 << valid, Ordering::Relaxed);
        }
        map
    }

    /// Total bits in the map.
    #[inline]
    pub fn len(&self) -> u64 {
        self.nbits
    }

    /// True if the map covers zero blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Number of metafile blocks backing this map.
    #[inline]
    pub fn metafile_blocks(&self) -> u64 {
        self.nbits.div_ceil(BITS_PER_MF_BLOCK)
    }

    /// Current free-block count (exact when quiesced).
    #[inline]
    pub fn free_count(&self) -> u64 {
        // ordering: advisory gauge; staleness is acceptable.
        self.free_count.load(Ordering::Relaxed)
    }

    /// Lifetime number of metafile-block dirty events.
    #[inline]
    pub fn dirty_events(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.dirty_events.load(Ordering::Relaxed)
    }

    #[inline]
    fn check(&self, idx: u64) -> Result<(), AllocError> {
        if idx < self.nbits {
            Ok(())
        } else {
            Err(AllocError::OutOfRange(idx))
        }
    }

    /// Is the block used (or reserved)?
    #[inline]
    pub fn is_used(&self, idx: u64) -> bool {
        debug_assert!(idx < self.nbits);
        // ordering: Acquire — observes bits together with the state they
        // guard; pairs-with: activemap.bits.
        let w = self.words[(idx / 64) as usize].load(Ordering::Acquire);
        w & (1u64 << (idx % 64)) != 0
    }

    /// Atomically flip a free bit to used. In-memory reservation only: the
    /// metafile block is *not* dirtied (see module docs).
    pub fn reserve(&self, idx: u64) -> Result<(), AllocError> {
        self.check(idx)?;
        let mask = 1u64 << (idx % 64);
        // ordering: AcqRel RMW — the bit flip and the block state it guards
        // must not reorder; pairs-with: activemap.bits.
        let prev = self.words[(idx / 64) as usize].fetch_or(mask, Ordering::AcqRel);
        if prev & mask != 0 {
            return Err(AllocError::AlreadyUsed(idx));
        }
        // ordering: advisory gauge; staleness is acceptable.
        self.free_count.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    /// Undo a reservation that was never consumed: bit 1→0, no dirtying.
    pub fn release(&self, idx: u64) -> Result<(), AllocError> {
        self.check(idx)?;
        let mask = 1u64 << (idx % 64);
        // ordering: AcqRel RMW — the bit flip and the block state it guards
        // must not reorder; pairs-with: activemap.bits.
        let prev = self.words[(idx / 64) as usize].fetch_and(!mask, Ordering::AcqRel);
        if prev & mask == 0 {
            return Err(AllocError::AlreadyFree(idx));
        }
        // ordering: advisory gauge; staleness is acceptable.
        self.free_count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Record that a reserved block was consumed by a cleaner thread: the
    /// covering metafile block becomes dirty. The bit itself was already
    /// set at reservation time.
    ///
    /// Returns an error if the bit is unexpectedly 0 (commit without
    /// reserve), which would indicate an allocator bug.
    pub fn commit_used(&self, idx: u64) -> Result<(), AllocError> {
        self.check(idx)?;
        if !self.is_used(idx) {
            return Err(AllocError::AlreadyFree(idx));
        }
        self.mark_dirty(idx);
        Ok(())
    }

    /// Free a previously used block (e.g., the old VBN of an overwritten
    /// block, §II-C): bit 1→0 and the metafile block is dirtied.
    pub fn free(&self, idx: u64) -> Result<(), AllocError> {
        self.release(idx)?;
        self.mark_dirty(idx);
        Ok(())
    }

    #[inline]
    fn mark_dirty(&self, idx: u64) {
        let mf_block = idx / BITS_PER_MF_BLOCK;
        let mask = 1u64 << (mf_block % 64);
        // ordering: AcqRel RMW — the bit flip and the block state it guards
        // must not reorder; pairs-with: activemap.bits.
        let prev = self.dirty[(mf_block / 64) as usize].fetch_or(mask, Ordering::AcqRel);
        if prev & mask == 0 {
            // ordering: statistics counter; staleness is acceptable.
            self.dirty_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of currently dirty metafile blocks.
    pub fn dirty_block_count(&self) -> u64 {
        self.dirty
            .iter()
            // ordering: Acquire — observes bits together with the state they
            // guard; pairs-with: activemap.bits.
            .map(|w| w.load(Ordering::Acquire).count_ones() as u64)
            .sum()
    }

    /// Drain and return the indices of all dirty metafile blocks. The CP
    /// engine calls this when flushing allocation metafiles.
    pub fn take_dirty_blocks(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (wi, w) in self.dirty.iter().enumerate() {
            // ordering: AcqRel — the drain claims the dirty word and sees the
            // writes it summarizes; pairs-with: activemap.bits.
            let mut bits = w.swap(0, Ordering::AcqRel);
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                out.push(wi as u64 * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Scan `[start, end)` and atomically reserve up to `max` free blocks,
    /// returning their indices in ascending order. This is the bucket-fill
    /// primitive: "walks the allocation bitmaps to find free VBNs on each
    /// drive from the corresponding regions" (§IV-D).
    ///
    /// The scan is CAS-based and safe against concurrent reservers; each
    /// returned index was atomically transitioned 0→1 by this call.
    /// Returns fewer than `max` (possibly zero) if the range runs dry.
    pub fn reserve_scan(&self, start: u64, end: u64, max: usize) -> Vec<u64> {
        let end = end.min(self.nbits);
        let mut out = Vec::with_capacity(max.min(64));
        if start >= end || max == 0 {
            return out;
        }
        let mut idx = start;
        'outer: while idx < end && out.len() < max {
            let wi = (idx / 64) as usize;
            let word = &self.words[wi];
            let word_base = wi as u64 * 64;
            loop {
                // ordering: Acquire — observes bits together with the state they
                // guard; pairs-with: activemap.bits.
                let cur = word.load(Ordering::Acquire);
                // Bits of this word inside [idx, end) that are free.
                let lo_mask = !0u64 << (idx - word_base);
                let hi_mask = if end - word_base >= 64 {
                    !0u64
                } else {
                    (1u64 << (end - word_base)) - 1
                };
                let candidates = !cur & lo_mask & hi_mask;
                if candidates == 0 {
                    idx = word_base + 64;
                    continue 'outer;
                }
                let bit = candidates.trailing_zeros() as u64;
                let mask = 1u64 << bit;
                if word
                    // ordering: AcqRel success pairs with the other word RMWs; Acquire
                    // failure re-reads a current word; pairs-with: activemap.bits.
                    .compare_exchange_weak(cur, cur | mask, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // ordering: advisory gauge; staleness is acceptable.
                    self.free_count.fetch_sub(1, Ordering::Relaxed);
                    out.push(word_base + bit);
                    idx = word_base + bit + 1;
                    if out.len() >= max {
                        break 'outer;
                    }
                    if idx >= word_base + 64 {
                        continue 'outer;
                    }
                } // CAS failure: reread the word.
            }
        }
        out
    }

    /// Count free blocks in `[start, end)` (scrub/verification helper; not
    /// atomic with respect to concurrent updates).
    pub fn count_free_in(&self, start: u64, end: u64) -> u64 {
        let end = end.min(self.nbits);
        let mut n = 0u64;
        for idx in start..end {
            if !self.is_used(idx) {
                n += 1;
            }
        }
        n
    }

    /// Exact recount of all free bits (O(words); verification helper).
    pub fn recount_free(&self) -> u64 {
        let mut used: u64 = self
            .words
            .iter()
            // ordering: Acquire — observes bits together with the state they
            // guard; pairs-with: activemap.bits.
            .map(|w| w.load(Ordering::Acquire).count_ones() as u64)
            .sum();
        // Subtract the padding bits that were pre-set in `new`.
        if !self.nbits.is_multiple_of(64) {
            used -= 64 - (self.nbits % 64);
        }
        self.nbits - used
    }
}

impl std::fmt::Debug for ActiveMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveMap")
            .field("nbits", &self.nbits)
            .field("free", &self.free_count())
            .field("dirty_blocks", &self.dirty_block_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_map_is_all_free() {
        let m = ActiveMap::new(1000);
        assert_eq!(m.free_count(), 1000);
        assert_eq!(m.recount_free(), 1000);
        assert!(!m.is_used(0));
        assert!(!m.is_used(999));
    }

    #[test]
    fn reserve_release_cycle() {
        let m = ActiveMap::new(128);
        m.reserve(5).unwrap();
        assert!(m.is_used(5));
        assert_eq!(m.free_count(), 127);
        assert_eq!(m.reserve(5), Err(AllocError::AlreadyUsed(5)));
        m.release(5).unwrap();
        assert_eq!(m.free_count(), 128);
        assert_eq!(m.release(5), Err(AllocError::AlreadyFree(5)));
    }

    #[test]
    fn reservation_does_not_dirty_commit_does() {
        let m = ActiveMap::new(128);
        m.reserve(3).unwrap();
        assert_eq!(m.dirty_block_count(), 0);
        m.commit_used(3).unwrap();
        assert_eq!(m.dirty_block_count(), 1);
        assert_eq!(m.take_dirty_blocks(), vec![0]);
        assert_eq!(m.dirty_block_count(), 0);
    }

    #[test]
    fn free_dirties_and_restores() {
        let m = ActiveMap::new(128);
        m.reserve(7).unwrap();
        m.commit_used(7).unwrap();
        m.take_dirty_blocks();
        m.free(7).unwrap();
        assert!(!m.is_used(7));
        assert_eq!(m.dirty_block_count(), 1);
        assert_eq!(m.free_count(), 128);
    }

    #[test]
    fn commit_unreserved_is_an_error() {
        let m = ActiveMap::new(64);
        assert_eq!(m.commit_used(0), Err(AllocError::AlreadyFree(0)));
    }

    #[test]
    fn out_of_range_rejected() {
        let m = ActiveMap::new(64);
        assert_eq!(m.reserve(64), Err(AllocError::OutOfRange(64)));
        assert_eq!(m.free(100), Err(AllocError::OutOfRange(100)));
    }

    #[test]
    fn scan_finds_contiguous_free_run() {
        let m = ActiveMap::new(256);
        let got = m.reserve_scan(10, 200, 8);
        assert_eq!(got, (10..18).collect::<Vec<_>>());
        for &i in &got {
            assert!(m.is_used(i));
        }
    }

    #[test]
    fn scan_skips_used_blocks() {
        let m = ActiveMap::new(256);
        for i in [10u64, 11, 13, 64, 65] {
            m.reserve(i).unwrap();
        }
        let got = m.reserve_scan(10, 70, 5);
        assert_eq!(got, vec![12, 14, 15, 16, 17]);
    }

    #[test]
    fn scan_respects_range_end() {
        let m = ActiveMap::new(256);
        let got = m.reserve_scan(60, 66, 100);
        assert_eq!(got, vec![60, 61, 62, 63, 64, 65]);
    }

    #[test]
    fn scan_on_exhausted_range_returns_empty() {
        let m = ActiveMap::new(128);
        assert_eq!(m.reserve_scan(0, 64, 64).len(), 64);
        assert!(m.reserve_scan(0, 64, 1).is_empty());
    }

    #[test]
    fn tail_bits_never_returned() {
        let m = ActiveMap::new(70); // 6 padding bits in word 1
        let got = m.reserve_scan(0, 70, 100);
        assert_eq!(got.len(), 70);
        assert_eq!(*got.last().unwrap(), 69);
        assert_eq!(m.free_count(), 0);
        assert_eq!(m.recount_free(), 0);
    }

    #[test]
    fn dirty_blocks_reflect_bit_locality() {
        // The Figure 7 effect in miniature: scattered frees dirty many
        // metafile blocks, dense frees dirty one.
        let span = 8 * BITS_PER_MF_BLOCK;
        let dense = ActiveMap::new(span);
        let sparse = ActiveMap::new(span);
        for i in 0..64u64 {
            dense.reserve(i).unwrap();
            dense.free(i).unwrap();
            let j = i * BITS_PER_MF_BLOCK / 8; // spread over all 8 blocks
            sparse.reserve(j).unwrap();
            sparse.free(j).unwrap();
        }
        assert_eq!(dense.dirty_block_count(), 1);
        assert_eq!(sparse.dirty_block_count(), 8);
    }

    #[test]
    fn concurrent_reserve_scan_never_double_allocates() {
        // Invariant 1 of DESIGN.md §8 at the bitmap level.
        let m = Arc::new(ActiveMap::new(4096));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let got = m.reserve_scan(0, 4096, 16);
                    if got.is_empty() {
                        break;
                    }
                    mine.extend(got);
                }
                mine
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4096, "every block allocated exactly once");
        assert_eq!(m.free_count(), 0);
        assert_eq!(m.recount_free(), 0);
    }

    #[test]
    fn free_count_conservation_under_churn() {
        let m = ActiveMap::new(512);
        let got = m.reserve_scan(0, 512, 300);
        for &i in got.iter().take(100) {
            m.commit_used(i).unwrap();
        }
        for &i in got.iter().skip(100).take(100) {
            m.release(i).unwrap();
        }
        for &i in got.iter().take(50) {
            m.free(i).unwrap();
        }
        assert_eq!(m.free_count(), m.recount_free());
        assert_eq!(m.free_count(), 512 - 300 + 100 + 50);
    }

    #[test]
    fn dirty_events_count_unique_dirtyings() {
        let m = ActiveMap::new(BITS_PER_MF_BLOCK * 2);
        m.reserve(0).unwrap();
        m.commit_used(0).unwrap();
        m.reserve(1).unwrap();
        m.commit_used(1).unwrap(); // same metafile block, no new event
        assert_eq!(m.dirty_events(), 1);
        m.reserve(BITS_PER_MF_BLOCK).unwrap();
        m.commit_used(BITS_PER_MF_BLOCK).unwrap();
        assert_eq!(m.dirty_events(), 2);
        m.take_dirty_blocks();
        m.reserve(2).unwrap();
        m.commit_used(2).unwrap(); // block 0 dirtied again after drain
        assert_eq!(m.dirty_events(), 3);
    }
}
