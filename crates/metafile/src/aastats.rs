//! Per-Allocation-Area free-block statistics.
//!
//! "The infrastructure selects the Allocation Area in each RAID group that
//! contains the most free blocks and walks the allocation bitmaps to find
//! free VBNs on each drive from the corresponding regions. … By using AAs
//! to find empty regions of disk, WAFL increases the probability of full
//! stripe writes" (§IV-D).
//!
//! [`AaStats`] keeps an atomic free-block counter per AA per RAID group.
//! Counters reflect *reservations* immediately (so a drained AA is not
//! re-selected while its VBNs are still outstanding in buckets) and are
//! restored on release/free.

use std::sync::atomic::{AtomicU64, Ordering};
use wafl_blockdev::{AaId, AggregateGeometry, RaidGroupId, Vbn};

/// Free-block counts per Allocation Area, per RAID group.
pub struct AaStats {
    /// `per_rg[rg][aa]` = free blocks in that AA (across all its drives).
    per_rg: Vec<Vec<AtomicU64>>,
}

impl AaStats {
    /// Build stats for a geometry, assuming the aggregate starts empty
    /// (every data block free).
    pub fn new_all_free(geo: &AggregateGeometry) -> Self {
        let per_rg = geo
            .raid_groups()
            .iter()
            .map(|g| {
                let aa_count = geo.aa_count(g.id);
                (0..aa_count)
                    .map(|i| {
                        let r = geo.aa_dbn_range(AaId { rg: g.id, index: i });
                        AtomicU64::new((r.end - r.start) * g.width() as u64)
                    })
                    .collect()
            })
            .collect();
        Self { per_rg }
    }

    /// Number of AAs tracked for a group.
    pub fn aa_count(&self, rg: RaidGroupId) -> u32 {
        self.per_rg[rg.0 as usize].len() as u32
    }

    /// Free blocks currently accounted to an AA.
    pub fn free_in(&self, aa: AaId) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.per_rg[aa.rg.0 as usize][aa.index as usize].load(Ordering::Relaxed)
    }

    /// Total free blocks accounted to a RAID group.
    pub fn free_in_rg(&self, rg: RaidGroupId) -> u64 {
        self.per_rg[rg.0 as usize]
            .iter()
            // ordering: statistics counter; staleness is acceptable.
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Select the AA of `rg` with the most free blocks — the paper's AA
    /// selection policy. Ties break toward the lowest index (top of the
    /// drive). Returns `None` only if the group has no free blocks at all.
    pub fn select_emptiest(&self, rg: RaidGroupId) -> Option<AaId> {
        let aas = &self.per_rg[rg.0 as usize];
        let (best, free) = aas
            .iter()
            .enumerate()
            // ordering: statistics counter; staleness is acceptable.
            .map(|(i, a)| (i, a.load(Ordering::Relaxed)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        (free > 0).then_some(AaId {
            rg,
            index: best as u32,
        })
    }

    /// Account `n` blocks reserved out of `aa`.
    pub fn on_reserve(&self, aa: AaId, n: u64) {
        let c = &self.per_rg[aa.rg.0 as usize][aa.index as usize];
        // ordering: statistics counter; staleness is acceptable.
        let prev = c.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "AA free count underflow");
    }

    /// Account `n` blocks released (unused reservation) back to `aa`.
    pub fn on_release(&self, aa: AaId, n: u64) {
        // ordering: statistics counter; staleness is acceptable.
        self.per_rg[aa.rg.0 as usize][aa.index as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Account one block freed at `vbn` (overwrite or delete).
    pub fn on_free(&self, geo: &AggregateGeometry, vbn: Vbn) {
        let aa = geo.aa_of(vbn);
        self.on_release(aa, 1);
    }

    /// Verify that every AA counter matches an exact recount from the
    /// active map. Test/scrub helper.
    pub fn verify_against(
        &self,
        geo: &AggregateGeometry,
        map: &crate::ActiveMap,
    ) -> Result<(), String> {
        for g in geo.raid_groups() {
            for index in 0..geo.aa_count(g.id) {
                let aa = AaId { rg: g.id, index };
                let dbns = geo.aa_dbn_range(aa);
                let mut actual = 0u64;
                for d in 0..g.width() {
                    let base = g.drive_vbn_range(d).start;
                    actual += map.count_free_in(base + dbns.start, base + dbns.end);
                }
                let tracked = self.free_in(aa);
                if tracked != actual {
                    return Err(format!(
                        "AA {aa:?}: tracked {tracked} free, actual {actual}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for AaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AaStats")
            .field("raid_groups", &self.per_rg.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_blockdev::GeometryBuilder;

    fn geo() -> AggregateGeometry {
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 256) // 4 AAs of 64 stripes
            .raid_group(2, 1, 256)
            .build()
    }

    #[test]
    fn initial_counts_match_geometry() {
        let g = geo();
        let s = AaStats::new_all_free(&g);
        assert_eq!(s.aa_count(RaidGroupId(0)), 4);
        assert_eq!(
            s.free_in(AaId {
                rg: RaidGroupId(0),
                index: 0
            }),
            64 * 3
        );
        assert_eq!(
            s.free_in(AaId {
                rg: RaidGroupId(1),
                index: 3
            }),
            64 * 2
        );
        assert_eq!(s.free_in_rg(RaidGroupId(0)), 256 * 3);
    }

    #[test]
    fn select_emptiest_prefers_most_free_then_lowest_index() {
        let g = geo();
        let s = AaStats::new_all_free(&g);
        // All equal → index 0.
        assert_eq!(
            s.select_emptiest(RaidGroupId(0)),
            Some(AaId {
                rg: RaidGroupId(0),
                index: 0
            })
        );
        // Drain AA0 a bit → AA1 wins.
        s.on_reserve(
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            10,
        );
        assert_eq!(
            s.select_emptiest(RaidGroupId(0)),
            Some(AaId {
                rg: RaidGroupId(0),
                index: 1
            })
        );
    }

    #[test]
    fn select_none_when_group_full() {
        let g = GeometryBuilder::new()
            .aa_stripes(4)
            .raid_group(1, 1, 8)
            .build();
        let s = AaStats::new_all_free(&g);
        s.on_reserve(
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            4,
        );
        s.on_reserve(
            AaId {
                rg: RaidGroupId(0),
                index: 1,
            },
            4,
        );
        assert_eq!(s.select_emptiest(RaidGroupId(0)), None);
    }

    #[test]
    fn reserve_release_roundtrip() {
        let g = geo();
        let s = AaStats::new_all_free(&g);
        let aa = AaId {
            rg: RaidGroupId(1),
            index: 2,
        };
        s.on_reserve(aa, 30);
        assert_eq!(s.free_in(aa), 128 - 30);
        s.on_release(aa, 30);
        assert_eq!(s.free_in(aa), 128);
    }

    #[test]
    fn on_free_credits_the_right_aa() {
        let g = geo();
        let s = AaStats::new_all_free(&g);
        // VBN on RG0, drive 1, dbn 100 → AA index 1.
        let vbn = g.vbn_at(RaidGroupId(0), 1, wafl_blockdev::Dbn(100));
        let aa = AaId {
            rg: RaidGroupId(0),
            index: 1,
        };
        s.on_reserve(aa, 5);
        s.on_free(&g, vbn);
        assert_eq!(s.free_in(aa), 64 * 3 - 4);
    }

    #[test]
    fn verify_against_fresh_map_passes() {
        let g = geo();
        let s = AaStats::new_all_free(&g);
        let m = crate::ActiveMap::new(g.total_vbns());
        s.verify_against(&g, &m).unwrap();
    }
}
