//! # wafl-metafile — allocation metafiles and loose accounting
//!
//! WAFL stores *all* metadata in files ("metafiles", §II-B of the paper).
//! The metafiles relevant to write allocation are the ones that track free
//! space:
//!
//! * the **active map** — "a metafile containing one bit for each block in
//!   the file system to track whether the corresponding block is used or
//!   free. Thus, allocations and frees of VBNs toggle bits in this
//!   metafile" (§III-C). Modeled by [`activemap::ActiveMap`]. Because the
//!   metafile is itself made of 4 KiB blocks, the active map tracks which
//!   *metafile blocks* each bit update dirties; the contrast between
//!   sequential writes (updates concentrated in few metafile blocks) and
//!   random writes (updates scattered over many) is exactly the effect the
//!   paper uses to explain Figure 7;
//! * per-**Allocation-Area** free-block counts — the infrastructure
//!   "selects the Allocation Area in each RAID group that contains the
//!   most free blocks" (§IV-D). Modeled by [`aastats::AaStats`];
//! * [`aggmap::AggregateMap`] bundles the two, keyed by the aggregate
//!   geometry, and is the structure the White Alligator infrastructure
//!   operates on. A plain [`activemap::ActiveMap`] over the VVBN space
//!   plays the same role inside each FlexVol volume.
//!
//! The crate also provides **loose accounting** ([`loose`]): per-thread
//! counter tokens that are batch-applied to global counters, introduced
//! when inode cleaning first moved off the serial path (§III-C) and
//! directly analogous to OSDI 2010's "sloppy counters" (§VI).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aastats;
pub mod activemap;
pub mod aggmap;
pub mod loose;

pub use aastats::AaStats;
pub use activemap::{ActiveMap, AllocError, BITS_PER_MF_BLOCK};
pub use aggmap::AggregateMap;
pub use loose::{LooseCounter, LooseToken};
