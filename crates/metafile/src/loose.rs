//! Loose accounting: batched per-thread counter updates.
//!
//! From §III-C of the paper: "cleaner threads were extended to use *loose
//! accounting*, wherein counter updates were staged in a local token that
//! was later applied to the global counters in a batched fashion … Loose
//! accounting allowed the counters' values to deviate from their
//! instantaneous logical values, and all counter accesses had to be
//! audited and corrected to deal with temporary discrepancies."
//!
//! [`LooseCounter`] is the shared global; each cleaner thread holds a
//! [`LooseToken`] and stages deltas locally, flushing to the global only
//! when the staged magnitude reaches the batch threshold (or on drop).
//! `value_loose()` may therefore lag reality by up to
//! `threshold × tokens`; `flush`-then-read (`reconcile`) is exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared counter updated loosely through per-thread tokens.
///
/// ```
/// use wafl_metafile::LooseCounter;
///
/// let free_blocks = LooseCounter::new(1_000);
/// let mut token = free_blocks.token(64); // one per cleaner thread
/// for _ in 0..10 {
///     token.add(-1); // allocation decrements, staged locally
/// }
/// // The global lags until the batch threshold (or a flush):
/// assert_eq!(free_blocks.value_loose(), 1_000);
/// token.flush();
/// assert_eq!(free_blocks.value_loose(), 990);
/// ```
#[derive(Debug, Default)]
pub struct LooseCounter {
    global: AtomicI64,
    /// Number of batched applications (for the M4 micro-bench: fewer
    /// global RMWs = less contention).
    applies: AtomicU64,
}

impl LooseCounter {
    /// New counter with initial value.
    pub fn new(initial: i64) -> Arc<Self> {
        Arc::new(Self {
            global: AtomicI64::new(initial),
            applies: AtomicU64::new(0),
        })
    }

    /// The *loose* value: excludes deltas still staged in tokens.
    #[inline]
    pub fn value_loose(&self) -> i64 {
        // ordering: loose accounting by design (DESIGN.md) — staleness is the feature.
        self.global.load(Ordering::Relaxed)
    }

    /// How many batched applications have hit the global so far.
    #[inline]
    pub fn apply_count(&self) -> u64 {
        // ordering: loose accounting by design (DESIGN.md) — staleness is the feature.
        self.applies.load(Ordering::Relaxed)
    }

    /// Apply a batched delta directly (the token flush path, but also
    /// usable for strict accounting with `threshold = 0` semantics).
    #[inline]
    pub fn apply(&self, delta: i64) {
        if delta != 0 {
            // ordering: loose accounting by design (DESIGN.md) — staleness is the feature.
            self.global.fetch_add(delta, Ordering::Relaxed);
            // ordering: loose accounting by design (DESIGN.md) — staleness is the feature.
            self.applies.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Create a token that batches up to `threshold` magnitude before
    /// flushing. `threshold = 0` degenerates to strict (every update goes
    /// straight to the global — the pre-loose-accounting behaviour used as
    /// the M4 baseline). Negative thresholds batch by magnitude;
    /// `i64::MIN` is fine (`unsigned_abs`, unlike `abs`, cannot overflow).
    pub fn token(self: &Arc<Self>, threshold: i64) -> LooseToken {
        LooseToken {
            counter: Arc::clone(self),
            staged: 0,
            threshold: threshold.unsigned_abs(),
        }
    }
}

/// A per-thread staging token for a [`LooseCounter`].
///
/// Not `Sync`: exactly one thread owns a token, which is the whole point —
/// updates to `staged` are unsynchronized.
#[derive(Debug)]
pub struct LooseToken {
    counter: Arc<LooseCounter>,
    staged: i64,
    threshold: u64,
}

impl LooseToken {
    /// Stage a delta; flushes automatically when the staged magnitude
    /// reaches the threshold. Staging never overflows: if the running sum
    /// would wrap, the old stage is flushed first and `delta` starts a
    /// fresh one, so no update is ever lost or distorted.
    #[inline]
    pub fn add(&mut self, delta: i64) {
        let (sum, overflowed) = self.staged.overflowing_add(delta);
        if overflowed {
            self.flush();
            self.staged = delta;
        } else {
            self.staged = sum;
        }
        if self.threshold == 0 || self.staged.unsigned_abs() >= self.threshold {
            self.flush();
        }
    }

    /// Currently staged (unapplied) delta.
    #[inline]
    pub fn staged(&self) -> i64 {
        self.staged
    }

    /// Apply the staged delta to the global counter now.
    pub fn flush(&mut self) {
        if self.staged != 0 {
            self.counter.apply(self.staged);
            self.staged = 0;
        }
    }
}

impl Drop for LooseToken {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_token_applies_every_update() {
        let c = LooseCounter::new(0);
        let mut t = c.token(0);
        for _ in 0..10 {
            t.add(1);
        }
        assert_eq!(c.value_loose(), 10);
        assert_eq!(c.apply_count(), 10);
    }

    #[test]
    fn loose_token_batches() {
        let c = LooseCounter::new(100);
        let mut t = c.token(8);
        for _ in 0..7 {
            t.add(1);
        }
        // Below threshold: global lags.
        assert_eq!(c.value_loose(), 100);
        assert_eq!(t.staged(), 7);
        t.add(1); // hits threshold → flush
        assert_eq!(c.value_loose(), 108);
        assert_eq!(c.apply_count(), 1);
    }

    #[test]
    fn negative_deltas_batch_by_magnitude() {
        let c = LooseCounter::new(0);
        let mut t = c.token(4);
        t.add(-3);
        assert_eq!(c.value_loose(), 0);
        t.add(-1);
        assert_eq!(c.value_loose(), -4);
    }

    #[test]
    fn drop_flushes_remainder() {
        let c = LooseCounter::new(0);
        {
            let mut t = c.token(1000);
            t.add(5);
            assert_eq!(c.value_loose(), 0);
        }
        assert_eq!(c.value_loose(), 5);
    }

    #[test]
    fn mixed_signs_can_cancel_without_applying() {
        let c = LooseCounter::new(0);
        let mut t = c.token(10);
        t.add(5);
        t.add(-5);
        t.flush();
        assert_eq!(c.value_loose(), 0);
        assert_eq!(c.apply_count(), 0, "net-zero flush is free");
    }

    #[test]
    fn concurrent_tokens_reconcile_exactly() {
        let c = LooseCounter::new(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let mut t = c.token(64);
                for i in 0..10_000i64 {
                    t.add(if i % 3 == 0 { -1 } else { 1 });
                }
                // Token drop flushes the tail.
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Per thread: 3334 negative, 6666 positive → +3332.
        assert_eq!(c.value_loose(), 8 * 3332);
    }

    #[test]
    fn extreme_threshold_does_not_panic() {
        // Regression: `threshold.abs()` panicked on i64::MIN. The token
        // must treat it as its magnitude (2^63) and simply never flush
        // early.
        let c = LooseCounter::new(0);
        let mut t = c.token(i64::MIN);
        t.add(100);
        assert_eq!(c.value_loose(), 0, "staged, threshold unreachable");
        t.flush();
        assert_eq!(c.value_loose(), 100);
    }

    #[test]
    fn staged_sum_overflow_flushes_instead_of_wrapping() {
        // Regression: `staged += delta` overflowed in debug builds. The
        // running stage must flush and restart rather than wrap, losing
        // nothing.
        let c = LooseCounter::new(0);
        let mut t = c.token(i64::MIN); // magnitude 2^63: never reached by
                                       // any single staged sum below
        t.add(i64::MAX);
        assert_eq!(c.value_loose(), 0, "MAX stays staged");
        t.add(1); // MAX + 1 would wrap: flush MAX first, then stage 1
        assert_eq!(c.value_loose(), i64::MAX);
        assert_eq!(t.staged(), 1);
        t.add(-3); // staged -2
        t.add(i64::MIN); // -2 + MIN would wrap: flush -2, stage MIN —
                         // which hits the 2^63 threshold and flushes too
        assert_eq!(c.value_loose(), -3, "MAX - 2 + MIN");
        assert_eq!(t.staged(), 0);
    }

    #[test]
    fn batching_reduces_global_rmw_count() {
        let strict = LooseCounter::new(0);
        let loose = LooseCounter::new(0);
        let mut ts = strict.token(0);
        let mut tl = loose.token(64);
        for _ in 0..1000 {
            ts.add(1);
            tl.add(1);
        }
        ts.flush();
        tl.flush();
        assert_eq!(strict.value_loose(), loose.value_loose());
        assert!(loose.apply_count() * 10 < strict.apply_count());
    }
}
