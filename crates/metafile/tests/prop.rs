//! Property tests: active-map bit discipline, dirty-block coverage, and
//! AA accounting under random and concurrent schedules.

use proptest::prelude::*;
use std::sync::Arc;
use wafl_blockdev::GeometryBuilder;
use wafl_metafile::{ActiveMap, AggregateMap, BITS_PER_MF_BLOCK};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_state_changing_persistent_op_dirties_its_covering_block(
        indices in prop::collection::vec(0u64..(3 * BITS_PER_MF_BLOCK), 1..60),
    ) {
        let map = ActiveMap::new(3 * BITS_PER_MF_BLOCK);
        for &idx in &indices {
            if map.reserve(idx).is_err() {
                continue;
            }
            map.commit_used(idx).unwrap();
            let dirty = map.take_dirty_blocks();
            prop_assert!(
                dirty.contains(&(idx / BITS_PER_MF_BLOCK)),
                "commit of {idx} must dirty block {}",
                idx / BITS_PER_MF_BLOCK
            );
            map.free(idx).unwrap();
            let dirty = map.take_dirty_blocks();
            prop_assert!(dirty.contains(&(idx / BITS_PER_MF_BLOCK)));
        }
    }

    #[test]
    fn reserve_release_is_identity_on_observable_state(
        indices in prop::collection::btree_set(0u64..4096, 1..200),
    ) {
        let map = ActiveMap::new(4096);
        let before_free = map.free_count();
        for &idx in &indices {
            map.reserve(idx).unwrap();
        }
        for &idx in &indices {
            map.release(idx).unwrap();
        }
        prop_assert_eq!(map.free_count(), before_free);
        prop_assert_eq!(map.recount_free(), before_free);
        prop_assert_eq!(map.dirty_block_count(), 0, "pure reservation churn is clean");
        for idx in 0..4096 {
            prop_assert!(!map.is_used(idx));
        }
    }

    #[test]
    fn scan_partitions_space_with_concurrent_threads(
        nbits in 256u64..2048,
        threads in 2usize..6,
        chunk in 1usize..64,
    ) {
        let map = Arc::new(ActiveMap::new(nbits));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let vs = map.reserve_scan(0, nbits, chunk);
                        if vs.is_empty() {
                            return got;
                        }
                        got.extend(vs);
                    }
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), n, "no block handed out twice");
        prop_assert_eq!(n as u64, nbits, "all space handed out exactly once");
        prop_assert_eq!(map.free_count(), 0);
    }

    #[test]
    fn aa_selection_is_argmax_of_free_counts(
        drains in prop::collection::vec((0u32..8, 1u64..100), 0..20),
    ) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(2, 1, 256) // 8 AAs × 64 free each
                .build(),
        );
        let am = AggregateMap::new(Arc::clone(&geo));
        let stats = am.aa_stats();
        for (aa, n) in drains {
            let aa = wafl_blockdev::AaId {
                rg: wafl_blockdev::RaidGroupId(0),
                index: aa % 8,
            };
            let n = n.min(stats.free_in(aa));
            if n > 0 {
                stats.on_reserve(aa, n);
            }
        }
        let best = stats.select_emptiest(wafl_blockdev::RaidGroupId(0));
        let max_free = (0..8)
            .map(|i| {
                stats.free_in(wafl_blockdev::AaId {
                    rg: wafl_blockdev::RaidGroupId(0),
                    index: i,
                })
            })
            .max()
            .unwrap();
        match best {
            Some(aa) => prop_assert_eq!(stats.free_in(aa), max_free),
            None => prop_assert_eq!(max_free, 0),
        }
    }

    #[test]
    fn aggmap_reserve_commit_free_cycles_are_lossless(
        cycles in prop::collection::vec((0u32..2, 1usize..64), 1..30),
    ) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(2, 1, 1024)
                .build(),
        );
        let am = AggregateMap::new(Arc::clone(&geo));
        let total = am.free_count();
        for (drive, n) in cycles {
            let Some(aa) = am.select_aa(wafl_blockdev::RaidGroupId(0)) else { break };
            let dbns = geo.aa_dbn_range(aa);
            let got = am.reserve_in_aa(aa, drive % 2, dbns.start, n);
            for v in &got {
                am.commit_used(*v).unwrap();
            }
            for v in &got {
                am.free(*v).unwrap();
            }
        }
        prop_assert_eq!(am.free_count(), total, "commit+free round-trips all space");
        am.verify().unwrap();
    }
}
