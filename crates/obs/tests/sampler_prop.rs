//! Property test for the sampler's conservation invariant: no counter
//! increment is ever lost or double-counted across snapshot
//! boundaries — for every counter, `base + Σ ring deltas` equals the
//! registry's absolute value at the last tick, no matter how
//! increments interleave with ticks or how many ticks the bounded ring
//! evicts (evicted deltas fold into the base, they don't vanish).

use obs::{Registry, RegistrySource, Sampler, SamplerConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// One scripted step: bump some counters, then maybe tick the sampler.
#[derive(Debug, Clone)]
struct Step {
    /// (counter index, increment) pairs applied before the tick.
    bumps: Vec<(usize, u64)>,
    /// Whether this step ends with a `sample()` call.
    tick: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        proptest::collection::vec((0usize..4, 0u64..1000), 0..6),
        proptest::bool::ANY,
    )
        .prop_map(|(bumps, tick)| Step { bumps, tick })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summed_deltas_equal_registry_totals(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        capacity in 1usize..6,
    ) {
        let names = ["alpha", "beta", "gamma", "delta"];
        let reg = Arc::new(Registry::new());
        let sampler = Sampler::new(
            RegistrySource::Shared(Arc::clone(&reg)),
            SamplerConfig { capacity, ..SamplerConfig::default() },
        );

        let mut sampled_since_last_tick = true; // tick 0 baseline absent
        for step in &steps {
            for &(i, n) in &step.bumps {
                reg.counter(names[i]).add(n);
                sampled_since_last_tick = false;
            }
            if step.tick {
                sampler.sample();
                sampled_since_last_tick = true;
            }
        }
        if !sampled_since_last_tick {
            // Fold the trailing increments into a final tick so the
            // invariant covers every increment the script made.
            sampler.sample();
        }

        for name in names {
            prop_assert_eq!(
                sampler.total(name),
                reg.counter(name).get(),
                "counter {} must conserve across {} evictions",
                name,
                sampler.evictions()
            );
        }
        // The ring honors its bound even under eviction pressure.
        prop_assert!(sampler.ticks().len() <= capacity);
        // The sampler's own tick counter obeys the same invariant.
        prop_assert_eq!(
            sampler.total("telemetry_ticks"),
            reg.counter("telemetry_ticks").get()
        );
    }
}
