//! Event taxonomy: the typed vocabulary every trace point in the
//! workspace records into its thread's ring (see DESIGN.md §11).
//!
//! Kinds are deliberately coarse — one per lifecycle edge the paper's
//! evaluation cares about — so a trace stays readable in Perfetto and
//! the ring's fixed slots (kind + ts + dur + one argument word) suffice.

use serde::{Deserialize, Serialize};

/// What happened. Stored in the ring as a `u32`; `arg` meaning is
/// per-kind (documented on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u32)]
pub enum EventKind {
    /// Span: a cleaner blocked in `get_bucket_many` until buckets
    /// arrived. `arg` = buckets granted.
    Get = 0,
    /// Instant: a GET found the cache empty and had to wait on the
    /// refill condvar. `arg` = buckets still wanted.
    GetStall = 1,
    /// Instant: USE activity on a bucket, recorded once per PUT at
    /// bucket granularity (the per-block USE path is intentionally
    /// untraced — it has zero synchronization; §IV-C). `arg` = blocks
    /// consumed from the bucket.
    Use = 2,
    /// Instant: a bucket was PUT (returned or retired). `arg` =
    /// blocks consumed.
    Put = 3,
    /// Span: infrastructure commit of a PUT bucket (used-queue walk +
    /// release of leftovers). `arg` = blocks committed to used queues.
    CommitBucket = 4,
    /// Span: one infrastructure refill round. `arg` = buckets built.
    Refill = 5,
    /// Instant: a collective `insert_all` handed a refill round's
    /// buckets to the cache in one call. `arg` = bucket count.
    InsertAll = 6,
    /// Span: tetris fired a full stripe write to a RAID group.
    /// `arg` = blocks in the stripe.
    StripeFire = 7,
    /// Span: a stage of deferred frees committed to the metafiles.
    /// `arg` = VBNs freed.
    StageCommit = 8,
    /// Span: a cleaner-pool worker processed one work item.
    /// `arg` = cleaning jobs in the item.
    CleanItem = 9,
    /// Span: one checkpoint phase (freeze / clean / apply / metafile
    /// flush / superblock commit). `arg` = phase number, 1-based.
    CpPhase = 10,
    /// Instant: the fault injector fired on an I/O. `arg` = decision
    /// code (1 slow, 2 drive-failed, 3 transient, 4 torn write).
    Fault = 11,
    /// Catch-all for tests and ad-hoc probes. `arg` is caller-defined.
    Custom = 12,
    /// Span: one scrub range message (an allocation-area unit walked by
    /// the online scrubber). `arg` = blocks checked in the unit.
    Scrub = 13,
    /// Span: one asynchronous write I/O serviced by an `aio` worker
    /// (submit-ring pop → media completion). `arg` = blocks written.
    Io = 14,
}

impl EventKind {
    /// Stable lowercase name, used by the Chrome exporter and text dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Get => "get",
            EventKind::GetStall => "get_stall",
            EventKind::Use => "use",
            EventKind::Put => "put",
            EventKind::CommitBucket => "commit_bucket",
            EventKind::Refill => "refill",
            EventKind::InsertAll => "insert_all",
            EventKind::StripeFire => "stripe_fire",
            EventKind::StageCommit => "stage_commit",
            EventKind::CleanItem => "clean_item",
            EventKind::CpPhase => "cp_phase",
            EventKind::Fault => "fault",
            EventKind::Custom => "custom",
            EventKind::Scrub => "scrub",
            EventKind::Io => "io",
        }
    }

    /// Decode the ring's `u32` encoding; unknown values map to `Custom`
    /// (a torn slot can briefly hold garbage the seqlock recheck then
    /// rejects, so decoding must be total).
    pub fn from_u32(v: u32) -> EventKind {
        match v {
            0 => EventKind::Get,
            1 => EventKind::GetStall,
            2 => EventKind::Use,
            3 => EventKind::Put,
            4 => EventKind::CommitBucket,
            5 => EventKind::Refill,
            6 => EventKind::InsertAll,
            7 => EventKind::StripeFire,
            8 => EventKind::StageCommit,
            9 => EventKind::CleanItem,
            10 => EventKind::CpPhase,
            11 => EventKind::Fault,
            13 => EventKind::Scrub,
            14 => EventKind::Io,
            _ => EventKind::Custom,
        }
    }
}

/// One decoded ring event, as returned by `EventRing::snapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Event type.
    pub kind: EventKind,
    /// Start timestamp, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Per-kind argument word (see `EventKind` variant docs).
    pub arg: u64,
    /// Position in the thread's event sequence (0-based, monotonically
    /// increasing; gaps never occur — overwritten events raise the
    /// ring's dropped counter instead).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u32() {
        for v in 0..=14u32 {
            let k = EventKind::from_u32(v);
            assert_eq!(k as u32, v, "kind {v} must round-trip");
        }
        // Unknown encodings decode (to Custom) rather than panicking.
        assert_eq!(EventKind::from_u32(999), EventKind::Custom);
    }

    #[test]
    fn kind_names_are_unique() {
        let names: Vec<_> = (0..=14u32).map(|v| EventKind::from_u32(v).name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
