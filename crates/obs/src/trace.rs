//! Thread-local trace recording: each thread lazily registers one
//! [`EventRing`](crate::ring::EventRing) in a process-wide table; spans
//! and instants go to the current thread's ring with nanosecond
//! timestamps relative to a process epoch.
//!
//! Two compilations of this module exist:
//!
//! * `--features trace`: the real implementation below.
//! * default: every function is an empty `#[inline(always)]` no-op and
//!   [`Span`] is a zero-sized type — the `trace_span!`/`trace_instant!`
//!   macros cost literally nothing (the optimizer deletes the calls).
//!
//! Because the cfg lives *here* (the `log`-crate pattern), downstream
//! crates need no feature forwarding: enabling `obs/trace` anywhere in
//! a build flips every consumer at once (resolver-2 unification).
//!
//! Inside a trace-enabled build there is additionally a **runtime**
//! recording switch ([`set_recording`]) so a single binary can measure
//! its own tracing overhead (see `exp_put_convoy`).

use crate::event::Event;

/// True iff this build compiled the tracing fast path in.
pub const ENABLED: bool = cfg!(feature = "trace");

/// One thread's exported trace: identity plus a coherent ring snapshot.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Small dense id assigned at first event (stable for the process).
    pub tid: u64,
    /// OS thread name at registration ("?" if unnamed).
    pub name: String,
    /// Readable events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overwrite.
    pub dropped: u64,
    /// Total events the thread ever recorded.
    pub head: u64,
}

#[cfg(feature = "trace")]
mod imp {
    use super::ThreadTrace;
    use crate::event::EventKind;
    use crate::ring::EventRing;
    use std::cell::OnceCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// Per-thread ring capacity. 4096 slots × 5 words ≈ 160 KiB/thread;
    /// at the sim's event rates this holds the last few hundred
    /// milliseconds of activity (older events are counted, not kept).
    const RING_CAP: usize = 4096;

    /// Runtime switch (within a trace-enabled build). Defaults to on —
    /// tracing is "always-on"; benches flip it to measure overhead.
    // Note: deliberately std, not the mc shim — the switch is trace-only
    // plumbing the model checker never sees (it drives the ring directly).
    static RECORDING: AtomicBool = AtomicBool::new(true);

    static NEXT_TID: AtomicU64 = AtomicU64::new(0);

    struct ThreadEntry {
        tid: u64,
        name: String,
        ring: Arc<EventRing>,
    }

    fn threads() -> &'static Mutex<Vec<ThreadEntry>> {
        static THREADS: OnceLock<Mutex<Vec<ThreadEntry>>> = OnceLock::new(); // lock-rank: obs.threads 88
        THREADS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Nanoseconds since the process trace epoch (first use).
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    /// Flip the runtime recording switch.
    pub fn set_recording(on: bool) {
        // ordering: independent on/off flag; no data is published
        // through it (rings have their own protocol).
        RECORDING.store(on, Ordering::Relaxed);
    }

    /// Is recording currently on?
    pub fn recording() -> bool {
        // ordering: advisory flag read; staleness acceptable.
        RECORDING.load(Ordering::Relaxed)
    }

    thread_local! {
        static RING: OnceCell<Arc<EventRing>> = const { OnceCell::new() };
    }

    fn register_current_thread() -> Arc<EventRing> {
        let ring = Arc::new(EventRing::with_capacity(RING_CAP));
        let entry = ThreadEntry {
            // ordering: unique-id allocation; atomicity only.
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current().name().unwrap_or("?").to_string(),
            ring: Arc::clone(&ring),
        };
        threads().lock().unwrap().push(entry);
        ring
    }

    fn record(kind: EventKind, ts_ns: u64, dur_ns: u64, arg: u64) {
        RING.with(|cell| {
            cell.get_or_init(register_current_thread)
                .record(kind, ts_ns, dur_ns, arg);
        });
    }

    /// Record an instantaneous event on the current thread.
    #[inline]
    pub fn instant(kind: EventKind, arg: u64) {
        if recording() {
            record(kind, now_ns(), 0, arg);
        }
    }

    /// RAII span: records one complete event (start..drop) when dropped.
    /// `armed` is latched at creation so a mid-span recording toggle
    /// never emits a span with a bogus zero start.
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
    pub struct Span {
        kind: EventKind,
        start_ns: u64,
        arg: u64,
        armed: bool,
    }

    impl Span {
        /// Set the span's argument word (often only known at the end,
        /// e.g. buckets built by a refill round).
        pub fn set_arg(&mut self, arg: u64) {
            self.arg = arg;
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if self.armed && recording() {
                let end = now_ns();
                record(
                    self.kind,
                    self.start_ns,
                    end.saturating_sub(self.start_ns),
                    self.arg,
                );
            }
        }
    }

    /// Open a span of `kind` starting now.
    #[inline]
    pub fn span(kind: EventKind) -> Span {
        span_arg(kind, 0)
    }

    /// Open a span with an initial argument word.
    #[inline]
    pub fn span_arg(kind: EventKind, arg: u64) -> Span {
        let armed = recording();
        Span {
            kind,
            start_ns: if armed { now_ns() } else { 0 },
            arg,
            armed,
        }
    }

    /// Snapshot every registered thread's ring (rings of exited threads
    /// are retained so their events still export).
    pub fn snapshot_all() -> Vec<ThreadTrace> {
        threads()
            .lock()
            .unwrap()
            .iter()
            .map(|e| {
                let snap = e.ring.snapshot();
                ThreadTrace {
                    tid: e.tid,
                    name: e.name.clone(),
                    events: snap.events,
                    dropped: snap.dropped,
                    head: snap.head,
                }
            })
            .collect()
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::ThreadTrace;
    use crate::event::EventKind;

    /// No-op stand-in; see the trace-enabled twin.
    pub fn now_ns() -> u64 {
        0
    }

    /// No-op: recording cannot be enabled without the `trace` feature.
    pub fn set_recording(_on: bool) {}

    /// Always false without the `trace` feature.
    pub fn recording() -> bool {
        false
    }

    /// Zero-sized no-op span.
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
    pub struct Span;

    impl Span {
        /// No-op.
        #[inline(always)]
        pub fn set_arg(&mut self, _arg: u64) {}
    }

    /// No-op.
    #[inline(always)]
    pub fn instant(_kind: EventKind, _arg: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn span(_kind: EventKind) -> Span {
        Span
    }

    /// No-op.
    #[inline(always)]
    pub fn span_arg(_kind: EventKind, _arg: u64) -> Span {
        Span
    }

    /// Always empty without the `trace` feature.
    pub fn snapshot_all() -> Vec<ThreadTrace> {
        Vec::new()
    }
}

pub use imp::{instant, now_ns, recording, set_recording, snapshot_all, span, span_arg, Span};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Mutex;

    /// The recording switch is process-global; serialize these tests so
    /// a mid-test `set_recording(false)` can't starve a neighbor.
    static SWITCH_LOCK: Mutex<()> = Mutex::new(()); // lock-rank: obs.switch 89

    #[test]
    fn spans_and_instants_land_on_the_current_thread_in_order() {
        let _g = SWITCH_LOCK.lock().unwrap();
        // Run in a named thread so the registry entry is identifiable
        // (other tests in this process also register rings).
        std::thread::Builder::new()
            .name("obs-trace-test".into())
            .spawn(|| {
                {
                    let mut sp = span(EventKind::Refill);
                    sp.set_arg(42);
                    instant(EventKind::InsertAll, 7);
                } // span records here, after the instant
                let all = snapshot_all();
                let me = all
                    .iter()
                    .find(|t| t.name == "obs-trace-test")
                    .expect("thread registered");
                assert_eq!(me.dropped, 0);
                assert_eq!(me.events.len(), 2);
                assert_eq!(me.events[0].kind, EventKind::InsertAll);
                assert_eq!(me.events[0].arg, 7);
                assert_eq!(me.events[0].dur_ns, 0, "instants have no duration");
                assert_eq!(me.events[1].kind, EventKind::Refill);
                assert_eq!(me.events[1].arg, 42);
                // The span *started* before the instant but records at
                // drop; its start timestamp precedes (or ties) the
                // instant's.
                assert!(me.events[1].ts_ns <= me.events[0].ts_ns);
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let _g = SWITCH_LOCK.lock().unwrap();
        std::thread::Builder::new()
            .name("obs-mono-test".into())
            .spawn(|| {
                for i in 0..100u64 {
                    instant(EventKind::Custom, i);
                }
                let all = snapshot_all();
                let me = all.iter().find(|t| t.name == "obs-mono-test").unwrap();
                assert_eq!(me.events.len(), 100);
                for w in me.events.windows(2) {
                    assert!(
                        w[0].ts_ns <= w[1].ts_ns,
                        "timestamps must be monotonic per thread: {} then {}",
                        w[0].ts_ns,
                        w[1].ts_ns
                    );
                    assert!(w[0].seq < w[1].seq);
                }
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn recording_switch_gates_new_events() {
        let _g = SWITCH_LOCK.lock().unwrap();
        std::thread::Builder::new()
            .name("obs-switch-test".into())
            .spawn(|| {
                instant(EventKind::Custom, 1);
                set_recording(false);
                instant(EventKind::Custom, 2);
                let sp = span(EventKind::Get);
                drop(sp);
                set_recording(true);
                instant(EventKind::Custom, 3);
                let all = snapshot_all();
                let me = all.iter().find(|t| t.name == "obs-switch-test").unwrap();
                let args: Vec<u64> = me.events.iter().map(|e| e.arg).collect();
                assert_eq!(args, vec![1, 3], "events while off must not record");
            })
            .unwrap()
            .join()
            .unwrap();
    }
}
