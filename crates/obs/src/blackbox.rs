//! Black-box flight recorder: on a trigger (drive offlining, CP crash
//! point, `ArenaFull` fallback, scrub finding, or a manual dump) it
//! atomically writes a post-mortem bundle — the most recent events
//! from every per-thread [`EventRing`](crate::ring::EventRing) with
//! per-thread drop counts, a full metrics snapshot, and any registered
//! provider sections (the RAID `FaultSnapshot`, the active `FsConfig`,
//! …) — schema `wafl.blackbox.v1`.
//!
//! # Deferred triggers
//!
//! Fire sites live deep in the stack (a drive's failure path, the
//! cache's arena-exhaustion fallback) and may hold locks when they
//! fire, so [`trigger`] is **lock-free**: it only bumps process-wide
//! atomics on the trigger board. The actual dump happens later, when
//! an armed [`Blackbox`] services the board — from the sampler thread
//! ([`SamplerThread`](crate::sampler::SamplerThread)) or an explicit
//! [`Blackbox::service`]/[`Blackbox::dump`] call. This keeps trigger
//! sites free of lock-order edges (ward ranks the blackbox mutex below
//! the registry locks it reads during a dump) and makes firing cheap
//! enough to leave compiled in everywhere.
//!
//! Bundles are written atomically: the JSON goes to a temp file in the
//! target directory first and is `rename`d into place, so a crash
//! mid-dump never leaves a half-written bundle behind.

use crate::metrics::Registry;
use crate::sampler::RegistrySource;
use serde::Value;
use std::path::PathBuf;
// Note: deliberately std atomics — the trigger board is wall-clock
// plumbing the model checker never schedules (same note as trace.rs).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag of blackbox bundles.
pub const BLACKBOX_SCHEMA: &str = "wafl.blackbox.v1";

/// The trigger taxonomy (DESIGN.md §16). Each variant has one slot on
/// the process-wide trigger board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A drive left service (`Drive::take_offline`).
    DriveOffline = 0,
    /// An injected CP crash point fired (`wafl::cp::CrashPoint`).
    CrashPoint = 1,
    /// The bucket cache fell back to its queue because the arena was
    /// exhausted (`ArenaFull`).
    ArenaFull = 2,
    /// The online scrubber verified a block and found it damaged.
    ScrubFinding = 3,
    /// An explicit [`Blackbox::dump`] call.
    Manual = 4,
}

impl Trigger {
    /// All triggers, board order.
    pub const ALL: [Trigger; 5] = [
        Trigger::DriveOffline,
        Trigger::CrashPoint,
        Trigger::ArenaFull,
        Trigger::ScrubFinding,
        Trigger::Manual,
    ];

    /// Stable snake_case name (bundle field, file-name suffix).
    pub fn name(self) -> &'static str {
        match self {
            Trigger::DriveOffline => "drive_offline",
            Trigger::CrashPoint => "crash_point",
            Trigger::ArenaFull => "arena_full",
            Trigger::ScrubFinding => "scrub_finding",
            Trigger::Manual => "manual",
        }
    }
}

/// The process-wide trigger board: per-trigger fire counts and the most
/// recent argument word. Plain atomics — safe from any context.
static FIRES: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static LAST_ARG: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Fire a trigger. Lock-free and always compiled in: callers fire
/// unconditionally; whether anything is recorded is decided by the
/// armed [`Blackbox`] (if any) at service time. `arg` is a
/// trigger-specific word (drive index, crash-point ordinal, shard, …).
#[inline]
pub fn trigger(t: Trigger, arg: u64) {
    // ordering: statistics counter; the servicing dump rereads the
    // board under its own lock, no publication needed here.
    LAST_ARG[t as usize].store(arg, Ordering::Relaxed);
    // ordering: as above.
    FIRES[t as usize].fetch_add(1, Ordering::Relaxed);
}

/// Fire counts per trigger, board order ([`Trigger::ALL`]).
pub fn fires() -> [u64; 5] {
    // ordering: statistics read; staleness acceptable.
    [0, 1, 2, 3, 4].map(|i| FIRES[i].load(Ordering::Relaxed))
}

/// Total fires across all triggers.
pub fn total_fires() -> u64 {
    fires().iter().sum()
}

/// A section provider: called at dump time to contribute one named
/// JSON subtree (e.g. the RAID layer's `FaultSnapshot`, the active
/// `FsConfig`). Providers let the leaf `obs` crate bundle state from
/// crates above it without depending on them.
pub type SectionFn = Box<dyn Fn() -> Value + Send + Sync>;

/// Flight-recorder configuration.
#[derive(Debug, Clone)]
pub struct BlackboxConfig {
    /// Directory receiving bundles (created on first dump).
    pub dir: PathBuf,
    /// Newest events exported per thread (0 = all retained).
    pub max_events_per_thread: usize,
    /// Triggers this recorder reacts to at service time.
    pub enabled: Vec<Trigger>,
}

impl BlackboxConfig {
    /// All triggers enabled, 256 events/thread, bundles into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        BlackboxConfig {
            dir: dir.into(),
            max_events_per_thread: 256,
            enabled: Trigger::ALL.to_vec(),
        }
    }
}

struct Inner {
    sections: Vec<(String, SectionFn)>,
    /// Board fires already handled, per trigger.
    serviced: [u64; 5],
    dumps: u64,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field(
                "sections",
                &self.sections.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("serviced", &self.serviced)
            .field("dumps", &self.dumps)
            .finish()
    }
}

/// The armed flight recorder (see module docs).
#[derive(Debug)]
pub struct Blackbox {
    cfg: BlackboxConfig,
    source: RegistrySource,
    inner: Mutex<Inner>, // lock-rank: obs.blackbox 78
}

impl Blackbox {
    /// Recorder over `source` with `cfg`.
    pub fn new(source: RegistrySource, cfg: BlackboxConfig) -> Self {
        Blackbox {
            cfg,
            source,
            inner: Mutex::new(Inner {
                sections: Vec::new(),
                // Fires predating arming are not retroactively dumped.
                serviced: fires(),
                dumps: 0,
            }),
        }
    }

    /// Recorder over the global registry.
    pub fn global(cfg: BlackboxConfig) -> Self {
        Self::new(RegistrySource::Global, cfg)
    }

    /// Register a provider contributing section `name` to every bundle.
    pub fn add_section(&self, name: impl Into<String>, f: SectionFn) {
        self.inner.lock().unwrap().sections.push((name.into(), f));
    }

    /// Bundles written so far.
    pub fn dumps(&self) -> u64 {
        self.inner.lock().unwrap().dumps
    }

    /// Service the trigger board: if any *enabled* trigger has fired
    /// since the last service, write one bundle covering everything
    /// pending and mark it handled. Returns the bundle path, or `None`
    /// when nothing was pending.
    pub fn service(&self) -> std::io::Result<Option<PathBuf>> {
        let mut inner = self.inner.lock().unwrap();
        let board = fires();
        let mut reason = None;
        for t in &self.cfg.enabled {
            let i = *t as usize;
            if board[i] > inner.serviced[i] && reason.is_none() {
                reason = Some(t.name());
            }
        }
        let Some(reason) = reason else {
            return Ok(None);
        };
        // One bundle covers all pending fires (enabled or not — the
        // board snapshot in the bundle shows everything).
        inner.serviced = board;
        self.write_bundle(&mut inner, reason).map(Some)
    }

    /// Write a bundle unconditionally, recording a [`Trigger::Manual`]
    /// fire. `reason` lands in the bundle and the file name.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        trigger(Trigger::Manual, 0);
        let mut inner = self.inner.lock().unwrap();
        let i = Trigger::Manual as usize;
        // ordering: statistics read; staleness acceptable.
        inner.serviced[i] = FIRES[i].load(Ordering::Relaxed);
        self.write_bundle(&mut inner, reason)
    }

    fn write_bundle(&self, inner: &mut Inner, reason: &str) -> std::io::Result<PathBuf> {
        let seq = inner.dumps;
        inner.dumps += 1;
        self.source
            .registry()
            .counter("telemetry_blackbox_dumps")
            .inc();

        let doc = self.render(inner, reason, seq);
        let json = serde_json::to_string(&doc).expect("blackbox bundle serializes");

        std::fs::create_dir_all(&self.cfg.dir)?;
        let safe_reason: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let finalp = self
            .cfg
            .dir
            .join(format!("blackbox-{seq:04}-{safe_reason}.json"));
        let tmp = self.cfg.dir.join(format!(".blackbox-{seq:04}.tmp"));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, &finalp)?;
        Ok(finalp)
    }

    /// Build the bundle document. Holds the blackbox lock (rank 78)
    /// while reading the registry (85–87) and thread table (88) — a
    /// legal ascending acquisition.
    fn render(&self, inner: &Inner, reason: &str, seq: u64) -> Value {
        let board: Vec<Value> = Trigger::ALL
            .iter()
            .map(|t| {
                let i = *t as usize;
                Value::Map(vec![
                    ("name".into(), Value::Str(t.name().into())),
                    // ordering: statistics read; staleness acceptable.
                    (
                        "fires".into(),
                        Value::UInt(FIRES[i].load(Ordering::Relaxed) as u128),
                    ),
                    // ordering: as above.
                    (
                        "last_arg".into(),
                        Value::UInt(LAST_ARG[i].load(Ordering::Relaxed) as u128),
                    ),
                    ("enabled".into(), Value::Bool(self.cfg.enabled.contains(t))),
                ])
            })
            .collect();

        let cap = self.cfg.max_events_per_thread;
        let threads: Vec<Value> = crate::trace::snapshot_all()
            .into_iter()
            .map(|t| {
                let skip = if cap > 0 && t.events.len() > cap {
                    t.events.len() - cap
                } else {
                    0
                };
                let events: Vec<Value> = t.events[skip..]
                    .iter()
                    .map(|e| {
                        Value::Map(vec![
                            ("kind".into(), Value::Str(e.kind.name().into())),
                            ("ts_ns".into(), Value::UInt(e.ts_ns as u128)),
                            ("dur_ns".into(), Value::UInt(e.dur_ns as u128)),
                            ("arg".into(), Value::UInt(e.arg as u128)),
                            ("seq".into(), Value::UInt(e.seq as u128)),
                        ])
                    })
                    .collect();
                Value::Map(vec![
                    ("tid".into(), Value::UInt(t.tid as u128)),
                    ("name".into(), Value::Str(t.name)),
                    ("dropped".into(), Value::UInt(t.dropped as u128)),
                    ("trimmed".into(), Value::UInt(skip as u128)),
                    ("head".into(), Value::UInt(t.head as u128)),
                    ("events".into(), Value::Seq(events)),
                ])
            })
            .collect();

        let sections = Value::Map(
            inner
                .sections
                .iter()
                .map(|(name, f)| (name.clone(), f()))
                .collect(),
        );

        Value::Map(vec![
            ("schema".into(), Value::Str(BLACKBOX_SCHEMA.into())),
            ("seq".into(), Value::UInt(seq as u128)),
            ("reason".into(), Value::Str(reason.into())),
            ("at_ns".into(), Value::UInt(crate::trace::now_ns() as u128)),
            ("trace_build".into(), Value::Bool(crate::trace::ENABLED)),
            ("triggers".into(), Value::Seq(board)),
            ("threads".into(), Value::Seq(threads)),
            ("metrics".into(), metrics_value(self.source.registry())),
            ("sections".into(), sections),
        ])
    }
}

/// Full metrics snapshot as a JSON subtree (structured twin of
/// [`Registry::text_snapshot`]).
fn metrics_value(reg: &Registry) -> Value {
    let counters = Value::Map(
        reg.counter_values()
            .into_iter()
            .map(|(n, v)| (n, Value::UInt(v as u128)))
            .collect(),
    );
    let gauges = Value::Map(
        reg.gauge_values()
            .into_iter()
            .map(|(n, v, hi)| {
                (
                    n,
                    Value::Map(vec![
                        ("value".into(), Value::UInt(v as u128)),
                        ("high".into(), Value::UInt(hi as u128)),
                    ]),
                )
            })
            .collect(),
    );
    let hists = Value::Map(
        reg.histogram_handles()
            .into_iter()
            .map(|(n, h)| {
                (
                    n,
                    Value::Map(vec![
                        ("count".into(), Value::UInt(h.count() as u128)),
                        ("mean".into(), Value::UInt(h.mean() as u128)),
                        ("p50".into(), Value::UInt(h.percentile(0.50) as u128)),
                        ("p95".into(), Value::UInt(h.percentile(0.95) as u128)),
                        ("p99".into(), Value::UInt(h.percentile(0.99) as u128)),
                        ("p999".into(), Value::UInt(h.percentile(0.999) as u128)),
                        ("max".into(), Value::UInt(h.max() as u128)),
                    ]),
                )
            })
            .collect(),
    );
    Value::Map(vec![
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("hists".into(), hists),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::RegistrySource;
    use std::sync::Arc;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("obs-blackbox-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
        let Value::Map(pairs) = v else {
            panic!("expected object looking up {key}")
        };
        &pairs
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing field {key}"))
            .1
    }

    #[test]
    fn service_is_idle_until_a_trigger_fires() {
        let dir = tempdir("idle");
        let reg = Arc::new(Registry::new());
        let bb = Blackbox::new(
            RegistrySource::Shared(Arc::clone(&reg)),
            BlackboxConfig::new(&dir),
        );
        assert!(bb.service().unwrap().is_none(), "no fire, no bundle");
        trigger(Trigger::ArenaFull, 3);
        let path = bb.service().unwrap().expect("pending fire dumps");
        assert!(path.exists());
        // Re-service without a new fire: nothing pending.
        assert!(bb.service().unwrap().is_none());
        assert_eq!(bb.dumps(), 1);
        assert_eq!(reg.counter("telemetry_blackbox_dumps").get(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundle_has_schema_board_metrics_and_sections() {
        let dir = tempdir("bundle");
        let reg = Arc::new(Registry::new());
        reg.counter("puts").add(9);
        reg.histogram("lat").record(1234);
        let bb = Blackbox::new(
            RegistrySource::Shared(Arc::clone(&reg)),
            BlackboxConfig::new(&dir),
        );
        bb.add_section(
            "config",
            Box::new(|| Value::Map(vec![("io_queue_depth".into(), Value::UInt(8))])),
        );
        let path = bb.dump("unit-test").unwrap();
        let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(*field(&doc, "schema"), Value::Str(BLACKBOX_SCHEMA.into()));
        assert_eq!(*field(&doc, "reason"), Value::Str("unit-test".into()));
        // Board covers the full taxonomy, manual fire recorded.
        let Value::Seq(board) = field(&doc, "triggers") else {
            panic!("triggers must be an array")
        };
        assert_eq!(board.len(), Trigger::ALL.len());
        let manual = board
            .iter()
            .find(|t| *field(t, "name") == Value::Str("manual".into()))
            .unwrap();
        let Value::UInt(n) = field(manual, "fires") else {
            panic!("fires must be a uint")
        };
        assert!(*n >= 1);
        // Metrics snapshot is consistent with the registry.
        let metrics = field(&doc, "metrics");
        assert_eq!(*field(field(metrics, "counters"), "puts"), Value::UInt(9));
        let lat = field(field(metrics, "hists"), "lat");
        assert_eq!(*field(lat, "count"), Value::UInt(1));
        assert_eq!(*field(lat, "max"), Value::UInt(1234));
        // Provider section made it in.
        assert_eq!(
            *field(field(field(&doc, "sections"), "config"), "io_queue_depth"),
            Value::UInt(8)
        );
        // Thread list matches the build: per-thread rings only exist
        // under --features trace.
        let Value::Seq(threads) = field(&doc, "threads") else {
            panic!("threads must be an array")
        };
        if !crate::trace::ENABLED {
            assert!(threads.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_triggers_do_not_dump() {
        let dir = tempdir("disabled");
        let bb = Blackbox::new(
            RegistrySource::Shared(Arc::new(Registry::new())),
            BlackboxConfig {
                enabled: vec![Trigger::DriveOffline],
                ..BlackboxConfig::new(&dir)
            },
        );
        trigger(Trigger::ScrubFinding, 7);
        assert!(bb.service().unwrap().is_none(), "disabled trigger ignored");
        trigger(Trigger::DriveOffline, 2);
        assert!(bb.service().unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bundles_are_complete_files_with_no_temp_residue() {
        let dir = tempdir("atomic");
        let bb = Blackbox::new(
            RegistrySource::Shared(Arc::new(Registry::new())),
            BlackboxConfig::new(&dir),
        );
        for i in 0..3 {
            bb.dump(&format!("r{i}")).unwrap();
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "blackbox-0000-r0.json",
                "blackbox-0001-r1.json",
                "blackbox-0002-r2.json"
            ]
        );
        for n in &names {
            let raw = std::fs::read_to_string(dir.join(n)).unwrap();
            let _: Value = serde_json::from_str(&raw).expect("bundle parses");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
