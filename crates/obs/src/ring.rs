//! Per-thread event ring: fixed capacity, overwrite-oldest, lock-free.
//!
//! One ring has exactly **one writer** (the owning thread) and any
//! number of concurrent snapshot readers (the exporter). Slots are
//! guarded by a per-slot sequence word — a seqlock variant built only
//! from atomic loads/stores/RMWs (no fences, so the `mc` shims can
//! model every operation):
//!
//! * seq = `0`: slot never written.
//! * seq = `2h + 1`: writer is mid-write of event `h` (busy).
//! * seq = `2h + 2`: event `h` is complete and readable.
//!
//! Writer protocol for event `h` (slot `h % cap`):
//! 1. if `h >= cap`, increment `dropped` — *before* touching the slot,
//!    so any reader that observes the slot busy/overwritten also
//!    observes the drop accounted (the accounting invariant below);
//! 2. `seq.swap(2h + 1, AcqRel)` — the release side publishes step 1,
//!    the acquire side keeps the payload stores from hoisting above
//!    the busy mark;
//! 3. store payload fields (each its own atomic — a torn slot is never
//!    UB, merely rejected by the reader's recheck);
//! 4. `seq.store(2h + 2, Release)`; `head.store(h + 1, Release)`.
//!
//! Reader protocol: load `head` (acquire), scan the last `cap`
//! positions; for each, accept the payload only if seq reads `2i + 2`
//! both before and after the payload loads (the recheck is a CAS so it
//! observes the *latest* value in the slot's modification order, not a
//! stale one). Load `dropped` after the scan.
//!
//! **Accounting invariant** (model-checked in
//! `crates/mc/tests/obs_ring.rs`): for any snapshot,
//! `events.len() + dropped >= head` — no event disappears before the
//! drop counter says so.

use crate::event::{Event, EventKind};
use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// One ring slot. Every field is an independent atomic so concurrent
/// writer/reader access is always defined behavior; `seq` arbitrates
/// which reads are coherent.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    kind: AtomicU32,
    ts: AtomicU64,
    dur: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU32::new(0),
            ts: AtomicU64::new(0),
            dur: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity overwrite-oldest event ring (see module docs).
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Power-of-two slot count; index = event number & mask.
    mask: u64,
    /// Next event number to write (== total events ever recorded).
    head: AtomicU64,
    /// Events overwritten before any reader could see them.
    dropped: AtomicU64,
}

impl EventRing {
    /// Create a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded on this ring.
    pub fn head(&self) -> u64 {
        // ordering: monotonic counter read for display; acquire pairs with
        // the writer's release store so slots below the value are
        // published; pairs-with: obs.ring-head.
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite so far.
    pub fn dropped(&self) -> u64 {
        // ordering: statistics read; staleness acceptable on its own —
        // coherent accounting uses `snapshot`, which orders this load
        // after the slot scan.
        self.dropped.load(Ordering::Acquire)
    }

    /// Record one event. **Single-writer**: must only be called by the
    /// ring's owning thread (the thread-local registry in `trace.rs`
    /// enforces this; tests that share a ring must provide their own
    /// single-writer discipline).
    pub fn record(&self, kind: EventKind, ts_ns: u64, dur_ns: u64, arg: u64) {
        // ordering: relaxed — head is only ever stored by this (the
        // single writer) thread, so it reads its own last store.
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        if h > self.mask {
            // Reusing a slot destroys event `h - cap`. Account for it
            // *first*:
            // ordering: relaxed increment is enough for atomicity; its
            // visibility to readers is ordered by the AcqRel swap below
            // (release side), so any reader that sees this slot busy or
            // overwritten also sees the drop counted.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: AcqRel swap marks the slot busy. Release publishes
        // the dropped-counter increment above to readers whose seq load
        // observes the busy mark; Acquire keeps the payload stores below
        // from being hoisted above the mark (they must not land while a
        // reader could still accept the old sequence value);
        // pairs-with: obs.ring-seq.
        slot.seq.swap(2 * h + 1, Ordering::AcqRel);
        // ordering: relaxed payload stores — ordered against readers
        // solely by the seq protocol (busy mark above, release below).
        slot.kind.store(kind as u32, Ordering::Relaxed);
        // ordering: as above — seq arbitrates.
        slot.ts.store(ts_ns, Ordering::Relaxed);
        // ordering: as above — seq arbitrates.
        slot.dur.store(dur_ns, Ordering::Relaxed);
        // ordering: as above — seq arbitrates.
        slot.arg.store(arg, Ordering::Relaxed);
        // ordering: release makes every payload store above visible to a
        // reader whose acquire seq load observes `2h + 2`;
        // pairs-with: obs.ring-seq.
        slot.seq.store(2 * h + 2, Ordering::Release);
        // ordering: release so a reader that acquires the new head also
        // sees the completed slot write it covers;
        // pairs-with: obs.ring-head.
        self.head.store(h + 1, Ordering::Release);
    }

    /// Coherent snapshot: the readable suffix of the event sequence,
    /// oldest first, plus head and the dropped count. Events being
    /// overwritten mid-scan are skipped; the `dropped` value (loaded
    /// after the scan) accounts for every skip, so
    /// `events.len() + dropped >= head` always holds.
    pub fn snapshot(&self) -> RingSnapshot {
        // ordering: acquire pairs with the writer's release store of
        // head; every slot for events < head has its final seq visible;
        // pairs-with: obs.ring-head.
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            // ordering: acquire so the payload loads below cannot be
            // hoisted above this check and cannot see values older than
            // the seq they were published under;
            // pairs-with: obs.ring-seq.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * i + 2 {
                continue; // never written, busy, or already overwritten
            }
            // ordering: acquire on each payload load keeps the recheck
            // CAS below from being hoisted above it.
            let kind = slot.kind.load(Ordering::Acquire);
            // ordering: as above.
            let ts = slot.ts.load(Ordering::Acquire);
            // ordering: as above.
            let dur = slot.dur.load(Ordering::Acquire);
            // ordering: as above.
            let arg = slot.arg.load(Ordering::Acquire);
            // Recheck via CAS: an RMW observes the *latest* value in
            // seq's modification order, so success proves the writer had
            // not begun reusing this slot when the payload was read
            // (its payload stores are program-ordered after its busy
            // swap, which would have made this CAS fail).
            // ordering: AcqRel on success for the RMW's read-don't-miss
            // guarantee; acquire on failure — we only compare the value;
            // pairs-with: obs.ring-seq.
            if slot
                .seq
                .compare_exchange(s1, s1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue; // torn: writer reused the slot mid-read
            }
            events.push(Event {
                kind: EventKind::from_u32(kind),
                ts_ns: ts,
                dur_ns: dur,
                arg,
                seq: i,
            });
        }
        // ordering: acquire, loaded after the slot scan. Any event the
        // scan failed to read was overwritten by a writer whose busy
        // swap (release) we observed via the slot's seq; that swap is
        // preceded by the matching dropped increment, so this load
        // covers every skipped event.
        let dropped = self.dropped.load(Ordering::Acquire);
        RingSnapshot {
            head,
            dropped,
            events,
        }
    }
}

/// Result of [`EventRing::snapshot`].
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Total events recorded at snapshot time.
    pub head: u64,
    /// Events lost to overwrite, loaded after the slot scan (so
    /// `events.len() + dropped >= head`).
    pub dropped: u64,
    /// Readable events, oldest first, `seq` strictly increasing.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::with_capacity(5).capacity(), 8);
        assert_eq!(EventRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn records_below_capacity_drop_nothing() {
        let ring = EventRing::with_capacity(8);
        for i in 0..8 {
            ring.record(EventKind::Custom, 100 + i, 0, i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.head, 8);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 8);
        for (i, ev) in snap.events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.ts_ns, 100 + i as u64);
            assert_eq!(ev.arg, i as u64);
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts_every_drop() {
        let ring = EventRing::with_capacity(4);
        for i in 0..10u64 {
            ring.record(EventKind::Put, 1000 + i, 0, i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.head, 10);
        // 10 events into 4 slots: the oldest 6 are gone and accounted.
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.events.len(), 4);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(
            seqs,
            vec![6, 7, 8, 9],
            "survivors are the newest, oldest first"
        );
        assert!(snap.events.len() as u64 + snap.dropped >= snap.head);
    }

    #[test]
    fn snapshot_is_coherent_under_concurrent_writes() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::with_capacity(16));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    ring.record(EventKind::Custom, i, i, i);
                }
            })
        };
        // Hammer snapshots while the writer runs; every accepted event
        // must be internally consistent (ts == dur == arg == its seq's
        // recorded values) and accounting must hold.
        for _ in 0..200 {
            let snap = ring.snapshot();
            assert!(snap.events.len() as u64 + snap.dropped >= snap.head);
            let mut prev = None;
            for ev in &snap.events {
                assert_eq!(ev.ts_ns, ev.seq, "slot holds a different event's payload");
                assert_eq!(ev.ts_ns, ev.arg, "torn slot accepted");
                assert_eq!(ev.dur_ns, ev.arg, "torn slot accepted");
                if let Some(p) = prev {
                    assert!(ev.seq > p, "snapshot out of order");
                }
                prev = Some(ev.seq);
            }
        }
        writer.join().unwrap();
        let fin = ring.snapshot();
        assert_eq!(fin.head, 20_000);
        assert_eq!(fin.events.len() as u64 + fin.dropped, 20_000);
    }
}
