//! Synchronization shim for the observability crate — the single import
//! point for the atomics used by the event ring (`ring.rs`) and the
//! metrics registry (`metrics.rs`).
//!
//! * Default build: zero-cost re-exports of `std::sync::atomic` —
//!   identical codegen to using them directly.
//! * `--features mc`: the same names resolve to the `mc` crate's
//!   model-checker shims, turning every atomic operation into a yield
//!   point of a controlled scheduler. The checker's test suite builds
//!   obs this way to verify the ring's seqlock protocol (see
//!   `crates/mc/tests/obs_ring.rs`).
//!
//! This mirrors `alligator::sync` exactly; ring code must come through
//! this module (never `std::sync` directly) for the model to see its
//! memory accesses.

/// Atomics: `std::sync::atomic` types or their model-aware doubles.
pub mod atomic {
    #[cfg(feature = "mc")]
    pub use mc::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
    #[cfg(not(feature = "mc"))]
    pub use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize};
}
