//! Unified metrics registry: named counters, gauges, and log-bucketed
//! histograms behind one get-or-create API, so adding a counter no
//! longer means threading a field through a five-struct relay
//! (`AllocStats` → `StatsSnapshot` → `SimResult` → report → JSON).
//!
//! All instruments are cheap shared atomics; the registry itself is a
//! mutex-protected name table touched only at get-or-create and export
//! time, never on the hot path.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: statistics counter; atomicity only, no ordering needed.
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value (used when importing an externally collected
    /// snapshot, e.g. `StatsSnapshot::named`).
    pub fn set(&self, n: u64) {
        // ordering: statistics counter; atomicity only.
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous level with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
    hi: AtomicU64,
}

impl Gauge {
    /// Set the current level, ratcheting the high-water mark.
    pub fn set(&self, n: u64) {
        // ordering: statistics gauge; atomicity only.
        self.v.store(n, Ordering::Relaxed);
        // ordering: monotonic max ratchet; atomicity only.
        self.hi.fetch_max(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.v.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.hi.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per power of two, so any
/// reported quantile is within `1/64` (~1.6%) above the true sample.
const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS; // 64
/// Values below `SUB` get one exact bucket each; above, 64 sub-buckets
/// per binade for exponents 6..=63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB; // 3776

/// Log-bucketed histogram over `u64` samples: O(1) record, O(buckets)
/// quantile, bounded relative error `<= 1/64`, exact `count`/`sum`/`max`.
///
/// Replaces the sorted-`Vec` percentile path of the old
/// `LatencyRecorder` (simsrv) — same ceil nearest-rank semantics, but
/// constant memory and mergeable across threads.
#[derive(Debug)]
pub struct LogHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `v`: exact below 64, else 64 sub-buckets per
    /// power of two keyed by the 6 bits under the leading one.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros(); // 6..=63
            let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
            SUB + (exp - SUB_BITS) as usize * SUB + sub
        }
    }

    /// Largest value that maps to bucket `idx` — what quantiles report,
    /// so they never understate a latency.
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB {
            idx as u64
        } else {
            let exp = SUB_BITS + ((idx - SUB) / SUB) as u32;
            let sub = ((idx - SUB) % SUB) as u64;
            let lower = (SUB as u64 + sub) << (exp - SUB_BITS);
            // Parenthesized so the top binade (lower + 2^57 == 2^64)
            // never overflows before the -1 lands.
            lower + ((1u64 << (exp - SUB_BITS)) - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: statistics counters; atomicity only. A concurrent
        // reader may see count/sum/bucket briefly out of step — quantile
        // queries are statistical, not transactional.
        self.counts[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: as above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: as above.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // ordering: monotonic max ratchet; atomicity only.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        // ordering: statistics read; staleness acceptable.
        self.max.load(Ordering::Relaxed)
    }

    /// Exact integer mean (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Ceil nearest-rank quantile, `p` in (0, 1]: the value at rank
    /// `ceil(p * count)` (clamped to [1, count]), as the old sorted-vec
    /// recorder computed it — except the returned value is the sample's
    /// bucket upper bound (clamped to the exact max), so it sits within
    /// `+1/64` of the true order statistic and never below it.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            // ordering: statistics read; staleness acceptable.
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::upper_bound(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Samples recorded with a value at or below `v`, up to bucket
    /// resolution: the count includes every bucket whose range starts at
    /// or below `v`, so samples in `v`'s own bucket that exceed it (by
    /// at most `1/64` relative) are included too. The SLO tracker uses
    /// this to count objective-meeting samples; the bucket error only
    /// ever *flatters* by the histogram's stated `1/64` bound.
    pub fn count_le(&self, v: u64) -> u64 {
        let hi = Self::index(v);
        self.counts[..=hi]
            .iter()
            // ordering: statistics read; staleness acceptable.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// The instrument table. Cloneable handles (`Arc`) come out of the
/// get-or-create accessors; exporting walks the table in name order.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>, // lock-rank: obs.counters 85
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,     // lock-rank: obs.gauges 86
    histograms: Mutex<BTreeMap<String, Arc<LogHistogram>>>, // lock-rank: obs.histograms 87
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process-wide registry (for call sites with no natural owner,
    /// e.g. the cleaner pool's shutdown dump).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut t = self.counters.lock().unwrap();
        Arc::clone(t.entry(name.to_string()).or_default())
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut t = self.gauges.lock().unwrap();
        Arc::clone(t.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        let mut t = self.histograms.lock().unwrap();
        Arc::clone(t.entry(name.to_string()).or_default())
    }

    /// Import externally collected counters (e.g.
    /// `StatsSnapshot::named()`), overwriting any same-named values.
    pub fn import_counters<'a>(&self, pairs: impl IntoIterator<Item = (&'a str, u64)>) {
        for (name, v) in pairs {
            self.counter(name).set(v);
        }
    }

    /// Name-sorted snapshot of every counter's current value. The
    /// sampler walks this to build its delta ring.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Name-sorted snapshot of every gauge: `(name, value, high_water)`.
    pub fn gauge_values(&self) -> Vec<(String, u64, u64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.get(), g.high_water()))
            .collect()
    }

    /// Name-sorted handles to every registered histogram (shared — the
    /// caller reads counts/quantiles without holding the table lock).
    pub fn histogram_handles(&self) -> Vec<(String, Arc<LogHistogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), Arc::clone(h)))
            .collect()
    }

    /// Plain-text snapshot: one line per instrument, sorted by name
    /// within each section. Stable format consumed by `SimResult` dumps
    /// and the cleaner pool (see DESIGN.md §11).
    pub fn text_snapshot(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            out.push_str(&format!("counter {name} {}\n", c.get()));
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            out.push_str(&format!(
                "gauge {name} {} high {}\n",
                g.get(),
                g.high_water()
            ));
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            out.push_str(&format!(
                "hist {name} count {} mean {} p50 {} p95 {} p99 {} p999 {} max {}\n",
                h.count(),
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.percentile(0.999),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_upper_bound_are_consistent() {
        // Every sample must land in a bucket whose upper bound is >= it
        // and within 1/64 relative error above it.
        let probes: Vec<u64> = (0..200)
            .chain([
                255,
                256,
                257,
                1 << 20,
                (1 << 20) + 12345,
                u64::MAX / 2,
                u64::MAX,
            ])
            .collect();
        for &v in &probes {
            let idx = LogHistogram::index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let ub = LogHistogram::upper_bound(idx);
            assert!(ub >= v, "upper bound {ub} below sample {v}");
            // Relative error bound: ub - v <= v / 64 (exact below 64).
            if v >= SUB as u64 {
                assert!(ub - v <= v >> SUB_BITS, "error too large for {v}: ub {ub}");
            } else {
                assert_eq!(ub, v, "small values are exact");
            }
        }
        // Bucket indexing is monotone.
        let mut last = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 30, u64::MAX] {
            let idx = LogHistogram::index(v);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn percentiles_match_ceil_nearest_rank_within_bucket_error() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        // Exact order statistics: p50 -> 50_000, p95 -> 95_000.
        for (p, exact) in [(0.50, 50_000u64), (0.95, 95_000), (0.99, 99_000)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} < exact {exact}");
            assert!(
                got <= exact + (exact >> SUB_BITS),
                "p{p}: {got} exceeds error bound over {exact}"
            );
        }
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.mean(), 50_500);
        assert_eq!(h.percentile(1.0), 100_000, "p100 is clamped to exact max");
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(0.99), 10);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn registry_instruments_round_trip() {
        let reg = Registry::new();
        reg.counter("puts").add(3);
        reg.counter("puts").inc();
        assert_eq!(reg.counter("puts").get(), 4);
        reg.gauge("queue").set(7);
        reg.gauge("queue").set(2);
        assert_eq!(reg.gauge("queue").get(), 2);
        assert_eq!(reg.gauge("queue").high_water(), 7);
        reg.histogram("lat").record(50);
        reg.import_counters([("gets", 9u64)]);
        let text = reg.text_snapshot();
        assert!(text.contains("counter gets 9\n"), "{text}");
        assert!(text.contains("counter puts 4\n"), "{text}");
        assert!(text.contains("gauge queue 2 high 7\n"), "{text}");
        assert!(
            text.contains("hist lat count 1 mean 50 p50 50 p95 50 p99 50 p999 50 max 50\n"),
            "{text}"
        );
        // Sections are name-sorted: gets before puts.
        assert!(text.find("gets").unwrap() < text.find("puts").unwrap());
    }

    #[test]
    fn p999_distinguishes_the_tail_p99_misses() {
        // 10 000 samples at 1 000 ns with the last 50 at 1 000 000:
        // p99 sits in the bulk, p99.9 must land in the slow tail.
        let h = LogHistogram::new();
        for _ in 0..9_950u64 {
            h.record(1_000);
        }
        for _ in 0..50u64 {
            h.record(1_000_000);
        }
        assert!(h.percentile(0.99) <= 1_000 + (1_000 >> SUB_BITS));
        assert_eq!(h.percentile(0.999), 1_000_000);
    }

    #[test]
    fn count_le_counts_objective_meeting_samples() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        // Exact at bucket boundaries for values below SUB? use large
        // values: count_le may over-count within one bucket only.
        let le = h.count_le(50_000);
        assert!((50..=51).contains(&le), "count_le(50000) = {le}");
        assert_eq!(h.count_le(u64::MAX), 100);
        assert_eq!(h.count_le(0), 0);
        // Small values are exact buckets.
        let small = LogHistogram::new();
        for v in 1..=10u64 {
            small.record(v);
        }
        assert_eq!(small.count_le(5), 5);
    }

    #[test]
    fn registry_enumeration_matches_contents() {
        let reg = Registry::new();
        reg.counter("a").add(1);
        reg.counter("b").add(2);
        reg.gauge("g").set(3);
        reg.histogram("h").record(4);
        assert_eq!(
            reg.counter_values(),
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
        assert_eq!(reg.gauge_values(), vec![("g".to_string(), 3, 3)]);
        let hists = reg.histogram_handles();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "h");
        assert_eq!(hists[0].1.count(), 1);
    }
}
