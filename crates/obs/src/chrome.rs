//! Chrome trace-event JSON exporter: turns [`ThreadTrace`] snapshots
//! into the `{"traceEvents": [...]}` format `chrome://tracing` and
//! Perfetto load directly.
//!
//! Mapping:
//! * each thread emits an `"M"` (metadata) `thread_name` event, so the
//!   timeline rows carry the OS thread names (`cleaner-3`, …);
//! * spans become complete `"X"` events (single record at span end —
//!   never dangling begin/end pairs, which an overwrite-oldest ring
//!   could otherwise produce);
//! * instants become `"i"` events with thread scope (`"s":"t"`);
//! * timestamps are microseconds (the format's unit) as floats, so
//!   nanosecond precision survives.
//!
//! Values are built as vendored `serde::Value` trees and serialized
//! with the vendored `serde_json`, keeping the exporter dependency-free.

use crate::trace::ThreadTrace;
use serde::Value;

/// Process id used for all events (single-process tool).
const PID: u64 = 1;

fn map(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn common(name: &str, ph: &str, tid: u64) -> Vec<(&'static str, Value)> {
    vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("pid", Value::UInt(PID as u128)),
        ("tid", Value::UInt(tid as u128)),
    ]
}

/// Microseconds (the trace format's time unit) from nanoseconds,
/// keeping sub-microsecond precision as the fractional part.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

/// Render `traces` as a Chrome trace-event JSON document. At most
/// `max_events_per_thread` of each thread's *newest* events are
/// exported (0 = unlimited) so committed artifacts stay bounded; the
/// per-thread `thread_name` metadata event carries `dropped` (ring
/// overwrites) and `trimmed` (export-cap cuts) counts, and any thread
/// that lost events additionally gets a visible `events_lost` instant
/// at the start of its track — metadata args only show up if the
/// viewer opens them, so a truncated trace must flag itself *on the
/// timeline*.
pub fn chrome_trace_json(traces: &[ThreadTrace], max_events_per_thread: usize) -> String {
    let mut events: Vec<Value> = Vec::new();
    for t in traces {
        let skip = if max_events_per_thread > 0 && t.events.len() > max_events_per_thread {
            t.events.len() - max_events_per_thread
        } else {
            0
        };
        let mut meta = common("thread_name", "M", t.tid);
        meta.push((
            "args",
            map(vec![
                ("name", Value::Str(t.name.clone())),
                ("dropped", Value::UInt(t.dropped as u128)),
                ("trimmed", Value::UInt(skip as u128)),
            ]),
        ));
        events.push(map(meta));

        if t.dropped > 0 || skip > 0 {
            // Pin the marker at the oldest exported timestamp: the lost
            // window ends exactly where the visible one begins.
            let first_ts = t.events.get(skip).map_or(0, |e| e.ts_ns);
            let mut lost = common("events_lost", "i", t.tid);
            lost.push(("ts", us(first_ts)));
            lost.push(("s", Value::Str("t".to_string())));
            lost.push((
                "args",
                map(vec![
                    ("dropped", Value::UInt(t.dropped as u128)),
                    ("trimmed", Value::UInt(skip as u128)),
                ]),
            ));
            events.push(map(lost));
        }

        for ev in t.events.iter().skip(skip) {
            let args = map(vec![
                ("arg", Value::UInt(ev.arg as u128)),
                ("seq", Value::UInt(ev.seq as u128)),
            ]);
            let mut rec = common(ev.kind.name(), if ev.dur_ns > 0 { "X" } else { "i" }, t.tid);
            rec.push(("ts", us(ev.ts_ns)));
            if ev.dur_ns > 0 {
                rec.push(("dur", us(ev.dur_ns)));
            } else {
                // Instant scope: thread-local (a tick on that row only).
                rec.push(("s", Value::Str("t".to_string())));
            }
            rec.push(("args", args));
            events.push(map(rec));
        }
    }
    let doc = map(vec![("traceEvents", Value::Seq(events))]);
    serde_json::to_string(&doc).expect("chrome trace document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn sample_traces() -> Vec<ThreadTrace> {
        vec![ThreadTrace {
            tid: 0,
            name: "cleaner-0".into(),
            events: vec![
                Event {
                    kind: EventKind::Get,
                    ts_ns: 1500,
                    dur_ns: 250,
                    arg: 4,
                    seq: 0,
                },
                Event {
                    kind: EventKind::Put,
                    ts_ns: 2750,
                    dur_ns: 0,
                    arg: 16,
                    seq: 1,
                },
            ],
            dropped: 3,
            head: 5,
        }]
    }

    /// Round-trip through the vendored serde_json parser: the exporter
    /// must emit schema-valid JSON with the fields Perfetto keys on.
    #[test]
    fn exporter_emits_schema_valid_json() {
        let json = chrome_trace_json(&sample_traces(), 0);
        let doc: Value = serde_json::from_str(&json).expect("exporter output parses");
        let Value::Map(top) = doc else {
            panic!("top level must be an object")
        };
        let (_, Value::Seq(events)) = &top[0] else {
            panic!("traceEvents must be an array")
        };
        assert_eq!(top[0].0, "traceEvents");
        assert_eq!(
            events.len(),
            4,
            "metadata + events_lost (3 ring drops) + two events"
        );

        let get = |m: &Value, key: &str| -> Value {
            let Value::Map(pairs) = m else {
                panic!("event must be an object")
            };
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key}"))
                .1
                .clone()
        };
        // Metadata event names the thread row.
        assert_eq!(get(&events[0], "ph"), Value::Str("M".into()));
        assert_eq!(
            get(&get(&events[0], "args"), "name"),
            Value::Str("cleaner-0".into())
        );
        assert_eq!(get(&get(&events[0], "args"), "dropped"), Value::UInt(3));
        // The 3 ring drops surface as a visible instant pinned where the
        // exported window begins.
        assert_eq!(get(&events[1], "name"), Value::Str("events_lost".into()));
        assert_eq!(get(&events[1], "ph"), Value::Str("i".into()));
        assert_eq!(get(&events[1], "ts"), Value::Float(1.5));
        assert_eq!(get(&get(&events[1], "args"), "dropped"), Value::UInt(3));
        assert_eq!(get(&get(&events[1], "args"), "trimmed"), Value::UInt(0));
        // Span: complete event with µs timestamp/duration.
        assert_eq!(get(&events[2], "ph"), Value::Str("X".into()));
        assert_eq!(get(&events[2], "name"), Value::Str("get".into()));
        assert_eq!(get(&events[2], "ts"), Value::Float(1.5));
        assert_eq!(get(&events[2], "dur"), Value::Float(0.25));
        // Instant: thread-scoped.
        assert_eq!(get(&events[3], "ph"), Value::Str("i".into()));
        assert_eq!(get(&events[3], "s"), Value::Str("t".into()));
        assert_eq!(get(&get(&events[3], "args"), "arg"), Value::UInt(16));
    }

    #[test]
    fn lossless_traces_carry_no_loss_marker() {
        let mut traces = sample_traces();
        traces[0].dropped = 0;
        let json = chrome_trace_json(&traces, 0);
        assert!(
            !json.contains("events_lost"),
            "a complete trace must not claim losses"
        );
    }

    #[test]
    fn export_cap_keeps_newest_events_and_reports_trim() {
        let mut traces = sample_traces();
        traces[0].events = (0..10)
            .map(|i| Event {
                kind: EventKind::Custom,
                ts_ns: i * 100,
                dur_ns: 0,
                arg: i,
                seq: i,
            })
            .collect();
        let json = chrome_trace_json(&traces, 4);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let Value::Map(top) = doc else { unreachable!() };
        let (_, Value::Seq(events)) = top.into_iter().next().unwrap() else {
            unreachable!()
        };
        // 1 metadata + 1 events_lost marker + the 4 newest events.
        assert_eq!(events.len(), 6);
        let Value::Map(meta) = &events[0] else {
            unreachable!()
        };
        let trimmed = meta
            .iter()
            .find(|(k, _)| k == "args")
            .and_then(|(_, v)| {
                let Value::Map(args) = v else { return None };
                args.iter()
                    .find(|(k, _)| k == "trimmed")
                    .map(|(_, v)| v.clone())
            })
            .unwrap();
        assert_eq!(trimmed, Value::UInt(6));
        // events[1] is the loss marker; the first real event follows it.
        let Value::Map(first) = &events[2] else {
            unreachable!()
        };
        let Value::Map(args) = first.iter().find(|(k, _)| k == "args").unwrap().1.clone() else {
            unreachable!()
        };
        let seq = args.iter().find(|(k, _)| k == "seq").unwrap().1.clone();
        assert_eq!(seq, Value::UInt(6), "oldest surviving event is seq 6");
    }
}
