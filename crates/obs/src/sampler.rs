//! Continuous time-series sampler over a [`Registry`]: every tick it
//! snapshots all registered counters/gauges/histograms into a
//! fixed-size timestamped **delta ring**, supporting rate/derivative
//! queries, a Prometheus-text exporter, a JSON time-series export
//! (schema [`TELEMETRY_SCHEMA`]), and SLO error-budget tracking.
//!
//! # Delta ring
//!
//! Each [`Tick`] stores per-counter *increments* since the previous
//! tick (not absolutes). When the ring is full, the oldest tick's
//! deltas are folded into a per-series **eviction base**, preserving
//! the conservation invariant the proptest in `tests/` pins down:
//!
//! ```text
//! base(name) + Σ ring deltas(name) == last sampled absolute(name)
//! ```
//!
//! so no increment is ever lost or double-counted across snapshot or
//! eviction boundaries.
//!
//! # SLO tracking
//!
//! An [`SloObjective`] names a histogram, a latency objective (ns), and
//! an error budget (allowed bad fraction — `0.01` for a p99
//! objective). Each tick records how many new samples met the
//! objective (via [`LogHistogram::count_le`](crate::metrics::LogHistogram::count_le));
//! burn rate over a window
//! is `bad_fraction / budget` — `1.0` burns the budget exactly,
//! `> 1.0` is an alerting condition.
//!
//! The sampler runs either embedded (call [`Sampler::sample`] from a
//! test or an existing loop) or on a background thread
//! ([`SamplerThread::spawn`]), which also services deferred
//! [`blackbox`](crate::blackbox) triggers between ticks.

use crate::metrics::Registry;
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema tag of [`Sampler::to_json`] documents.
pub const TELEMETRY_SCHEMA: &str = "wafl.telemetry.v1";

/// Counters the telemetry layer maintains about itself, registered on
/// the sampled registry so they appear in every snapshot and in the
/// delta ring like any other series. Ward's counter-plumbing check
/// cross-references this list against the sampler/blackbox sources:
/// a name declared here but never incremented is a finding.
pub const TELEMETRY_COUNTERS: [&str; 4] = [
    "telemetry_ticks",
    "telemetry_evictions",
    "telemetry_slo_breaches",
    "telemetry_blackbox_dumps",
];

/// Which registry a telemetry component reads.
#[derive(Debug, Clone)]
pub enum RegistrySource {
    /// The process-wide [`Registry::global`].
    Global,
    /// A shared instance (tests, embedded pools).
    Shared(Arc<Registry>),
}

impl RegistrySource {
    /// Resolve to the registry.
    pub fn registry(&self) -> &Registry {
        match self {
            RegistrySource::Global => Registry::global(),
            RegistrySource::Shared(r) => r,
        }
    }
}

/// A p-latency service-level objective over one histogram.
#[derive(Debug, Clone)]
pub struct SloObjective {
    /// Histogram name in the sampled registry.
    pub histogram: String,
    /// Latency objective in ns: samples at or under it are "good".
    pub objective_ns: u64,
    /// Error budget as the allowed bad fraction — `0.01` for a p99
    /// objective ("99% of samples under `objective_ns`").
    pub budget: f64,
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Tick interval for the background thread (the default 100 ms is
    /// what the `exp_telemetry` overhead budget is measured at).
    pub interval: Duration,
    /// Ring capacity in ticks; older ticks fold into the eviction base.
    pub capacity: usize,
    /// Latency objectives tracked by the SLO machinery.
    pub objectives: Vec<SloObjective>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(100),
            capacity: 600,
            objectives: Vec::new(),
        }
    }
}

/// Per-histogram delta for one tick, plus cumulative quantiles at tick
/// time (quantiles are not windowable without per-bucket history; the
/// cumulative curve over time is what the time series plots).
#[derive(Debug, Clone, Copy, Default)]
pub struct HistTick {
    /// New samples this tick.
    pub dcount: u64,
    /// Sum of new samples this tick.
    pub dsum: u64,
    /// New samples at or under the SLO objective (== `dcount` for
    /// histograms without an objective).
    pub dgood: u64,
    /// Cumulative p50 at tick time.
    pub p50: u64,
    /// Cumulative p99 at tick time.
    pub p99: u64,
    /// Cumulative p99.9 at tick time.
    pub p999: u64,
    /// Cumulative max at tick time.
    pub max: u64,
}

/// One sampler tick: timestamp plus per-instrument deltas.
#[derive(Debug, Clone, Default)]
pub struct Tick {
    /// Monotonic tick number (never reset, survives eviction).
    pub seq: u64,
    /// ns since the sampler was created.
    pub at_ns: u64,
    /// ns since the previous tick (== `at_ns` for the first).
    pub dt_ns: u64,
    /// Counter increments since the previous tick.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels at tick time (gauges are sampled, not differenced).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram deltas + cumulative quantiles.
    pub hists: BTreeMap<String, HistTick>,
}

/// Absolute histogram state at the last tick, for differencing.
#[derive(Debug, Clone, Copy, Default)]
struct HistAbs {
    count: u64,
    sum: u64,
    good: u64,
}

#[derive(Debug, Default)]
struct Inner {
    seq: u64,
    last_at_ns: u64,
    /// Last sampled absolutes.
    last_counters: BTreeMap<String, u64>,
    last_hists: BTreeMap<String, HistAbs>,
    /// Deltas evicted from the ring, folded per series.
    base_counters: BTreeMap<String, u64>,
    base_hists: BTreeMap<String, HistAbs>,
    ring: VecDeque<Tick>,
    evictions: u64,
}

/// The time-series sampler (see module docs).
#[derive(Debug)]
pub struct Sampler {
    source: RegistrySource,
    cfg: SamplerConfig,
    started: Instant,
    inner: Mutex<Inner>, // lock-rank: obs.sampler 80
}

impl Sampler {
    /// Sampler over `source` with `cfg`.
    pub fn new(source: RegistrySource, cfg: SamplerConfig) -> Self {
        Sampler {
            source,
            cfg,
            started: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Sampler over the global registry with default config.
    pub fn global() -> Self {
        Self::new(RegistrySource::Global, SamplerConfig::default())
    }

    /// The configuration this sampler runs with.
    pub fn config(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The sampled registry.
    pub fn registry(&self) -> &Registry {
        self.source.registry()
    }

    fn objective_for(&self, hist: &str) -> Option<&SloObjective> {
        self.cfg.objectives.iter().find(|o| o.histogram == hist)
    }

    /// Take one sample: snapshot every instrument, push the delta tick,
    /// evict into the base if the ring is full. Returns the new tick's
    /// sequence number. The background thread calls this every
    /// `interval`; tests call it directly for determinism.
    pub fn sample(&self) -> u64 {
        let reg = self.source.registry();
        // Self-accounting first, so the tick being built observes its
        // own increment (conservation stays exact).
        reg.counter("telemetry_ticks").inc();

        let mut inner = self.inner.lock().unwrap();
        let at_ns = self.started.elapsed().as_nanos() as u64;
        let dt_ns = at_ns.saturating_sub(inner.last_at_ns).max(1);
        let seq = inner.seq;
        inner.seq += 1;
        inner.last_at_ns = at_ns;

        let mut tick = Tick {
            seq,
            at_ns,
            dt_ns,
            ..Default::default()
        };

        for (name, v) in reg.counter_values() {
            let last = inner.last_counters.insert(name.clone(), v).unwrap_or(0);
            // Counters are monotonic; an importing `set()` that goes
            // backwards contributes zero rather than wrapping.
            tick.counters.insert(name, v.saturating_sub(last));
        }
        for (name, v, _hi) in reg.gauge_values() {
            tick.gauges.insert(name, v);
        }
        for (name, h) in reg.histogram_handles() {
            let good_abs = match self.objective_for(&name) {
                Some(o) => h.count_le(o.objective_ns),
                None => h.count(),
            };
            let abs = HistAbs {
                count: h.count(),
                sum: h.sum(),
                good: good_abs,
            };
            let last = inner
                .last_hists
                .insert(name.clone(), abs)
                .unwrap_or_default();
            let ht = HistTick {
                dcount: abs.count.saturating_sub(last.count),
                dsum: abs.sum.saturating_sub(last.sum),
                dgood: abs.good.saturating_sub(last.good),
                p50: h.percentile(0.50),
                p99: h.percentile(0.99),
                p999: h.percentile(0.999),
                max: h.max(),
            };
            // Per-tick SLO breach accounting: a tick whose new samples
            // overspend the budget fraction counts one breach.
            if let Some(o) = self.objective_for(&name) {
                let bad = ht.dcount - ht.dgood.min(ht.dcount);
                if ht.dcount > 0 && bad as f64 / ht.dcount as f64 > o.budget {
                    reg.counter("telemetry_slo_breaches").inc();
                }
            }
            tick.hists.insert(name, ht);
        }

        inner.ring.push_back(tick);
        while inner.ring.len() > self.cfg.capacity.max(1) {
            let old = inner.ring.pop_front().expect("ring non-empty");
            for (name, d) in old.counters {
                *inner.base_counters.entry(name).or_default() += d;
            }
            for (name, ht) in old.hists {
                let b = inner.base_hists.entry(name).or_default();
                b.count += ht.dcount;
                b.sum += ht.dsum;
                b.good += ht.dgood;
            }
            inner.evictions += 1;
            reg.counter("telemetry_evictions").inc();
        }
        seq
    }

    /// Ticks currently retained, oldest first.
    pub fn ticks(&self) -> Vec<Tick> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Ticks evicted into the base so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Reconstructed total for counter `name`: eviction base plus the
    /// retained deltas. Always equals the last sampled absolute (the
    /// conservation invariant).
    pub fn total(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.base_counters.get(name).copied().unwrap_or(0)
            + inner
                .ring
                .iter()
                .filter_map(|t| t.counters.get(name))
                .sum::<u64>()
    }

    /// The absolute value of counter `name` at the most recent tick.
    pub fn last_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .last_counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Rate (per second) of counter `name` over the trailing `window`:
    /// the derivative query the delta ring exists for. Uses the newest
    /// ticks whose summed `dt` covers the window (all of them if the
    /// ring is shorter).
    pub fn rate_per_sec(&self, name: &str, window: Duration) -> f64 {
        let want_ns = window.as_nanos() as u64;
        let inner = self.inner.lock().unwrap();
        let mut d = 0u64;
        let mut span = 0u64;
        for t in inner.ring.iter().rev() {
            d += t.counters.get(name).copied().unwrap_or(0);
            span += t.dt_ns;
            if span >= want_ns {
                break;
            }
        }
        if span == 0 {
            return 0.0;
        }
        d as f64 * 1e9 / span as f64
    }

    /// Error-budget burn rate for `hist`'s objective over the trailing
    /// `window`: `bad_fraction / budget`. `1.0` consumes the budget
    /// exactly; `> 1.0` overspends it. `None` if no objective is
    /// configured for `hist`; `Some(0.0)` when the window saw no
    /// samples.
    pub fn burn_rate(&self, hist: &str, window: Duration) -> Option<f64> {
        let o = self.objective_for(hist)?;
        let want_ns = window.as_nanos() as u64;
        let inner = self.inner.lock().unwrap();
        let mut total = 0u64;
        let mut good = 0u64;
        let mut span = 0u64;
        for t in inner.ring.iter().rev() {
            if let Some(ht) = t.hists.get(hist) {
                total += ht.dcount;
                good += ht.dgood;
            }
            span += t.dt_ns;
            if span >= want_ns {
                break;
            }
        }
        if total == 0 {
            return Some(0.0);
        }
        let bad_fraction = (total - good.min(total)) as f64 / total as f64;
        Some(bad_fraction / o.budget.max(f64::MIN_POSITIVE))
    }

    /// Prometheus text exposition of the registry's current state:
    /// counters and gauges as-is, histograms as summaries with
    /// `quantile` labels (0.5/0.95/0.99/0.999) plus `_sum`/`_count`.
    pub fn prometheus_text(&self) -> String {
        let reg = self.source.registry();
        let mut out = String::new();
        for (name, v) in reg.counter_values() {
            let n = promname(&name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v, hi) in reg.gauge_values() {
            let n = promname(&name);
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n} {v}\n# TYPE {n}_high gauge\n{n}_high {hi}\n"
            ));
        }
        for (name, h) in reg.histogram_handles() {
            let n = promname(&name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, p) in [
                (0.5, "0.5"),
                (0.95, "0.95"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                out.push_str(&format!("{n}{{quantile=\"{p}\"}} {}\n", h.percentile(q)));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
        }
        out
    }

    /// JSON time-series export, schema [`TELEMETRY_SCHEMA`]: the
    /// retained ticks with their deltas, the eviction bases, and the
    /// reconstructed totals (so a consumer can verify conservation).
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let ticks: Vec<Value> = inner
            .ring
            .iter()
            .map(|t| {
                let counters = Value::Map(
                    t.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v as u128)))
                        .collect(),
                );
                let gauges = Value::Map(
                    t.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v as u128)))
                        .collect(),
                );
                let hists = Value::Map(
                    t.hists
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Value::Map(vec![
                                    ("dcount".into(), Value::UInt(h.dcount as u128)),
                                    ("dsum".into(), Value::UInt(h.dsum as u128)),
                                    ("dgood".into(), Value::UInt(h.dgood as u128)),
                                    ("p50".into(), Value::UInt(h.p50 as u128)),
                                    ("p99".into(), Value::UInt(h.p99 as u128)),
                                    ("p999".into(), Value::UInt(h.p999 as u128)),
                                    ("max".into(), Value::UInt(h.max as u128)),
                                ]),
                            )
                        })
                        .collect(),
                );
                Value::Map(vec![
                    ("seq".into(), Value::UInt(t.seq as u128)),
                    ("at_ns".into(), Value::UInt(t.at_ns as u128)),
                    ("dt_ns".into(), Value::UInt(t.dt_ns as u128)),
                    ("counters".into(), counters),
                    ("gauges".into(), gauges),
                    ("hists".into(), hists),
                ])
            })
            .collect();
        let bases = Value::Map(
            inner
                .base_counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v as u128)))
                .collect(),
        );
        let totals = Value::Map(
            inner
                .last_counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v as u128)))
                .collect(),
        );
        let objectives: Vec<Value> = self
            .cfg
            .objectives
            .iter()
            .map(|o| {
                Value::Map(vec![
                    ("histogram".into(), Value::Str(o.histogram.clone())),
                    ("objective_ns".into(), Value::UInt(o.objective_ns as u128)),
                    ("budget".into(), Value::Float(o.budget)),
                ])
            })
            .collect();
        let doc = Value::Map(vec![
            ("schema".into(), Value::Str(TELEMETRY_SCHEMA.into())),
            (
                "interval_ns".into(),
                Value::UInt(self.cfg.interval.as_nanos()),
            ),
            ("capacity".into(), Value::UInt(self.cfg.capacity as u128)),
            ("evictions".into(), Value::UInt(inner.evictions as u128)),
            ("objectives".into(), Value::Seq(objectives)),
            ("base_counters".into(), bases),
            ("totals".into(), totals),
            ("ticks".into(), Value::Seq(ticks)),
        ]);
        serde_json::to_string(&doc).expect("telemetry document serializes")
    }
}

/// Prometheus metric-name sanitizer: `[a-zA-Z0-9_:]` pass through,
/// anything else becomes `_`; a leading digit gets a `_` prefix.
fn promname(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Background sampler thread: ticks [`Sampler::sample`] every
/// `interval` and services deferred blackbox triggers between ticks.
/// Stop with [`SamplerThread::stop`] (also runs on drop).
#[derive(Debug)]
pub struct SamplerThread {
    // Note: deliberately std atomics/threads, not the mc shim — the
    // sampler thread is wall-clock plumbing the model checker never
    // schedules.
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SamplerThread {
    /// Spawn the thread. If `blackbox` is given, pending triggers are
    /// serviced (post-mortem bundles written) right after each tick.
    pub fn spawn(sampler: Arc<Sampler>, blackbox: Option<Arc<crate::blackbox::Blackbox>>) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let interval = sampler.cfg.interval;
        let handle = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                // ordering: advisory stop flag; staleness acceptable.
                while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                    std::thread::park_timeout(interval);
                    // ordering: as above (re-check after the sleep so
                    // stop() never waits a full interval).
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    sampler.sample();
                    if let Some(bb) = &blackbox {
                        // A failed dump must not kill the sampler loop;
                        // the fire stays pending and is retried next
                        // tick.
                        let _ = bb.service();
                    }
                }
            })
            .expect("sampler thread spawns");
        SamplerThread {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread and join it.
    pub fn stop(&mut self) {
        // ordering: advisory stop flag; the join below synchronizes.
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

impl Drop for SamplerThread {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> (Arc<Registry>, Sampler) {
        let reg = Arc::new(Registry::new());
        let sampler = Sampler::new(
            RegistrySource::Shared(Arc::clone(&reg)),
            SamplerConfig {
                capacity: 4,
                objectives: vec![SloObjective {
                    histogram: "lat".into(),
                    objective_ns: 1_000,
                    budget: 0.01,
                }],
                ..SamplerConfig::default()
            },
        );
        (reg, sampler)
    }

    #[test]
    fn deltas_conserve_counter_totals_across_eviction() {
        let (reg, sampler) = shared();
        let c = reg.counter("work");
        for round in 0..10u64 {
            c.add(round * 3 + 1);
            sampler.sample();
        }
        // Capacity 4 << 10 ticks: eviction definitely happened.
        assert!(sampler.evictions() > 0);
        assert_eq!(sampler.total("work"), c.get());
        assert_eq!(sampler.last_value("work"), c.get());
        // The sampler's own tick counter obeys the same invariant.
        assert_eq!(
            sampler.total("telemetry_ticks"),
            reg.counter("telemetry_ticks").get()
        );
    }

    #[test]
    fn rate_query_reads_the_trailing_window() {
        let (reg, sampler) = shared();
        let c = reg.counter("ops");
        for _ in 0..4 {
            c.add(100);
            sampler.sample();
        }
        // Rate over a huge window = all retained deltas / their span.
        let r = sampler.rate_per_sec("ops", Duration::from_secs(3600));
        assert!(r > 0.0, "rate {r}");
        let ticks = sampler.ticks();
        let d: u64 = ticks.iter().filter_map(|t| t.counters.get("ops")).sum();
        assert_eq!(d, 400, "4 ticks fit the capacity-4 ring, nothing evicted");
    }

    #[test]
    fn gauges_sample_levels_not_deltas() {
        let (reg, sampler) = shared();
        reg.gauge("depth").set(5);
        sampler.sample();
        reg.gauge("depth").set(2);
        sampler.sample();
        let ticks = sampler.ticks();
        assert_eq!(ticks[0].gauges["depth"], 5);
        assert_eq!(ticks[1].gauges["depth"], 2);
    }

    #[test]
    fn slo_burn_rate_tracks_objective_misses() {
        let (reg, sampler) = shared();
        let h = reg.histogram("lat");
        // 98 good, 2 bad out of 100: bad fraction 2% against a 1%
        // budget → burn rate 2.0, and the per-tick breach counter fires.
        for _ in 0..98 {
            h.record(500);
        }
        for _ in 0..2 {
            h.record(50_000);
        }
        sampler.sample();
        let burn = sampler
            .burn_rate("lat", Duration::from_secs(3600))
            .expect("objective configured");
        assert!((burn - 2.0).abs() < 0.05, "burn {burn}");
        assert_eq!(reg.counter("telemetry_slo_breaches").get(), 1);
        // No objective → no burn rate.
        assert!(sampler.burn_rate("other", Duration::from_secs(1)).is_none());
        // All-good follow-up tick burns nothing new.
        for _ in 0..100 {
            h.record(1);
        }
        sampler.sample();
        assert_eq!(reg.counter("telemetry_slo_breaches").get(), 1);
    }

    #[test]
    fn prometheus_text_has_types_and_quantiles() {
        let (reg, sampler) = shared();
        reg.counter("gets").add(7);
        reg.gauge("q.depth").set(3);
        reg.histogram("lat").record(50);
        let text = sampler.prometheus_text();
        assert!(text.contains("# TYPE gets counter\ngets 7\n"), "{text}");
        assert!(text.contains("# TYPE q_depth gauge\nq_depth 3\n"), "{text}");
        assert!(text.contains("lat{quantile=\"0.999\"} 50"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
    }

    #[test]
    fn json_export_is_schema_tagged_and_parses() {
        let (reg, sampler) = shared();
        reg.counter("x").add(2);
        reg.histogram("lat").record(10);
        sampler.sample();
        reg.counter("x").add(3);
        sampler.sample();
        let json = sampler.to_json();
        let doc: Value = serde_json::from_str(&json).expect("telemetry JSON parses");
        let Value::Map(top) = doc else {
            panic!("top level must be an object")
        };
        let get = |key: &str| -> Value {
            top.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1
                .clone()
        };
        assert_eq!(get("schema"), Value::Str(TELEMETRY_SCHEMA.into()));
        let Value::Seq(ticks) = get("ticks") else {
            panic!("ticks must be an array")
        };
        assert_eq!(ticks.len(), 2);
        let Value::Map(totals) = get("totals") else {
            panic!("totals must be an object")
        };
        assert!(totals.iter().any(|(k, v)| k == "x" && *v == Value::UInt(5)));
    }

    #[test]
    fn background_thread_ticks_and_stops() {
        let reg = Arc::new(Registry::new());
        let sampler = Arc::new(Sampler::new(
            RegistrySource::Shared(Arc::clone(&reg)),
            SamplerConfig {
                interval: Duration::from_millis(1),
                ..SamplerConfig::default()
            },
        ));
        let mut th = SamplerThread::spawn(Arc::clone(&sampler), None);
        let deadline = Instant::now() + Duration::from_secs(5);
        while reg.counter("telemetry_ticks").get() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        th.stop();
        let ticked = reg.counter("telemetry_ticks").get();
        assert!(ticked >= 3, "sampler thread only ticked {ticked} times");
        // After stop, no further ticks.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(reg.counter("telemetry_ticks").get(), ticked);
    }
}
