//! `obs` — always-on observability for the White Alligator
//! reproduction (DESIGN.md §11).
//!
//! Three pieces:
//!
//! * **Event rings** ([`ring::EventRing`], [`trace`]): per-thread
//!   lock-free fixed-capacity rings recording typed spans/instants for
//!   the bucket lifecycle (GET/USE/PUT), refill rounds, tetris stripe
//!   fires, stage commits, CP phases, and injected faults. Zero cost
//!   unless built with `--features trace`; a runtime switch inside a
//!   trace build gates recording for overhead A/B runs.
//! * **Metrics registry** ([`metrics::Registry`]): named counters,
//!   gauges, and log-bucketed histograms with a sorted plain-text
//!   export, replacing the hand-threaded counter relay.
//! * **Exporters** ([`chrome::chrome_trace_json`],
//!   [`metrics::Registry::text_snapshot`]): Chrome trace-event JSON for
//!   `chrome://tracing`/Perfetto, and text dumps for reports/logs.
//! * **Continuous telemetry** ([`sampler::Sampler`], DESIGN.md §16): a
//!   background thread snapshots every registered metric into a
//!   timestamped delta ring — rate queries, SLO burn-rate tracking, a
//!   Prometheus-text exporter, and a `wafl.telemetry.v1` JSON export.
//! * **Flight recorder** ([`blackbox::Blackbox`]): on a trigger (drive
//!   offlining, CP crash point, `ArenaFull` fallback, scrub finding,
//!   manual) atomically writes a post-mortem bundle — recent events
//!   from every thread ring, full metrics, registered config/fault
//!   sections — schema `wafl.blackbox.v1`.
//!
//! Instrumentation sites use the macros:
//!
//! ```
//! let mut sp = obs::trace_span!(obs::EventKind::Refill);
//! // ... do the work ...
//! sp.set_arg(3 /* buckets built */);
//! drop(sp); // records one complete event (no-op without `trace`)
//! obs::trace_instant!(obs::EventKind::InsertAll, 3);
//! ```

#![warn(missing_docs)]

pub mod blackbox;
pub mod chrome;
pub mod event;
pub mod metrics;
pub mod ring;
pub mod sampler;
pub mod sync;
pub mod trace;

pub use blackbox::{trigger, Blackbox, BlackboxConfig, Trigger, BLACKBOX_SCHEMA};
pub use event::{Event, EventKind};
pub use metrics::{Counter, Gauge, LogHistogram, Registry};
pub use ring::{EventRing, RingSnapshot};
pub use sampler::{
    RegistrySource, Sampler, SamplerConfig, SamplerThread, SloObjective, TELEMETRY_SCHEMA,
};
pub use trace::{Span, ThreadTrace, ENABLED};

/// Record an instantaneous event on the current thread's ring.
/// `trace_instant!(kind)` or `trace_instant!(kind, arg)`. Compiles to
/// nothing without the `trace` feature (the called function is a no-op
/// that the optimizer deletes — the `log`-crate pattern, so consumer
/// crates never forward the feature themselves).
#[macro_export]
macro_rules! trace_instant {
    ($kind:expr) => {
        $crate::trace::instant($kind, 0)
    };
    ($kind:expr, $arg:expr) => {
        $crate::trace::instant($kind, $arg)
    };
}

/// Open a span recording one complete event when dropped.
/// `trace_span!(kind)` or `trace_span!(kind, arg)`; bind the result
/// (`let _sp = ...` — not `let _ = ...`, which drops immediately) and
/// optionally `_sp.set_arg(..)` before it goes out of scope. No-op ZST
/// without the `trace` feature.
#[macro_export]
macro_rules! trace_span {
    ($kind:expr) => {
        $crate::trace::span($kind)
    };
    ($kind:expr, $arg:expr) => {
        $crate::trace::span_arg($kind, $arg)
    };
}
