//! Blockdev integration: multi-RAID-group engines, service-time
//! monotonicity, degraded reads, and stripe accounting across realistic
//! write patterns.

use std::collections::BTreeMap;
use std::sync::Arc;
use wafl_blockdev::{
    stamp, Dbn, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, ServiceModel, Vbn, WriteIo,
    WriteSegment,
};

fn engine() -> IoEngine {
    IoEngine::new(
        Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(4, 1, 2048)
                .raid_group(2, 1, 2048)
                .build(),
        ),
        DriveKind::Ssd,
    )
}

#[test]
fn tetris_shaped_io_across_both_groups() {
    let e = engine();
    // A full tetris per group: depth 64, full width.
    for (rg, width) in [(RaidGroupId(0), 4u32), (RaidGroupId(1), 2u32)] {
        let io = WriteIo {
            rg,
            segments: (0..width)
                .map(|d| WriteSegment {
                    drive_in_rg: d,
                    start_dbn: 0,
                    stamps: (0..64).map(|i| stamp(rg.0 as u64, d as u64, i)).collect(),
                })
                .collect(),
        };
        let r = e.submit_write(&io).unwrap();
        assert_eq!(r.parity_reads, 0, "aligned tetris for rg {rg:?}");
        assert_eq!(r.blocks_written, width as u64 * 64);
    }
    assert_eq!(e.full_stripe_ratio(), Some(1.0));
    e.scrub().unwrap();
    let snap = e.counters().snapshot();
    assert_eq!(snap.write_ios, 2);
    assert_eq!(snap.blocks_written, 4 * 64 + 2 * 64);
}

#[test]
fn degraded_read_recovers_data_after_heavy_churn() {
    let e = engine();
    // Write three generations over the same stripes.
    for generation in 1..=3u64 {
        let io = WriteIo {
            rg: RaidGroupId(0),
            segments: (0..4)
                .map(|d| WriteSegment {
                    drive_in_rg: d,
                    start_dbn: 100,
                    stamps: (0..16).map(|i| stamp(d as u64, i, generation)).collect(),
                })
                .collect(),
        };
        e.submit_write(&io).unwrap();
    }
    // Any single drive's content is reconstructible from the rest.
    let g = e.raid_group(RaidGroupId(0));
    for failed in 0..4u32 {
        for dbn in 100..116 {
            let original = g.data_drives()[failed as usize]
                .read_block(Dbn(dbn))
                .unwrap()
                .0;
            assert_eq!(g.reconstruct(failed, Dbn(dbn)), original);
        }
    }
}

#[test]
fn service_time_grows_with_blocks_and_randomness() {
    let hdd = ServiceModel::for_kind(DriveKind::Hdd);
    let mut prev = 0;
    for blocks in [1u64, 8, 64, 256] {
        let t = hdd.service_ns(blocks, false);
        assert!(t > prev, "monotone in block count");
        prev = t;
    }
    assert!(hdd.service_ns(64, false) > hdd.service_ns(64, true));

    let ssd = ServiceModel::for_kind(DriveKind::Ssd);
    assert!(
        hdd.service_ns(1, false) > 10 * ssd.service_ns(1, false),
        "an HDD seek dwarfs an SSD access"
    );
}

#[test]
fn interleaved_group_writes_do_not_cross_talk() {
    let e = engine();
    e.write_vbn(Vbn(0), 0xAAA).unwrap(); // rg0 drive0 dbn0
    let rg1_base = 4 * 2048;
    e.write_vbn(Vbn(rg1_base as u64), 0xBBB).unwrap(); // rg1 drive0 dbn0
    assert_eq!(e.read_vbn(Vbn(0)).unwrap(), 0xAAA);
    assert_eq!(e.read_vbn(Vbn(rg1_base as u64)).unwrap(), 0xBBB);
    // Same DBN, different groups → independent parity.
    e.scrub().unwrap();
}

#[test]
fn raid_write_handles_interleaved_runs_and_holes() {
    let e = engine();
    let g = e.raid_group(RaidGroupId(1));
    let mut m0 = BTreeMap::new();
    let mut m1 = BTreeMap::new();
    // Drive 0: runs [0..3) and [10..12); drive 1: [1..4).
    for d in 0..3u64 {
        m0.insert(d, stamp(0, d, 1));
    }
    for d in 10..12u64 {
        m0.insert(d, stamp(0, d, 1));
    }
    for d in 1..4u64 {
        m1.insert(d, stamp(1, d, 1));
    }
    let (ns, parity_reads) = g.write(&[m0, m1]).unwrap();
    assert!(ns > 0);
    // Full stripes: dbn 1, 2 (both drives). Partial: 0, 3, 10, 11.
    assert_eq!(
        g.counters()
            .full_stripe_writes
            // ordering: statistics counter; staleness is acceptable.
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    assert_eq!(
        g.counters()
            .partial_stripe_writes
            // ordering: statistics counter; staleness is acceptable.
            .load(std::sync::atomic::Ordering::Relaxed),
        4
    );
    assert_eq!(parity_reads, 4);
    g.verify_parity(0, 12).unwrap();
}

#[test]
fn drive_stats_reflect_group_level_writes() {
    let e = engine();
    let io = WriteIo {
        rg: RaidGroupId(0),
        segments: vec![WriteSegment {
            drive_in_rg: 2,
            start_dbn: 500,
            stamps: vec![1, 2, 3, 4],
        }],
    };
    e.submit_write(&io).unwrap();
    let g = e.raid_group(RaidGroupId(0));
    assert_eq!(g.data_drives()[2].stats().blocks_written, 4);
    assert_eq!(g.data_drives()[0].stats().blocks_written, 0);
    // Parity drive took the 4 parity blocks.
    assert_eq!(g.parity_drives()[0].stats().blocks_written, 4);
}

#[test]
fn geometry_equivalence_of_vbn_and_loc_views() {
    let e = engine();
    let geo = e.geometry();
    // Write through VBN view, read through loc view.
    let vbn = Vbn(3 * 2048 + 77); // rg0 drive3 dbn77
    e.write_vbn(vbn, 0x77).unwrap();
    let loc = geo.locate(vbn).unwrap();
    assert_eq!(loc.rg, RaidGroupId(0));
    assert_eq!(loc.drive_in_rg, 3);
    assert_eq!(loc.dbn, Dbn(77));
    let drive = &e.raid_group(loc.rg).data_drives()[loc.drive_in_rg as usize];
    assert_eq!(drive.read_block(loc.dbn).unwrap().0, 0x77);
}
