//! Property tests: geometry arithmetic and RAID parity under random
//! inputs.

use proptest::prelude::*;
use std::sync::Arc;
use wafl_blockdev::{
    DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn, WriteIo, WriteSegment,
};

fn geometries() -> impl Strategy<Value = (u32, u32, u64, u64)> {
    // (groups, data drives per group, blocks per drive, aa stripes)
    (1u32..4, 1u32..6, 16u64..512, 4u64..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locate_vbn_roundtrip_for_random_geometries(
        (groups, width, blocks, aa) in geometries(),
        probes in prop::collection::vec(0u64..u64::MAX, 1..50),
    ) {
        let mut b = GeometryBuilder::new().aa_stripes(aa);
        for _ in 0..groups {
            b = b.raid_group(width, 1, blocks);
        }
        let geo = b.build();
        prop_assert_eq!(geo.total_vbns(), groups as u64 * width as u64 * blocks);
        for p in probes {
            let vbn = Vbn(p % geo.total_vbns());
            let loc = geo.locate(vbn).unwrap();
            prop_assert_eq!(geo.vbn_at(loc.rg, loc.drive_in_rg, loc.dbn), vbn);
            prop_assert!(loc.dbn.0 < blocks);
            prop_assert!(loc.drive_in_rg < width);
            // AA containment.
            let aa_id = geo.aa_of(vbn);
            let r = geo.aa_dbn_range(aa_id);
            prop_assert!(r.contains(&loc.dbn.0));
        }
    }

    #[test]
    fn vbns_partition_across_drives(
        (groups, width, blocks, aa) in geometries(),
    ) {
        let mut b = GeometryBuilder::new().aa_stripes(aa);
        for _ in 0..groups {
            b = b.raid_group(width, 1, blocks);
        }
        let geo = b.build();
        // Walk all VBNs (bounded by strategy ranges) and count per drive.
        let mut counts = std::collections::HashMap::new();
        for v in 0..geo.total_vbns() {
            let loc = geo.locate(Vbn(v)).unwrap();
            *counts.entry(loc.drive).or_insert(0u64) += 1;
        }
        prop_assert_eq!(counts.len() as u64, groups as u64 * width as u64);
        prop_assert!(counts.values().all(|&c| c == blocks));
    }

    #[test]
    fn parity_holds_after_arbitrary_write_sequences(
        writes in prop::collection::vec(
            (0u32..3, 0u64..64, 1u64..8, 1u128..u128::MAX), 1..40),
    ) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(16)
                .raid_group(3, 1, 128)
                .build(),
        );
        let engine = IoEngine::new(geo, DriveKind::Ssd);
        for (drive, start, len, stamp) in writes {
            let drive = drive % 3;
            let start = start % 120;
            let len = len.min(128 - start);
            let io = WriteIo {
                rg: RaidGroupId(0),
                segments: vec![WriteSegment {
                    drive_in_rg: drive,
                    start_dbn: start,
                    stamps: (0..len).map(|i| stamp ^ i as u128).collect(),
                }],
            };
            engine.submit_write(&io).unwrap();
        }
        engine.scrub().unwrap();
    }

    #[test]
    fn reconstruction_equals_original_after_random_writes(
        writes in prop::collection::vec((0u32..4, 0u64..100, 1u128..u128::MAX), 5..30),
        failed in 0u32..4,
        probe in 0u64..100,
    ) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(4, 1, 100)
                .build(),
        );
        let engine = IoEngine::new(Arc::clone(&geo), DriveKind::Ssd);
        for (drive, dbn, stamp) in writes {
            let io = WriteIo {
                rg: RaidGroupId(0),
                segments: vec![WriteSegment {
                    drive_in_rg: drive % 4,
                    start_dbn: dbn,
                    stamps: vec![stamp],
                }],
            };
            engine.submit_write(&io).unwrap();
        }
        let rg = engine.raid_group(RaidGroupId(0));
        let original = rg.data_drives()[failed as usize]
            .read_block(wafl_blockdev::Dbn(probe))
            .unwrap()
            .0;
        prop_assert_eq!(rg.reconstruct(failed, wafl_blockdev::Dbn(probe)), original);
    }
}
