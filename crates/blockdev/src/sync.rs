//! Synchronization shim: the single import point for every atomic,
//! cell, and spin hint used by the lock-free completion ring
//! (`aio.rs`).
//!
//! * Default build: zero-cost re-exports of `std::sync::atomic`,
//!   `parking_lot`, and a thin `UnsafeCell` wrapper — identical codegen
//!   to using them directly.
//! * `--features mc`: the same names resolve to the `mc` crate's
//!   model-checker shims, turning every operation into a yield point of
//!   a controlled scheduler (see `crates/mc`). The checker's test suite
//!   builds this crate that way to explore submit/poll/drain
//!   interleavings of the completion-queue protocol exhaustively.
//!
//! Code under check must come through this module (never `std::sync`
//! directly) for the model to see its memory accesses. This mirrors
//! `alligator::sync`, which plays the same role for the bucket cache.

#[cfg(feature = "mc")]
pub use mc::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(feature = "mc"))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Atomics: `std::sync::atomic` types or their model-aware doubles.
pub mod atomic {
    #[cfg(feature = "mc")]
    pub use mc::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
    #[cfg(not(feature = "mc"))]
    pub use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
}

/// Interior mutability with loom-style `with`/`with_mut` accessors, so
/// the model checker can race-check every shared cell access.
pub mod cell {
    #[cfg(feature = "mc")]
    pub use mc::cell::UnsafeCell;

    /// Zero-cost `UnsafeCell` wrapper exposing the same `with`/`with_mut`
    /// closure API the `mc` shim uses for race tracking.
    #[cfg(not(feature = "mc"))]
    #[derive(Debug)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(feature = "mc"))]
    impl<T> UnsafeCell<T> {
        /// Create a cell holding `t`.
        pub const fn new(t: T) -> Self {
            Self(std::cell::UnsafeCell::new(t))
        }

        /// Shared access via raw pointer (caller upholds aliasing rules).
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access via raw pointer (caller upholds exclusivity).
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Raw pointer escape hatch.
        #[inline]
        pub fn get(&self) -> *mut T {
            self.0.get()
        }
    }
}

/// Spin/yield hints: real CPU hints normally; scheduler yields under mc.
pub mod hint {
    /// Drop-in for `std::hint::spin_loop`.
    #[inline]
    pub fn spin_loop() {
        #[cfg(feature = "mc")]
        mc::hint::spin_loop();
        #[cfg(not(feature = "mc"))]
        std::hint::spin_loop();
    }

    /// Drop-in for `std::thread::yield_now`.
    #[inline]
    pub fn yield_now() {
        #[cfg(feature = "mc")]
        mc::thread::yield_now();
        #[cfg(not(feature = "mc"))]
        std::thread::yield_now();
    }
}
