//! RAID-group parity accounting.
//!
//! White Alligator's first layout objective (§IV-D) is to *minimize reads
//! required for RAID parity computation*: when a write covers an entire
//! stripe, parity is computed from the new data alone; when it covers only
//! part of a stripe, the missing data blocks must be read back from disk
//! (read-modify-write). The allocator's AA selection and equal-progress
//! bucket discipline exist to maximize the full-stripe ratio, and the
//! benchmarks verify exactly that through the counters kept here.
//!
//! Parity is modeled as the XOR of the 128-bit block stamps, which is a
//! faithful miniature of RAID-4/RAID-DP row parity and lets tests verify
//! parity correctness after arbitrary write sequences.

use crate::drive::{Drive, DriveKind};
use crate::geometry::{Dbn, DriveId, RaidGroupGeometry};
use crate::BlockStamp;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parity accounting counters for one RAID group.
#[derive(Debug, Default)]
pub struct ParityModel {
    /// Stripes written with full-stripe parity (no reads).
    pub full_stripe_writes: AtomicU64,
    /// Stripes written via read-modify-write.
    pub partial_stripe_writes: AtomicU64,
    /// Data blocks read back to recompute parity.
    pub parity_read_blocks: AtomicU64,
}

/// A RAID group: data drives, parity drive(s), and parity bookkeeping.
///
/// The group owns `Arc<Drive>`s so the I/O engine, allocator, and tests can
/// all hold references to the same media.
pub struct RaidGroup {
    geom: RaidGroupGeometry,
    data: Vec<Arc<Drive>>,
    /// First parity drive (additional parity drives in RAID-DP carry the
    /// same row parity in this model; diagonal parity is out of scope).
    parity: Vec<Arc<Drive>>,
    counters: ParityModel,
}

impl RaidGroup {
    /// Build a group and its drives.
    pub fn new(geom: RaidGroupGeometry, kind: DriveKind) -> Self {
        let data = geom
            .data_drives
            .iter()
            .map(|d| Arc::new(Drive::new(*d, kind, geom.blocks_per_drive)))
            .collect();
        let parity = (0..geom.parity_drives)
            .map(|i| {
                Arc::new(Drive::new(
                    DriveId(u32::MAX - geom.id.0 * 8 - i),
                    kind,
                    geom.blocks_per_drive,
                ))
            })
            .collect();
        Self {
            geom,
            data,
            parity,
            counters: ParityModel::default(),
        }
    }

    /// Group geometry.
    #[inline]
    pub fn geometry(&self) -> &RaidGroupGeometry {
        &self.geom
    }

    /// Data drives, in stripe order.
    #[inline]
    pub fn data_drives(&self) -> &[Arc<Drive>] {
        &self.data
    }

    /// Parity drives.
    #[inline]
    pub fn parity_drives(&self) -> &[Arc<Drive>] {
        &self.parity
    }

    /// Parity counters.
    #[inline]
    pub fn counters(&self) -> &ParityModel {
        &self.counters
    }

    /// Width (number of data drives).
    #[inline]
    pub fn width(&self) -> u32 {
        self.data.len() as u32
    }

    /// Apply a write organized as per-drive block maps and maintain
    /// parity. `per_drive[i]` maps DBN → stamp for data drive `i` (index
    /// within the group). Returns `(service_ns, parity_reads)` where
    /// `service_ns` is the *maximum* over drives (drives work in
    /// parallel, the group completes when the slowest member does).
    pub fn write(&self, per_drive: &[BTreeMap<u64, BlockStamp>]) -> (u64, u64) {
        assert_eq!(per_drive.len(), self.data.len(), "one map per data drive");

        // Gather the set of stripes touched and whether each is full.
        let mut stripes: BTreeMap<u64, u32> = BTreeMap::new();
        for m in per_drive {
            for &dbn in m.keys() {
                *stripes.entry(dbn).or_insert(0) += 1;
            }
        }

        let width = self.width();
        let mut parity_reads = 0u64;
        let mut parity_updates: BTreeMap<u64, BlockStamp> = BTreeMap::new();

        for (&dbn, &covered) in &stripes {
            let mut parity = 0u128;
            if covered == width {
                // Full stripe: parity from new data only.
                self.counters.full_stripe_writes.fetch_add(1, Ordering::Relaxed);
                for m in per_drive {
                    parity ^= m[&dbn];
                }
            } else {
                // Partial stripe: read the untouched blocks back.
                self.counters
                    .partial_stripe_writes
                    .fetch_add(1, Ordering::Relaxed);
                for (i, m) in per_drive.iter().enumerate() {
                    match m.get(&dbn) {
                        Some(&s) => parity ^= s,
                        None => {
                            let (old, _) = self.data[i].read_block(Dbn(dbn));
                            parity ^= old;
                            parity_reads += 1;
                        }
                    }
                }
            }
            parity_updates.insert(dbn, parity);
        }
        self.counters
            .parity_read_blocks
            .fetch_add(parity_reads, Ordering::Relaxed);

        // Issue per-drive writes as maximal contiguous runs; the group's
        // service time is the slowest drive (drives operate in parallel).
        let mut max_ns = 0u64;
        for (i, m) in per_drive.iter().enumerate() {
            max_ns = max_ns.max(write_runs(&self.data[i], m));
        }
        for p in &self.parity {
            max_ns = max_ns.max(write_runs(p, &parity_updates));
        }
        (max_ns, parity_reads)
    }

    /// Verify that parity equals the XOR of data blocks for every stripe in
    /// `[start, end)`. Test/scrub helper.
    pub fn verify_parity(&self, start: u64, end: u64) -> Result<(), String> {
        for dbn in start..end {
            let mut x = 0u128;
            for d in &self.data {
                x ^= d.read_block(Dbn(dbn)).0;
            }
            for p in &self.parity {
                let got = p.read_block(Dbn(dbn)).0;
                if got != x {
                    return Err(format!(
                        "parity mismatch at rg {:?} dbn {dbn}: expected {x:#x}, got {got:#x}",
                        self.geom.id
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reconstruct a data block from the surviving drives + parity, as a
    /// degraded-mode read would. Used by tests to show parity is real.
    pub fn reconstruct(&self, failed_drive_in_rg: u32, dbn: Dbn) -> BlockStamp {
        let mut x = self.parity[0].read_block(dbn).0;
        for (i, d) in self.data.iter().enumerate() {
            if i as u32 != failed_drive_in_rg {
                x ^= d.read_block(dbn).0;
            }
        }
        x
    }
}

/// Write a DBN→stamp map to a drive as maximal contiguous runs; return the
/// accumulated service time.
fn write_runs(drive: &Drive, m: &BTreeMap<u64, BlockStamp>) -> u64 {
    let mut ns = 0u64;
    let mut iter = m.iter().peekable();
    while let Some((&start, &first)) = iter.next() {
        let mut run = vec![first];
        let mut next = start + 1;
        while let Some(&(&d, &s)) = iter.peek() {
            if d == next {
                run.push(s);
                next += 1;
                iter.next();
            } else {
                break;
            }
        }
        ns += drive.write_run(Dbn(start), &run);
    }
    ns
}

impl std::fmt::Debug for RaidGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaidGroup")
            .field("id", &self.geom.id)
            .field("width", &self.width())
            .field("parity_drives", &self.parity.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{GeometryBuilder, RaidGroupId};

    fn rg(width: u32) -> RaidGroup {
        let geo = GeometryBuilder::new()
            .aa_stripes(16)
            .raid_group(width, 1, 256)
            .build();
        RaidGroup::new(geo.raid_group(RaidGroupId(0)).clone(), DriveKind::Ssd)
    }

    #[test]
    fn full_stripe_needs_no_parity_reads() {
        let g = rg(3);
        let maps = vec![
            BTreeMap::from([(5u64, 0xa_u128)]),
            BTreeMap::from([(5u64, 0xb_u128)]),
            BTreeMap::from([(5u64, 0xc_u128)]),
        ];
        let (_, reads) = g.write(&maps);
        assert_eq!(reads, 0);
        assert_eq!(g.counters().full_stripe_writes.load(Ordering::Relaxed), 1);
        assert_eq!(g.counters().partial_stripe_writes.load(Ordering::Relaxed), 0);
        g.verify_parity(5, 6).unwrap();
    }

    #[test]
    fn partial_stripe_reads_missing_blocks() {
        let g = rg(4);
        // Touch only 2 of 4 drives at dbn 9 → 2 parity reads.
        let maps = vec![
            BTreeMap::from([(9u64, 0x1_u128)]),
            BTreeMap::from([(9u64, 0x2_u128)]),
            BTreeMap::new(),
            BTreeMap::new(),
        ];
        let (_, reads) = g.write(&maps);
        assert_eq!(reads, 2);
        assert_eq!(g.counters().partial_stripe_writes.load(Ordering::Relaxed), 1);
        g.verify_parity(9, 10).unwrap();
    }

    #[test]
    fn parity_tracks_overwrites() {
        let g = rg(2);
        let w1 = vec![
            BTreeMap::from([(0u64, 0x11_u128)]),
            BTreeMap::from([(0u64, 0x22_u128)]),
        ];
        g.write(&w1);
        // Overwrite one side (partial stripe → read the other).
        let w2 = vec![BTreeMap::from([(0u64, 0x33_u128)]), BTreeMap::new()];
        g.write(&w2);
        g.verify_parity(0, 1).unwrap();
    }

    #[test]
    fn reconstruction_recovers_lost_block() {
        let g = rg(3);
        let maps = vec![
            BTreeMap::from([(7u64, 0xdead_u128)]),
            BTreeMap::from([(7u64, 0xbeef_u128)]),
            BTreeMap::from([(7u64, 0xf00d_u128)]),
        ];
        g.write(&maps);
        assert_eq!(g.reconstruct(1, Dbn(7)), 0xbeef);
    }

    #[test]
    fn multi_stripe_write_counts_each_stripe() {
        let g = rg(2);
        let maps = vec![
            BTreeMap::from([(0u64, 1u128), (1, 2), (2, 3)]),
            BTreeMap::from([(0u64, 4u128), (1, 5)]), // stripe 2 is partial
        ];
        let (_, reads) = g.write(&maps);
        assert_eq!(g.counters().full_stripe_writes.load(Ordering::Relaxed), 2);
        assert_eq!(g.counters().partial_stripe_writes.load(Ordering::Relaxed), 1);
        assert_eq!(reads, 1);
        g.verify_parity(0, 3).unwrap();
    }

    #[test]
    fn contiguous_runs_issue_one_drive_write() {
        let g = rg(1);
        let maps = vec![BTreeMap::from([(0u64, 1u128), (1, 2), (2, 3), (10, 4)])];
        g.write(&maps);
        // 2 runs: [0..3) and [10..11).
        assert_eq!(g.data_drives()[0].stats().writes, 2);
        assert_eq!(g.data_drives()[0].stats().blocks_written, 4);
    }
}
