//! RAID-group parity accounting, degraded mode, and drive rebuild.
//!
//! White Alligator's first layout objective (§IV-D) is to *minimize reads
//! required for RAID parity computation*: when a write covers an entire
//! stripe, parity is computed from the new data alone; when it covers only
//! part of a stripe, the missing data blocks must be read back from disk
//! (read-modify-write). The allocator's AA selection and equal-progress
//! bucket discipline exist to maximize the full-stripe ratio, and the
//! benchmarks verify exactly that through the counters kept here.
//!
//! Parity is modeled as the XOR of the 128-bit block stamps, which is a
//! faithful miniature of RAID-4/RAID-DP row parity and lets tests verify
//! parity correctness after arbitrary write sequences.
//!
//! ## Fault handling
//!
//! Drive I/O is fallible (see [`crate::fault`]). The group applies a
//! [`RetryPolicy`] at every drive op: transient errors are retried with
//! exponential backoff charged to service time; a drive that keeps
//! failing is taken **offline** and the group enters degraded mode for
//! it. Degraded semantics follow real RAID-4:
//!
//! * **writes** targeting the offline drive skip the media but still
//!   fold the intended stamps into row parity, so the lost drive's
//!   logical contents remain reconstructable;
//! * **reads** of the offline drive are served by XOR-reconstruction
//!   from the surviving drives plus parity ([`RaidGroup::read_block`]);
//! * [`RaidGroup::rebuild_drive`] reconstructs every block onto fresh
//!   media and returns the drive to service, after which a raw-media
//!   parity scrub passes again.

use crate::drive::{Drive, DriveKind};
use crate::fault::{IoError, RetryPolicy};
use crate::geometry::{Dbn, DriveId, RaidGroupGeometry};
use crate::BlockStamp;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parity and fault accounting counters for one RAID group.
#[derive(Debug, Default)]
pub struct ParityModel {
    /// Stripes written with full-stripe parity (no reads).
    pub full_stripe_writes: AtomicU64,
    /// Stripes written via read-modify-write.
    pub partial_stripe_writes: AtomicU64,
    /// Data blocks read back to recompute parity.
    pub parity_read_blocks: AtomicU64,
    /// Blocks served by XOR reconstruction instead of the home drive.
    pub reconstructed_reads: AtomicU64,
    /// Stripes written or read while one member was offline.
    pub degraded_stripes: AtomicU64,
    /// Data blocks whose media write was skipped because the target
    /// drive was offline (parity still reflects them).
    pub degraded_writes: AtomicU64,
    /// Drive-op retries performed by the bounded-backoff policy.
    pub io_retries: AtomicU64,
    /// Drive-op errors observed (before retry resolution).
    pub io_errors: AtomicU64,
    /// Blocks rewritten onto media by the repair paths: whole-drive
    /// rebuilds plus single-block scrub repairs (data or parity).
    pub blocks_rebuilt: AtomicU64,
}

/// A RAID group: data drives, parity drive(s), and parity bookkeeping.
///
/// The group owns `Arc<Drive>`s so the I/O engine, allocator, and tests can
/// all hold references to the same media.
pub struct RaidGroup {
    geom: RaidGroupGeometry,
    data: Vec<Arc<Drive>>,
    /// First parity drive (additional parity drives in RAID-DP carry the
    /// same row parity in this model; diagonal parity is out of scope).
    parity: Vec<Arc<Drive>>,
    counters: ParityModel,
    policy: RetryPolicy,
}

impl RaidGroup {
    /// Build a group and its drives.
    pub fn new(geom: RaidGroupGeometry, kind: DriveKind) -> Self {
        let data = geom
            .data_drives
            .iter()
            .map(|d| Arc::new(Drive::new(*d, kind, geom.blocks_per_drive)))
            .collect();
        let parity = (0..geom.parity_drives)
            .map(|i| {
                Arc::new(Drive::new(
                    DriveId(u32::MAX - geom.id.0 * 8 - i),
                    kind,
                    geom.blocks_per_drive,
                ))
            })
            .collect();
        Self {
            geom,
            data,
            parity,
            counters: ParityModel::default(),
            policy: RetryPolicy::default(),
        }
    }

    /// Group geometry.
    #[inline]
    pub fn geometry(&self) -> &RaidGroupGeometry {
        &self.geom
    }

    /// Data drives, in stripe order.
    #[inline]
    pub fn data_drives(&self) -> &[Arc<Drive>] {
        &self.data
    }

    /// Parity drives.
    #[inline]
    pub fn parity_drives(&self) -> &[Arc<Drive>] {
        &self.parity
    }

    /// Parity counters.
    #[inline]
    pub fn counters(&self) -> &ParityModel {
        &self.counters
    }

    /// Width (number of data drives).
    #[inline]
    pub fn width(&self) -> u32 {
        self.data.len() as u32
    }

    /// Replace the retry/offlining policy (default: [`RetryPolicy::default`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The active retry/offlining policy.
    #[inline]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Indexes (within the group) of offline data drives.
    pub fn offline_data_drives(&self) -> Vec<u32> {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_offline())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Record a terminal (retries-exhausted or injected-fatal) failure
    /// and apply the offlining policy.
    fn note_terminal_failure(&self, drive: &Drive) {
        if drive.is_offline() {
            return; // injected whole-drive failure already offlined it
        }
        if drive.note_failure() >= self.policy.offline_after {
            drive.take_offline();
        }
    }

    /// Read one block through the retry policy. Backoff is charged to
    /// the returned service time.
    fn read_with_retries(&self, drive: &Drive, dbn: Dbn) -> Result<(BlockStamp, u64), IoError> {
        let mut backoff_ns = 0u64;
        for attempt in 0..=self.policy.max_retries {
            match drive.read_block(dbn) {
                Ok((stamp, ns)) => return Ok((stamp, ns + backoff_ns)),
                Err(e @ IoError::Transient { .. }) => {
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    if attempt == self.policy.max_retries {
                        self.note_terminal_failure(drive);
                        return Err(e);
                    }
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    backoff_ns += self.policy.backoff_base_ns << attempt;
                }
                Err(e) => {
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Write one run through the retry policy. Backoff is charged to the
    /// returned service time.
    fn write_with_retries(
        &self,
        drive: &Drive,
        start: Dbn,
        stamps: &[BlockStamp],
    ) -> Result<u64, IoError> {
        let mut backoff_ns = 0u64;
        for attempt in 0..=self.policy.max_retries {
            match drive.write_run(start, stamps) {
                Ok(ns) => return Ok(ns + backoff_ns),
                Err(e @ IoError::Transient { .. }) => {
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    if attempt == self.policy.max_retries {
                        self.note_terminal_failure(drive);
                        return Err(e);
                    }
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    backoff_ns += self.policy.backoff_base_ns << attempt;
                }
                Err(e) => {
                    // ordering: statistics counter; staleness is acceptable.
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        unreachable!("retry loop always returns")
    }

    /// Write a DBN→stamp map to one drive as maximal contiguous runs,
    /// applying the retry policy per run. Returns accumulated service
    /// time, or the first terminal error.
    fn write_runs(&self, drive: &Drive, m: &BTreeMap<u64, BlockStamp>) -> Result<u64, IoError> {
        let mut ns = 0u64;
        let mut iter = m.iter().peekable();
        while let Some((&start, &first)) = iter.next() {
            let mut run = vec![first];
            let mut next = start + 1;
            while let Some(&(&d, &s)) = iter.peek() {
                if d == next {
                    run.push(s);
                    next += 1;
                    iter.next();
                } else {
                    break;
                }
            }
            ns += self.write_with_retries(drive, Dbn(start), &run)?;
        }
        Ok(ns)
    }

    /// Apply a write organized as per-drive block maps and maintain
    /// parity. `per_drive[i]` maps DBN → stamp for data drive `i` (index
    /// within the group). Returns `(service_ns, parity_reads)` where
    /// `service_ns` is the *maximum* over drives (drives work in
    /// parallel, the group completes when the slowest member does).
    ///
    /// A single failed data drive does not fail the write: its media
    /// blocks are skipped but its intended stamps are folded into parity,
    /// leaving them reconstructable (degraded mode). The write errors
    /// only when reconstruction itself is impossible (a second failure in
    /// a single-parity group) or on a structural error.
    pub fn write(&self, per_drive: &[BTreeMap<u64, BlockStamp>]) -> Result<(u64, u64), IoError> {
        assert_eq!(per_drive.len(), self.data.len(), "one map per data drive");

        // Gather the set of stripes touched and whether each is full.
        let mut stripes: BTreeMap<u64, u32> = BTreeMap::new();
        for m in per_drive {
            for &dbn in m.keys() {
                *stripes.entry(dbn).or_insert(0) += 1;
            }
        }

        let width = self.width();
        let mut parity_reads = 0u64;
        let mut parity_updates: BTreeMap<u64, BlockStamp> = BTreeMap::new();

        for (&dbn, &covered) in &stripes {
            let mut parity = 0u128;
            if covered == width {
                // Full stripe: parity from new data only.
                self.counters
                    .full_stripe_writes
                    // ordering: statistics counter; staleness is acceptable.
                    .fetch_add(1, Ordering::Relaxed);
                for m in per_drive {
                    parity ^= m[&dbn];
                }
            } else {
                // Partial stripe: read the untouched blocks back.
                self.counters
                    .partial_stripe_writes
                    // ordering: statistics counter; staleness is acceptable.
                    .fetch_add(1, Ordering::Relaxed);
                for (i, m) in per_drive.iter().enumerate() {
                    match m.get(&dbn) {
                        Some(&s) => parity ^= s,
                        None => {
                            let old = match self.read_with_retries(&self.data[i], Dbn(dbn)) {
                                Ok((old, _)) => old,
                                Err(_) => {
                                    // Degraded read-modify-write: recover
                                    // the untouched block's logical value
                                    // from parity + surviving media.
                                    self.ensure_reconstructable(i as u32)?;
                                    self.counters
                                        .reconstructed_reads
                                        // ordering: statistics counter; staleness is acceptable.
                                        .fetch_add(1, Ordering::Relaxed);
                                    self.reconstruct(i as u32, Dbn(dbn))
                                }
                            };
                            parity ^= old;
                            parity_reads += 1;
                        }
                    }
                }
            }
            parity_updates.insert(dbn, parity);
        }
        self.counters
            .parity_read_blocks
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(parity_reads, Ordering::Relaxed);

        // Issue per-drive writes as maximal contiguous runs; the group's
        // service time is the slowest drive (drives operate in parallel).
        // A terminal per-drive failure degrades that drive instead of
        // failing the I/O: parity above already encodes its stamps.
        let mut max_ns = 0u64;
        for (i, m) in per_drive.iter().enumerate() {
            if m.is_empty() {
                continue;
            }
            match self.write_runs(&self.data[i], m) {
                Ok(ns) => max_ns = max_ns.max(ns),
                Err(IoError::Capacity { .. }) => {
                    return Err(IoError::Capacity {
                        drive: self.data[i].id(),
                        dbn: Dbn(*m.keys().next().unwrap()),
                        blocks: m.len() as u64,
                    })
                }
                Err(_) => {
                    // A write that exhausted its retries lost data on
                    // that drive: take it out of service unconditionally
                    // (stale media must never serve direct reads) and
                    // rely on parity for its contents.
                    self.data[i].take_offline();
                    self.ensure_reconstructable(i as u32)?;
                    self.counters
                        .degraded_writes
                        // ordering: statistics counter; staleness is acceptable.
                        .fetch_add(m.len() as u64, Ordering::Relaxed);
                    self.counters
                        .degraded_stripes
                        // ordering: statistics counter; staleness is acceptable.
                        .fetch_add(m.len() as u64, Ordering::Relaxed);
                }
            }
        }
        for p in &self.parity {
            match self.write_runs(p, &parity_updates) {
                Ok(ns) => max_ns = max_ns.max(ns),
                Err(e @ IoError::Capacity { .. }) => return Err(e),
                Err(_) => {
                    // Lost parity: data writes above still landed, but a
                    // concurrent data-drive failure would now be
                    // unrecoverable. Take the parity drive offline (its
                    // media is stale) and tolerate the loss as long as
                    // every data drive is healthy.
                    p.take_offline();
                    if !self.offline_data_drives().is_empty() {
                        return Err(IoError::Unrecoverable {
                            detail: "parity and data drive failed in one group",
                        });
                    }
                    self.counters
                        .degraded_writes
                        // ordering: statistics counter; staleness is acceptable.
                        .fetch_add(parity_updates.len() as u64, Ordering::Relaxed);
                }
            }
        }
        Ok((max_ns, parity_reads))
    }

    /// Error unless the group can reconstruct `failed_drive_in_rg`: every
    /// other data drive and the parity drive must be in service.
    fn ensure_reconstructable(&self, failed_drive_in_rg: u32) -> Result<(), IoError> {
        let others_ok = self
            .data
            .iter()
            .enumerate()
            .all(|(i, d)| i as u32 == failed_drive_in_rg || !d.is_offline());
        let parity_ok = self.parity.first().is_some_and(|p| !p.is_offline());
        if others_ok && parity_ok {
            Ok(())
        } else {
            Err(IoError::Unrecoverable {
                detail: "multiple drive failures in a single-parity group",
            })
        }
    }

    /// Read one data block, transparently falling back to degraded-mode
    /// XOR reconstruction when the home drive has failed. Returns
    /// `(stamp, service_ns)`.
    pub fn read_block(&self, drive_in_rg: u32, dbn: Dbn) -> Result<(BlockStamp, u64), IoError> {
        match self.read_with_retries(&self.data[drive_in_rg as usize], dbn) {
            Ok(v) => Ok(v),
            Err(IoError::Capacity { drive, dbn, blocks }) => {
                Err(IoError::Capacity { drive, dbn, blocks })
            }
            Err(_) => self.degraded_read(drive_in_rg, dbn),
        }
    }

    /// Serve a read of `drive_in_rg` by XOR of the surviving drives and
    /// parity (the degraded-mode path). The survivors are read as real,
    /// fault-injectable I/O.
    fn degraded_read(&self, drive_in_rg: u32, dbn: Dbn) -> Result<(BlockStamp, u64), IoError> {
        self.ensure_reconstructable(drive_in_rg)?;
        let mut x = 0u128;
        let mut max_ns = 0u64;
        for (i, d) in self.data.iter().enumerate() {
            if i as u32 == drive_in_rg {
                continue;
            }
            let (s, ns) = self
                .read_with_retries(d, dbn)
                .map_err(|_| IoError::Unrecoverable {
                    detail: "survivor read failed during reconstruction",
                })?;
            x ^= s;
            max_ns = max_ns.max(ns);
        }
        let (p, ns) =
            self.read_with_retries(&self.parity[0], dbn)
                .map_err(|_| IoError::Unrecoverable {
                    detail: "parity read failed during reconstruction",
                })?;
        x ^= p;
        max_ns = max_ns.max(ns);
        self.counters
            .reconstructed_reads
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .degraded_stripes
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(1, Ordering::Relaxed);
        Ok((x, max_ns))
    }

    /// Verify that parity equals the XOR of data blocks for every stripe in
    /// `[start, end)`, inspecting raw media (scrub is a maintenance path
    /// and bypasses fault injection).
    pub fn verify_parity(&self, start: u64, end: u64) -> Result<(), String> {
        for dbn in start..end {
            let mut x = 0u128;
            for d in &self.data {
                x ^= d.peek(Dbn(dbn));
            }
            for p in &self.parity {
                let got = p.peek(Dbn(dbn));
                if got != x {
                    return Err(format!(
                        "parity mismatch at rg {:?} dbn {dbn}: expected {x:#x}, got {got:#x}",
                        self.geom.id
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reconstruct a data block from the surviving drives + parity via
    /// raw media access (maintenance path: no fault injection, no
    /// statistics). This is what [`RaidGroup::rebuild_drive`] and the
    /// degraded read-modify-write fallback use.
    pub fn reconstruct(&self, failed_drive_in_rg: u32, dbn: Dbn) -> BlockStamp {
        let mut x = self.parity[0].peek(dbn);
        for (i, d) in self.data.iter().enumerate() {
            if i as u32 != failed_drive_in_rg {
                x ^= d.peek(dbn);
            }
        }
        x
    }

    /// Rebuild an offline data drive: reconstruct every block from
    /// parity + survivors onto the drive's media and return it to
    /// service. Returns the number of blocks rebuilt. After a rebuild,
    /// [`RaidGroup::verify_parity`] passes again.
    pub fn rebuild_drive(&self, drive_in_rg: u32) -> u64 {
        let blocks = self.geom.blocks_per_drive;
        let stamps: Vec<BlockStamp> = (0..blocks)
            .map(|dbn| self.reconstruct(drive_in_rg, Dbn(dbn)))
            .collect();
        let drive = &self.data[drive_in_rg as usize];
        drive.repair_write(Dbn(0), &stamps);
        drive.bring_online();
        // ordering: statistics counter; staleness is acceptable.
        self.counters
            .blocks_rebuilt
            .fetch_add(blocks, Ordering::Relaxed);
        blocks
    }

    /// Repair a single data block in place: reconstruct it from parity
    /// plus the surviving members (the degraded-read math applied as a
    /// maintenance write) and rewrite the home drive's media. Returns
    /// the reconstructed stamp now on media.
    pub fn repair_data_block(&self, drive_in_rg: u32, dbn: Dbn) -> BlockStamp {
        let stamp = self.reconstruct(drive_in_rg, dbn);
        self.data[drive_in_rg as usize].repair_write(dbn, &[stamp]);
        // ordering: statistics counter; staleness is acceptable.
        self.counters.blocks_rebuilt.fetch_add(1, Ordering::Relaxed);
        stamp
    }

    /// Recompute a single parity block from the data drives and rewrite
    /// it in place. Returns the recomputed parity stamp.
    pub fn repair_parity_block(&self, dbn: Dbn) -> BlockStamp {
        let stamp = self.data.iter().fold(0u128, |x, d| x ^ d.peek(dbn));
        self.parity[0].repair_write(dbn, &[stamp]);
        // ordering: statistics counter; staleness is acceptable.
        self.counters.blocks_rebuilt.fetch_add(1, Ordering::Relaxed);
        stamp
    }

    /// Recompute a parity drive's media from the data drives and return
    /// it to service. Returns the number of blocks rebuilt.
    pub fn rebuild_parity(&self, parity_index: usize) -> u64 {
        let blocks = self.geom.blocks_per_drive;
        let stamps: Vec<BlockStamp> = (0..blocks)
            .map(|dbn| self.data.iter().fold(0u128, |x, d| x ^ d.peek(Dbn(dbn))))
            .collect();
        let drive = &self.parity[parity_index];
        drive.repair_write(Dbn(0), &stamps);
        drive.bring_online();
        // ordering: statistics counter; staleness is acceptable.
        self.counters
            .blocks_rebuilt
            .fetch_add(blocks, Ordering::Relaxed);
        blocks
    }

    /// Rebuild every offline member of the group (data drives first,
    /// then parity). Returns total blocks rebuilt.
    pub fn rebuild_offline(&self) -> u64 {
        let mut rebuilt = 0;
        for i in self.offline_data_drives() {
            rebuilt += self.rebuild_drive(i);
        }
        for (i, p) in self.parity.iter().enumerate() {
            if p.is_offline() {
                rebuilt += self.rebuild_parity(i);
            }
        }
        rebuilt
    }
}

impl std::fmt::Debug for RaidGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaidGroup")
            .field("id", &self.geom.id)
            .field("width", &self.width())
            .field("parity_drives", &self.parity.len())
            .field("offline", &self.offline_data_drives())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::geometry::{GeometryBuilder, RaidGroupId};

    fn rg(width: u32) -> RaidGroup {
        let geo = GeometryBuilder::new()
            .aa_stripes(16)
            .raid_group(width, 1, 256)
            .build();
        RaidGroup::new(geo.raid_group(RaidGroupId(0)).clone(), DriveKind::Ssd)
    }

    #[test]
    fn full_stripe_needs_no_parity_reads() {
        let g = rg(3);
        let maps = vec![
            BTreeMap::from([(5u64, 0xa_u128)]),
            BTreeMap::from([(5u64, 0xb_u128)]),
            BTreeMap::from([(5u64, 0xc_u128)]),
        ];
        let (_, reads) = g.write(&maps).unwrap();
        assert_eq!(reads, 0);
        // ordering: test readback.
        assert_eq!(g.counters().full_stripe_writes.load(Ordering::Relaxed), 1);
        assert_eq!(
            // ordering: statistics counter; staleness is acceptable.
            g.counters().partial_stripe_writes.load(Ordering::Relaxed),
            0
        );
        g.verify_parity(5, 6).unwrap();
    }

    #[test]
    fn partial_stripe_reads_missing_blocks() {
        let g = rg(4);
        // Touch only 2 of 4 drives at dbn 9 → 2 parity reads.
        let maps = vec![
            BTreeMap::from([(9u64, 0x1_u128)]),
            BTreeMap::from([(9u64, 0x2_u128)]),
            BTreeMap::new(),
            BTreeMap::new(),
        ];
        let (_, reads) = g.write(&maps).unwrap();
        assert_eq!(reads, 2);
        assert_eq!(
            // ordering: statistics counter; staleness is acceptable.
            g.counters().partial_stripe_writes.load(Ordering::Relaxed),
            1
        );
        g.verify_parity(9, 10).unwrap();
    }

    #[test]
    fn parity_tracks_overwrites() {
        let g = rg(2);
        let w1 = vec![
            BTreeMap::from([(0u64, 0x11_u128)]),
            BTreeMap::from([(0u64, 0x22_u128)]),
        ];
        g.write(&w1).unwrap();
        // Overwrite one side (partial stripe → read the other).
        let w2 = vec![BTreeMap::from([(0u64, 0x33_u128)]), BTreeMap::new()];
        g.write(&w2).unwrap();
        g.verify_parity(0, 1).unwrap();
    }

    #[test]
    fn reconstruction_recovers_lost_block() {
        let g = rg(3);
        let maps = vec![
            BTreeMap::from([(7u64, 0xdead_u128)]),
            BTreeMap::from([(7u64, 0xbeef_u128)]),
            BTreeMap::from([(7u64, 0xf00d_u128)]),
        ];
        g.write(&maps).unwrap();
        assert_eq!(g.reconstruct(1, Dbn(7)), 0xbeef);
    }

    #[test]
    fn multi_stripe_write_counts_each_stripe() {
        let g = rg(2);
        let maps = vec![
            BTreeMap::from([(0u64, 1u128), (1, 2), (2, 3)]),
            BTreeMap::from([(0u64, 4u128), (1, 5)]), // stripe 2 is partial
        ];
        let (_, reads) = g.write(&maps).unwrap();
        // ordering: test readback.
        assert_eq!(g.counters().full_stripe_writes.load(Ordering::Relaxed), 2);
        assert_eq!(
            // ordering: statistics counter; staleness is acceptable.
            g.counters().partial_stripe_writes.load(Ordering::Relaxed),
            1
        );
        assert_eq!(reads, 1);
        g.verify_parity(0, 3).unwrap();
    }

    #[test]
    fn contiguous_runs_issue_one_drive_write() {
        let g = rg(1);
        let maps = vec![BTreeMap::from([(0u64, 1u128), (1, 2), (2, 3), (10, 4)])];
        g.write(&maps).unwrap();
        // 2 runs: [0..3) and [10..11).
        assert_eq!(g.data_drives()[0].stats().writes, 2);
        assert_eq!(g.data_drives()[0].stats().blocks_written, 4);
    }

    #[test]
    fn transient_errors_are_retried_to_success() {
        let g = rg(2);
        // ~30 % transient write errors: with 3 retries the probability of
        // a terminal failure per run is ~0.8 %, and the fixed seed below
        // is verified to complete without one.
        let spec = FaultSpec {
            seed: 1234,
            write_error_ppm: 300_000,
            ..FaultSpec::default()
        };
        let plan = Arc::new(FaultPlan::new(spec));
        for d in g.data_drives().iter().chain(g.parity_drives()) {
            d.set_fault_plan(Some(Arc::clone(&plan)));
        }
        for dbn in 0..32u64 {
            let maps = vec![
                BTreeMap::from([(dbn, crate::stamp(0, dbn, 1))]),
                BTreeMap::from([(dbn, crate::stamp(1, dbn, 1))]),
            ];
            g.write(&maps).unwrap();
        }
        assert!(
            // ordering: statistics counter; staleness is acceptable.
            g.counters().io_retries.load(Ordering::Relaxed) > 0,
            "expected retries at 30 % error rate"
        );
        assert!(g.offline_data_drives().is_empty());
        g.verify_parity(0, 32).unwrap();
    }

    #[test]
    fn failed_drive_degrades_then_rebuilds() {
        let g = rg(3);
        // Drive 1 dies after its first op.
        let plan = Arc::new(FaultPlan::new(FaultSpec::drive_failure(1, 1)));
        for d in g.data_drives().iter().chain(g.parity_drives()) {
            d.set_fault_plan(Some(Arc::clone(&plan)));
        }
        // First write succeeds everywhere.
        let w = |dbn: u64| {
            vec![
                BTreeMap::from([(dbn, crate::stamp(0, dbn, 1))]),
                BTreeMap::from([(dbn, crate::stamp(1, dbn, 1))]),
                BTreeMap::from([(dbn, crate::stamp(2, dbn, 1))]),
            ]
        };
        g.write(&w(0)).unwrap();
        // Second write hits the dead drive → degraded, not failed.
        g.write(&w(1)).unwrap();
        assert_eq!(g.offline_data_drives(), vec![1]);
        // ordering: test readback.
        assert!(g.counters().degraded_writes.load(Ordering::Relaxed) > 0);
        // Degraded read returns the *intended* stamp via reconstruction.
        let (s, _) = g.read_block(1, Dbn(1)).unwrap();
        assert_eq!(s, crate::stamp(1, 1, 1));
        // ordering: test readback.
        assert!(g.counters().reconstructed_reads.load(Ordering::Relaxed) > 0);
        // Raw media is stale, so the scrub fails while degraded...
        assert!(g.verify_parity(1, 2).is_err());
        // ...and passes again after a rebuild.
        assert_eq!(g.rebuild_drive(1), 256);
        assert!(g.offline_data_drives().is_empty());
        g.verify_parity(0, 2).unwrap();
        assert_eq!(g.read_block(1, Dbn(1)).unwrap().0, crate::stamp(1, 1, 1));
    }

    #[test]
    fn degraded_partial_stripe_write_reconstructs_old_values() {
        let g = rg(3);
        let full = vec![
            BTreeMap::from([(4u64, 0x10_u128)]),
            BTreeMap::from([(4u64, 0x20_u128)]),
            BTreeMap::from([(4u64, 0x30_u128)]),
        ];
        g.write(&full).unwrap();
        g.data_drives()[2].take_offline();
        // Partial write touching only drive 0: the untouched offline
        // drive 2 must contribute its (reconstructed) old value to parity.
        let partial = vec![
            BTreeMap::from([(4u64, 0x40_u128)]),
            BTreeMap::new(),
            BTreeMap::new(),
        ];
        g.write(&partial).unwrap();
        assert_eq!(g.read_block(2, Dbn(4)).unwrap().0, 0x30);
        assert_eq!(g.read_block(1, Dbn(4)).unwrap().0, 0x20);
        assert_eq!(g.read_block(0, Dbn(4)).unwrap().0, 0x40);
    }

    #[test]
    fn double_failure_is_unrecoverable() {
        let g = rg(3);
        let maps = vec![
            BTreeMap::from([(0u64, 1u128)]),
            BTreeMap::from([(0u64, 2u128)]),
            BTreeMap::from([(0u64, 3u128)]),
        ];
        g.write(&maps).unwrap();
        g.data_drives()[0].take_offline();
        g.data_drives()[1].take_offline();
        assert!(matches!(
            g.read_block(0, Dbn(0)),
            Err(IoError::Unrecoverable { .. })
        ));
    }
}
