//! Simulated drives: in-memory block media plus a service-time model.
//!
//! The paper's testbeds use all-SSD aggregates (Figs 4–7, 9) and a
//! SAS-HDD + SSD "Flash Pool" (Fig 8). We model a drive as:
//!
//! * a content store mapping DBN → [`crate::BlockStamp`], used
//!   by integrity tests (what you read is what was last written);
//! * a [`ServiceModel`] that converts an I/O (seek-or-not + blocks moved)
//!   into simulated nanoseconds, used by the discrete-event server model.
//!
//! Content is guarded by a per-drive `RwLock`. The write allocator already
//! guarantees single-writer access per drive region (a cleaner thread owns
//! a bucket's drive range exclusively, §IV-E), so this lock is uncontended
//! in practice; it exists to keep the substrate safe under arbitrary test
//! harnesses.

use crate::fault::{FaultDecision, FaultPlan, IoError, OpKind};
use crate::geometry::{Dbn, DriveId};
use crate::BlockStamp;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// The kind of media behind a simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveKind {
    /// Flash media: no positioning cost, low per-block cost.
    Ssd,
    /// Rotating SAS media: positioning cost on non-sequential access.
    Hdd,
}

/// Converts I/O shape into simulated service time (nanoseconds).
///
/// The constants are deliberately simple — the reproduction claims shape,
/// not absolute latency. Defaults approximate enterprise media circa 2017:
/// SSD ≈ 90 µs access + 10 µs per 4 KiB block; 10k-RPM SAS ≈ 6 ms seek +
/// 40 µs per block, with sequential follow-on writes skipping the seek.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed per-I/O cost (command overhead; seek+rotate for HDD random).
    pub access_ns: u64,
    /// Per-block transfer cost.
    pub per_block_ns: u64,
    /// Fixed cost when the I/O starts where the previous one ended
    /// (sequential). For SSDs this equals `access_ns`.
    pub sequential_access_ns: u64,
}

impl ServiceModel {
    /// The default model for a media kind.
    pub fn for_kind(kind: DriveKind) -> Self {
        match kind {
            DriveKind::Ssd => ServiceModel {
                access_ns: 90_000,
                per_block_ns: 10_000,
                sequential_access_ns: 90_000,
            },
            DriveKind::Hdd => ServiceModel {
                access_ns: 6_000_000,
                per_block_ns: 40_000,
                sequential_access_ns: 200_000,
            },
        }
    }

    /// Service time of an I/O touching `blocks` blocks.
    #[inline]
    pub fn service_ns(&self, blocks: u64, sequential: bool) -> u64 {
        let access = if sequential {
            self.sequential_access_ns
        } else {
            self.access_ns
        };
        access + blocks * self.per_block_ns
    }
}

/// A simulated drive: content store + counters + service model.
#[derive(Debug)]
pub struct Drive {
    id: DriveId,
    kind: DriveKind,
    model: ServiceModel,
    blocks: u64,
    content: RwLock<Vec<BlockStamp>>, // lock-rank: drive.content 76
    // Statistics (relaxed: monotone counters, read only for reporting).
    writes: AtomicU64,
    blocks_written: AtomicU64,
    reads: AtomicU64,
    blocks_read: AtomicU64,
    /// DBN just past the end of the last write, for sequentiality detection.
    last_write_end: AtomicU64,
    busy_ns: AtomicU64,
    // Fault machinery.
    /// Injected fault schedule, if any (None = perfect media).
    fault: RwLock<Option<Arc<FaultPlan>>>, // lock-rank: drive.fault 77
    /// Per-drive op ordinal feeding the fault plan's deterministic draws.
    op_counter: AtomicU64,
    /// Set when the drive has been taken out of service (whole-drive
    /// failure or exhausted-retry policy). Offline drives fail every I/O
    /// until [`Drive::bring_online`].
    offline: AtomicBool,
    /// Consecutive exhausted-retry failures (reset on success); the RAID
    /// layer's offlining policy reads this.
    consecutive_failures: AtomicU32,
}

impl Drive {
    /// Create a drive with `blocks` blocks of the given kind.
    pub fn new(id: DriveId, kind: DriveKind, blocks: u64) -> Self {
        Self {
            id,
            kind,
            model: ServiceModel::for_kind(kind),
            blocks,
            content: RwLock::new(vec![0; blocks as usize]),
            writes: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            last_write_end: AtomicU64::new(u64::MAX),
            busy_ns: AtomicU64::new(0),
            fault: RwLock::new(None),
            op_counter: AtomicU64::new(0),
            offline: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
        }
    }

    /// Drive id.
    #[inline]
    pub fn id(&self) -> DriveId {
        self.id
    }

    /// Media kind.
    #[inline]
    pub fn kind(&self) -> DriveKind {
        self.kind
    }

    /// Capacity in blocks.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Override the service model (used by the simulator's calibration).
    pub fn set_service_model(&mut self, model: ServiceModel) {
        self.model = model;
    }

    /// Install (or clear) the fault-injection schedule for this drive.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.write() = plan;
    }

    /// Is the drive out of service?
    #[inline]
    pub fn is_offline(&self) -> bool {
        // ordering: Acquire — pairs with the Release stores of the health
        // state; pairs-with: drive.health.
        self.offline.load(Ordering::Acquire)
    }

    /// Take the drive out of service; every subsequent I/O fails with
    /// [`IoError::DriveFailed`] until [`Drive::bring_online`].
    pub fn take_offline(&self) {
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.offline.store(true, Ordering::Release);
        // Losing a drive is the canonical post-mortem moment: arm the
        // flight recorder (lock-free; dumped at next service).
        obs::trigger(obs::Trigger::DriveOffline, self.id.0 as u64);
    }

    /// Return the drive to service (after a rebuild) and reset its
    /// failure streak.
    pub fn bring_online(&self) {
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.offline.store(false, Ordering::Release);
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.consecutive_failures.store(0, Ordering::Release);
    }

    /// Consecutive exhausted-retry failures since the last success.
    #[inline]
    pub fn consecutive_failures(&self) -> u32 {
        // ordering: Acquire — pairs with the Release stores of the health
        // state; pairs-with: drive.health.
        self.consecutive_failures.load(Ordering::Acquire)
    }

    /// Record one exhausted-retry failure; returns the new streak length.
    pub(crate) fn note_failure(&self) -> u32 {
        // ordering: AcqRel — the failure count and the offline decision it
        // feeds must not reorder; pairs-with: drive.health.
        self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Draw the fault decision for the next op of `kind`.
    fn decide(&self, kind: OpKind) -> FaultDecision {
        // ordering: statistics counter; staleness is acceptable.
        let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
        let decision = match &*self.fault.read() {
            Some(plan) => plan.decide(self.id, op, kind),
            None => FaultDecision::Ok,
        };
        // Fault taxonomy codes for the trace (see obs::EventKind::Fault).
        let code = match decision {
            FaultDecision::Ok => 0u64,
            FaultDecision::Slow { .. } => 1,
            FaultDecision::DriveFailed => 2,
            FaultDecision::TransientError => 3,
            FaultDecision::TornWrite => 4,
        };
        if code != 0 {
            obs::trace_instant!(obs::EventKind::Fault, code);
        }
        decision
    }

    /// Write a contiguous run of stamps starting at `start`. Returns the
    /// simulated service time, or the injected/structural error.
    pub fn write_run(&self, start: Dbn, stamps: &[BlockStamp]) -> Result<u64, IoError> {
        let end = start.0 + stamps.len() as u64;
        if end > self.blocks {
            return Err(IoError::Capacity {
                drive: self.id,
                dbn: start,
                blocks: stamps.len() as u64,
            });
        }
        if self.is_offline() {
            return Err(IoError::DriveFailed { drive: self.id });
        }
        let mut extra_ns = 0;
        match self.decide(OpKind::Write) {
            FaultDecision::Ok => {}
            FaultDecision::Slow { extra_ns: ns } => extra_ns = ns,
            FaultDecision::DriveFailed => {
                self.take_offline();
                return Err(IoError::DriveFailed { drive: self.id });
            }
            FaultDecision::TransientError => {
                return Err(IoError::Transient {
                    drive: self.id,
                    dbn: start,
                })
            }
            FaultDecision::TornWrite => {
                // Power-loss model: only a prefix of the run reaches
                // media, then the op reports failure. A successful retry
                // rewrites the full run, restoring consistency.
                let torn = stamps.len() / 2;
                let mut c = self.content.write();
                c[start.0 as usize..start.0 as usize + torn].copy_from_slice(&stamps[..torn]);
                return Err(IoError::Transient {
                    drive: self.id,
                    dbn: start,
                });
            }
        }
        {
            let mut c = self.content.write();
            c[start.0 as usize..end as usize].copy_from_slice(stamps);
        }
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.consecutive_failures.store(0, Ordering::Release);
        // ordering: statistics counter; staleness is acceptable.
        let sequential = self.last_write_end.swap(end, Ordering::Relaxed) == start.0;
        // ordering: statistics counter; staleness is acceptable.
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.blocks_written
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(stamps.len() as u64, Ordering::Relaxed);
        let ns = self.model.service_ns(stamps.len() as u64, sequential) + extra_ns;
        // ordering: statistics counter; staleness is acceptable.
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        Ok(ns)
    }

    /// Read one block's stamp. Returns `(stamp, service_ns)` or an error.
    pub fn read_block(&self, dbn: Dbn) -> Result<(BlockStamp, u64), IoError> {
        if dbn.0 >= self.blocks {
            return Err(IoError::Capacity {
                drive: self.id,
                dbn,
                blocks: 1,
            });
        }
        if self.is_offline() {
            return Err(IoError::DriveFailed { drive: self.id });
        }
        let mut extra_ns = 0;
        match self.decide(OpKind::Read) {
            FaultDecision::Ok | FaultDecision::TornWrite => {}
            FaultDecision::Slow { extra_ns: ns } => extra_ns = ns,
            FaultDecision::DriveFailed => {
                self.take_offline();
                return Err(IoError::DriveFailed { drive: self.id });
            }
            FaultDecision::TransientError => {
                return Err(IoError::Transient {
                    drive: self.id,
                    dbn,
                })
            }
        }
        let stamp = self.content.read()[dbn.0 as usize];
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.consecutive_failures.store(0, Ordering::Release);
        // ordering: statistics counter; staleness is acceptable.
        self.reads.fetch_add(1, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        let ns = self.model.service_ns(1, false) + extra_ns;
        // ordering: statistics counter; staleness is acceptable.
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        Ok((stamp, ns))
    }

    /// Read a contiguous run of stamps (e.g., parity reconstruction).
    pub fn read_run(&self, start: Dbn, len: u64) -> Result<(Vec<BlockStamp>, u64), IoError> {
        let end = start.0 + len;
        if end > self.blocks {
            return Err(IoError::Capacity {
                drive: self.id,
                dbn: start,
                blocks: len,
            });
        }
        if self.is_offline() {
            return Err(IoError::DriveFailed { drive: self.id });
        }
        let mut extra_ns = 0;
        match self.decide(OpKind::Read) {
            FaultDecision::Ok | FaultDecision::TornWrite => {}
            FaultDecision::Slow { extra_ns: ns } => extra_ns = ns,
            FaultDecision::DriveFailed => {
                self.take_offline();
                return Err(IoError::DriveFailed { drive: self.id });
            }
            FaultDecision::TransientError => {
                return Err(IoError::Transient {
                    drive: self.id,
                    dbn: start,
                })
            }
        }
        let out = self.content.read()[start.0 as usize..end as usize].to_vec();
        // ordering: Release — publishes the health-state transition;
        // pairs-with: drive.health.
        self.consecutive_failures.store(0, Ordering::Release);
        // ordering: statistics counter; staleness is acceptable.
        self.reads.fetch_add(1, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        self.blocks_read.fetch_add(len, Ordering::Relaxed);
        let ns = self.model.service_ns(len, false) + extra_ns;
        // ordering: statistics counter; staleness is acceptable.
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        Ok((out, ns))
    }

    /// Raw media peek for maintenance paths (scrub, reconstruction,
    /// rebuild). Bypasses fault injection and statistics: it models the
    /// RAID layer's privileged access to whatever is physically on the
    /// platters, not a client I/O.
    ///
    /// # Panics
    /// Panics if `dbn` is out of range (maintenance callers iterate the
    /// geometry, so a violation is a programming error).
    #[inline]
    pub fn peek(&self, dbn: Dbn) -> BlockStamp {
        self.content.read()[dbn.0 as usize]
    }

    /// Raw media write for maintenance paths (drive rebuild). Bypasses
    /// fault injection, statistics, and the offline gate.
    ///
    /// # Panics
    /// Panics if the run exceeds the drive capacity.
    pub fn repair_write(&self, start: Dbn, stamps: &[BlockStamp]) {
        let end = start.0 + stamps.len() as u64;
        assert!(end <= self.blocks, "repair write beyond drive capacity");
        let mut c = self.content.write();
        c[start.0 as usize..end as usize].copy_from_slice(stamps);
    }

    /// Snapshot of the drive's statistics.
    pub fn stats(&self) -> DriveStats {
        DriveStats {
            // ordering: statistics counter; staleness is acceptable.
            writes: self.writes.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            reads: self.reads.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time drive statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriveStats {
    /// Number of write I/Os.
    pub writes: u64,
    /// Total blocks written.
    pub blocks_written: u64,
    /// Number of read I/Os.
    pub reads: u64,
    /// Total blocks read.
    pub blocks_read: u64,
    /// Accumulated simulated busy time.
    pub busy_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 128);
        d.write_run(Dbn(10), &[11, 12, 13]).unwrap();
        assert_eq!(d.read_block(Dbn(10)).unwrap().0, 11);
        assert_eq!(d.read_block(Dbn(12)).unwrap().0, 13);
        assert_eq!(
            d.read_block(Dbn(13)).unwrap().0,
            0,
            "unwritten block reads zero"
        );
    }

    #[test]
    fn sequential_writes_detected_for_hdd() {
        let d = Drive::new(DriveId(0), DriveKind::Hdd, 1024);
        let first = d.write_run(Dbn(0), &[1; 8]).unwrap();
        let seq = d.write_run(Dbn(8), &[2; 8]).unwrap();
        let rand = d.write_run(Dbn(500), &[3; 8]).unwrap();
        assert!(seq < first, "sequential follow-on skips the seek");
        assert!(rand > seq, "random write pays the seek again");
    }

    #[test]
    fn ssd_has_no_seek_penalty() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 1024);
        d.write_run(Dbn(0), &[1; 8]).unwrap();
        let seq = d.write_run(Dbn(8), &[2; 8]).unwrap();
        let rand = d.write_run(Dbn(500), &[3; 8]).unwrap();
        assert_eq!(seq, rand);
    }

    #[test]
    fn stats_accumulate() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 64);
        d.write_run(Dbn(0), &[1, 2]).unwrap();
        d.write_run(Dbn(2), &[3]).unwrap();
        d.read_block(Dbn(0)).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.blocks_written, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.blocks_read, 1);
        assert!(s.busy_ns > 0);
    }

    #[test]
    fn overflow_write_errors() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 4);
        assert_eq!(
            d.write_run(Dbn(3), &[1, 2]),
            Err(IoError::Capacity {
                drive: DriveId(0),
                dbn: Dbn(3),
                blocks: 2,
            })
        );
        assert!(matches!(
            d.read_block(Dbn(4)),
            Err(IoError::Capacity { .. })
        ));
    }

    #[test]
    fn offline_drive_fails_every_io_until_rebuilt() {
        let d = Drive::new(DriveId(5), DriveKind::Ssd, 16);
        d.write_run(Dbn(0), &[7]).unwrap();
        d.take_offline();
        assert_eq!(
            d.write_run(Dbn(1), &[8]),
            Err(IoError::DriveFailed { drive: DriveId(5) })
        );
        assert_eq!(
            d.read_block(Dbn(0)),
            Err(IoError::DriveFailed { drive: DriveId(5) })
        );
        // Maintenance access still sees the media.
        assert_eq!(d.peek(Dbn(0)), 7);
        d.repair_write(Dbn(1), &[8]);
        d.bring_online();
        assert_eq!(d.read_block(Dbn(1)).unwrap().0, 8);
    }

    #[test]
    fn injected_drive_failure_takes_drive_offline() {
        use crate::fault::{FaultPlan, FaultSpec};
        let d = Drive::new(DriveId(2), DriveKind::Ssd, 16);
        d.set_fault_plan(Some(Arc::new(FaultPlan::new(FaultSpec::drive_failure(
            2, 1,
        )))));
        d.write_run(Dbn(0), &[1]).unwrap(); // op 0 precedes the failure
        assert!(matches!(
            d.write_run(Dbn(1), &[2]),
            Err(IoError::DriveFailed { .. })
        ));
        assert!(d.is_offline());
    }

    #[test]
    fn torn_write_persists_prefix_and_errors() {
        use crate::fault::{FaultPlan, FaultSpec};
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 64);
        let spec = FaultSpec {
            seed: 11,
            torn_write_ppm: 1_000_000, // every write tears
            ..FaultSpec::default()
        };
        d.set_fault_plan(Some(Arc::new(FaultPlan::new(spec))));
        let err = d.write_run(Dbn(0), &[1, 2, 3, 4]).unwrap_err();
        assert!(matches!(err, IoError::Transient { .. }));
        assert_eq!(d.peek(Dbn(0)), 1, "prefix reached media");
        assert_eq!(d.peek(Dbn(2)), 0, "tail lost");
        // Clearing the plan and retrying rewrites the full run.
        d.set_fault_plan(None);
        d.write_run(Dbn(0), &[1, 2, 3, 4]).unwrap();
        assert_eq!(d.peek(Dbn(3)), 4);
    }

    #[test]
    fn latency_spike_charges_extra_service_time() {
        use crate::fault::{FaultPlan, FaultSpec};
        let quiet = Drive::new(DriveId(0), DriveKind::Ssd, 64);
        let base = quiet.write_run(Dbn(0), &[1]).unwrap();
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 64);
        let spec = FaultSpec {
            seed: 3,
            latency_spike_ppm: 1_000_000,
            latency_spike_ns: 5_000_000,
            ..FaultSpec::default()
        };
        d.set_fault_plan(Some(Arc::new(FaultPlan::new(spec))));
        let spiked = d.write_run(Dbn(0), &[1]).unwrap();
        assert_eq!(spiked, base + 5_000_000);
    }

    #[test]
    fn service_model_costs() {
        let m = ServiceModel::for_kind(DriveKind::Hdd);
        assert!(m.service_ns(64, true) < m.service_ns(64, false));
        let s = ServiceModel::for_kind(DriveKind::Ssd);
        assert_eq!(s.service_ns(1, true), s.service_ns(1, false));
    }
}
