//! Simulated drives: in-memory block media plus a service-time model.
//!
//! The paper's testbeds use all-SSD aggregates (Figs 4–7, 9) and a
//! SAS-HDD + SSD "Flash Pool" (Fig 8). We model a drive as:
//!
//! * a content store mapping DBN → [`crate::BlockStamp`], used
//!   by integrity tests (what you read is what was last written);
//! * a [`ServiceModel`] that converts an I/O (seek-or-not + blocks moved)
//!   into simulated nanoseconds, used by the discrete-event server model.
//!
//! Content is guarded by a per-drive `RwLock`. The write allocator already
//! guarantees single-writer access per drive region (a cleaner thread owns
//! a bucket's drive range exclusively, §IV-E), so this lock is uncontended
//! in practice; it exists to keep the substrate safe under arbitrary test
//! harnesses.

use crate::geometry::{Dbn, DriveId};
use crate::BlockStamp;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// The kind of media behind a simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveKind {
    /// Flash media: no positioning cost, low per-block cost.
    Ssd,
    /// Rotating SAS media: positioning cost on non-sequential access.
    Hdd,
}

/// Converts I/O shape into simulated service time (nanoseconds).
///
/// The constants are deliberately simple — the reproduction claims shape,
/// not absolute latency. Defaults approximate enterprise media circa 2017:
/// SSD ≈ 90 µs access + 10 µs per 4 KiB block; 10k-RPM SAS ≈ 6 ms seek +
/// 40 µs per block, with sequential follow-on writes skipping the seek.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed per-I/O cost (command overhead; seek+rotate for HDD random).
    pub access_ns: u64,
    /// Per-block transfer cost.
    pub per_block_ns: u64,
    /// Fixed cost when the I/O starts where the previous one ended
    /// (sequential). For SSDs this equals `access_ns`.
    pub sequential_access_ns: u64,
}

impl ServiceModel {
    /// The default model for a media kind.
    pub fn for_kind(kind: DriveKind) -> Self {
        match kind {
            DriveKind::Ssd => ServiceModel {
                access_ns: 90_000,
                per_block_ns: 10_000,
                sequential_access_ns: 90_000,
            },
            DriveKind::Hdd => ServiceModel {
                access_ns: 6_000_000,
                per_block_ns: 40_000,
                sequential_access_ns: 200_000,
            },
        }
    }

    /// Service time of an I/O touching `blocks` blocks.
    #[inline]
    pub fn service_ns(&self, blocks: u64, sequential: bool) -> u64 {
        let access = if sequential {
            self.sequential_access_ns
        } else {
            self.access_ns
        };
        access + blocks * self.per_block_ns
    }
}

/// A simulated drive: content store + counters + service model.
#[derive(Debug)]
pub struct Drive {
    id: DriveId,
    kind: DriveKind,
    model: ServiceModel,
    blocks: u64,
    content: RwLock<Vec<BlockStamp>>,
    // Statistics (relaxed: monotone counters, read only for reporting).
    writes: AtomicU64,
    blocks_written: AtomicU64,
    reads: AtomicU64,
    blocks_read: AtomicU64,
    /// DBN just past the end of the last write, for sequentiality detection.
    last_write_end: AtomicU64,
    busy_ns: AtomicU64,
}

impl Drive {
    /// Create a drive with `blocks` blocks of the given kind.
    pub fn new(id: DriveId, kind: DriveKind, blocks: u64) -> Self {
        Self {
            id,
            kind,
            model: ServiceModel::for_kind(kind),
            blocks,
            content: RwLock::new(vec![0; blocks as usize]),
            writes: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            blocks_read: AtomicU64::new(0),
            last_write_end: AtomicU64::new(u64::MAX),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// Drive id.
    #[inline]
    pub fn id(&self) -> DriveId {
        self.id
    }

    /// Media kind.
    #[inline]
    pub fn kind(&self) -> DriveKind {
        self.kind
    }

    /// Capacity in blocks.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Override the service model (used by the simulator's calibration).
    pub fn set_service_model(&mut self, model: ServiceModel) {
        self.model = model;
    }

    /// Write a contiguous run of stamps starting at `start`. Returns the
    /// simulated service time.
    ///
    /// # Panics
    /// Panics if the run exceeds the drive capacity.
    pub fn write_run(&self, start: Dbn, stamps: &[BlockStamp]) -> u64 {
        let end = start.0 + stamps.len() as u64;
        assert!(end <= self.blocks, "write beyond drive capacity");
        {
            let mut c = self.content.write();
            c[start.0 as usize..end as usize].copy_from_slice(stamps);
        }
        let sequential = self.last_write_end.swap(end, Ordering::Relaxed) == start.0;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.blocks_written
            .fetch_add(stamps.len() as u64, Ordering::Relaxed);
        let ns = self.model.service_ns(stamps.len() as u64, sequential);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        ns
    }

    /// Read one block's stamp. Returns `(stamp, service_ns)`.
    pub fn read_block(&self, dbn: Dbn) -> (BlockStamp, u64) {
        assert!(dbn.0 < self.blocks, "read beyond drive capacity");
        let stamp = self.content.read()[dbn.0 as usize];
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        let ns = self.model.service_ns(1, false);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        (stamp, ns)
    }

    /// Read a contiguous run of stamps (e.g., parity reconstruction).
    pub fn read_run(&self, start: Dbn, len: u64) -> (Vec<BlockStamp>, u64) {
        let end = start.0 + len;
        assert!(end <= self.blocks, "read beyond drive capacity");
        let out = self.content.read()[start.0 as usize..end as usize].to_vec();
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.blocks_read.fetch_add(len, Ordering::Relaxed);
        let ns = self.model.service_ns(len, false);
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        (out, ns)
    }

    /// Snapshot of the drive's statistics.
    pub fn stats(&self) -> DriveStats {
        DriveStats {
            writes: self.writes.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time drive statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriveStats {
    /// Number of write I/Os.
    pub writes: u64,
    /// Total blocks written.
    pub blocks_written: u64,
    /// Number of read I/Os.
    pub reads: u64,
    /// Total blocks read.
    pub blocks_read: u64,
    /// Accumulated simulated busy time.
    pub busy_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 128);
        d.write_run(Dbn(10), &[11, 12, 13]);
        assert_eq!(d.read_block(Dbn(10)).0, 11);
        assert_eq!(d.read_block(Dbn(12)).0, 13);
        assert_eq!(d.read_block(Dbn(13)).0, 0, "unwritten block reads zero");
    }

    #[test]
    fn sequential_writes_detected_for_hdd() {
        let d = Drive::new(DriveId(0), DriveKind::Hdd, 1024);
        let first = d.write_run(Dbn(0), &[1; 8]);
        let seq = d.write_run(Dbn(8), &[2; 8]);
        let rand = d.write_run(Dbn(500), &[3; 8]);
        assert!(seq < first, "sequential follow-on skips the seek");
        assert!(rand > seq, "random write pays the seek again");
    }

    #[test]
    fn ssd_has_no_seek_penalty() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 1024);
        d.write_run(Dbn(0), &[1; 8]);
        let seq = d.write_run(Dbn(8), &[2; 8]);
        let rand = d.write_run(Dbn(500), &[3; 8]);
        assert_eq!(seq, rand);
    }

    #[test]
    fn stats_accumulate() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 64);
        d.write_run(Dbn(0), &[1, 2]);
        d.write_run(Dbn(2), &[3]);
        d.read_block(Dbn(0));
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.blocks_written, 3);
        assert_eq!(s.reads, 1);
        assert_eq!(s.blocks_read, 1);
        assert!(s.busy_ns > 0);
    }

    #[test]
    #[should_panic(expected = "beyond drive capacity")]
    fn overflow_write_panics() {
        let d = Drive::new(DriveId(0), DriveKind::Ssd, 4);
        d.write_run(Dbn(3), &[1, 2]);
    }

    #[test]
    fn service_model_costs() {
        let m = ServiceModel::for_kind(DriveKind::Hdd);
        assert!(m.service_ns(64, true) < m.service_ns(64, false));
        let s = ServiceModel::for_kind(DriveKind::Ssd);
        assert_eq!(s.service_ns(1, true), s.service_ns(1, false));
    }
}
