//! # wafl-blockdev — simulated storage substrate
//!
//! This crate models the persistent-storage layer beneath the WAFL file
//! system as described in *Scalable Write Allocation in the WAFL File
//! System* (ICPP 2017):
//!
//! * an **aggregate** is a shared pool of storage made of **RAID groups**,
//!   each with one or more **parity drives** (§II-B of the paper);
//! * storage is exposed as an addressable space of fixed-size blocks; a
//!   block in the aggregate is addressed by its **volume block number
//!   (VBN)** (§II-B);
//! * a **stripe** is a set of blocks belonging to the data drives of a RAID
//!   group, one per drive, sharing the same parity block (§IV-D);
//! * an **Allocation Area (AA)** is a contiguous set of stripes (§IV-D);
//! * a **tetris** — built by the `alligator` crate on top of this one —
//!   is a contiguous collection of stripes sent to RAID as a single write
//!   I/O (§IV-E).
//!
//! The crate provides:
//!
//! * [`geometry::AggregateGeometry`] — the VBN ↔ (RAID group, drive, DBN)
//!   mapping and stripe/AA arithmetic;
//! * [`drive`] — per-drive simulated media with content verification and a
//!   service-time model (SSD vs HDD), standing in for the paper's all-SSD
//!   and Flash Pool testbeds;
//! * [`raid`] — parity accounting that distinguishes **full-stripe writes**
//!   (no parity reads, the write allocator's objective 1) from
//!   read-modify-write partial-stripe writes;
//! * [`io`] — the write-I/O engine with counters that the benchmarks use to
//!   check layout quality (full-stripe ratio, per-drive balance).
//!
//! Everything is deterministic and in-memory: block payloads are 128-bit
//! stamps rather than 4 KiB buffers, which lets integration tests verify
//! end-to-end data integrity (crash + replay, CP atomicity) cheaply.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aio;
pub mod drive;
pub mod fault;
pub mod geometry;
pub mod io;
pub mod raid;
pub mod sync;

pub use aio::{AioEngine, Completion, CompletionRing, DiskKind, FileBackend, IoTicket, SyncPolicy};
pub use drive::{Drive, DriveKind, ServiceModel};
pub use fault::{FaultDecision, FaultPlan, FaultSpec, IoError, OpKind, RetryPolicy};
pub use geometry::{
    AaId, AggregateGeometry, BlockLoc, Dbn, DriveId, GeometryBuilder, RaidGroupGeometry,
    RaidGroupId, StripeId, Vbn, BLOCK_SIZE,
};
pub use io::{FaultSnapshot, IoCounters, IoEngine, IoResult, WriteIo, WriteSegment};
pub use raid::{ParityModel, RaidGroup};

/// A 128-bit block payload stamp.
///
/// Real WAFL writes 4 KiB blocks; this simulation reduces each block's
/// payload to a 16-byte stamp (typically a hash of `(file, fbn, cp)`), so
/// integrity can be verified end-to-end without carrying page-sized buffers
/// through the allocator. Stamp `0` means "never written".
pub type BlockStamp = u128;

/// Produce a deterministic block stamp from a `(file, fbn, generation)`
/// triple. Uses the SplitMix64 finalizer on each component so that distinct
/// triples virtually never collide and stamp `0` is never produced for a
/// real write.
#[inline]
pub fn stamp(file: u64, fbn: u64, generation: u64) -> BlockStamp {
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let hi = mix(file ^ mix(generation));
    let lo = mix(fbn ^ mix(file.rotate_left(17)) ^ generation.wrapping_mul(0x2545_f491_4f6c_dd1d));
    let s = ((hi as u128) << 64) | lo as u128;
    // Reserve 0 for "unwritten".
    if s == 0 {
        1
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_is_deterministic() {
        assert_eq!(stamp(1, 2, 3), stamp(1, 2, 3));
    }

    #[test]
    fn stamp_distinguishes_components() {
        let base = stamp(1, 2, 3);
        assert_ne!(base, stamp(2, 2, 3));
        assert_ne!(base, stamp(1, 3, 3));
        assert_ne!(base, stamp(1, 2, 4));
    }

    #[test]
    fn stamp_never_zero() {
        for f in 0..50 {
            for b in 0..50 {
                assert_ne!(stamp(f, b, 0), 0);
            }
        }
    }
}
