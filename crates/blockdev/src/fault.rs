//! Deterministic fault injection for the simulated storage substrate.
//!
//! Real WAFL runs on media that fails: drives return transient errors,
//! exhibit latency spikes, tear writes across power loss, and die
//! outright. The write-allocation paper takes RAID reconstruction and
//! NVLog replay for granted (§II-A/§II-B); this module supplies the
//! failure model that lets the reproduction exercise those paths.
//!
//! A [`FaultPlan`] is shared by every drive of an aggregate and decides,
//! per drive I/O, whether to inject a fault. Decisions are derived by
//! hashing `(seed, drive id, per-drive op ordinal, op kind)` through the
//! SplitMix64 finalizer, so a given seed produces the *same* fault
//! sequence per drive regardless of thread interleaving — crucial for
//! reproducing a failure found in a parallel test.
//!
//! Fault kinds (configured in [`FaultSpec`], rates in parts-per-million):
//!
//! * **transient errors** — the op fails; a retry (fresh ordinal) redraws;
//! * **latency spikes** — the op succeeds but costs extra service time;
//! * **torn writes** — a prefix of the run reaches media, then the op
//!   fails (models power loss mid-write);
//! * **whole-drive failure** — after a configured number of ops, one
//!   drive fails every subsequent I/O until rebuilt.
//!
//! [`RetryPolicy`] is the recovery half: bounded retries with exponential
//! backoff, and a consecutive-failure threshold after which the RAID
//! layer takes the drive offline and serves it degraded.

use crate::geometry::{Dbn, DriveId, Vbn};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed storage I/O error.
///
/// Replaces the panics the substrate used to reserve for programming
/// errors: address-range and capacity violations are now reported to the
/// caller, and injected media faults are first-class values that the
/// retry/degraded-mode machinery can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// A VBN outside the aggregate's address space.
    OutOfRange {
        /// The offending VBN.
        vbn: Vbn,
        /// Total VBNs in the aggregate.
        total: u64,
    },
    /// A DBN run extending past the end of a drive.
    Capacity {
        /// The drive addressed.
        drive: DriveId,
        /// First DBN of the run.
        dbn: Dbn,
        /// Length of the run in blocks.
        blocks: u64,
    },
    /// The drive has failed (injected whole-drive failure or taken
    /// offline after repeated errors). Persistent until rebuilt.
    DriveFailed {
        /// The failed drive.
        drive: DriveId,
    },
    /// A transient media error; the same op may succeed on retry.
    Transient {
        /// The drive that errored.
        drive: DriveId,
        /// First DBN of the failed op.
        dbn: Dbn,
    },
    /// Data loss the RAID layer cannot reconstruct (e.g. a second drive
    /// failure in a single-parity group).
    Unrecoverable {
        /// The RAID-group-relative description of what was lost.
        detail: &'static str,
    },
    /// A storage target the backend recognizes but does not implement
    /// yet (e.g. a raw block device behind the `DiskKind` probe).
    NotYetSupported {
        /// What was asked for and why it is rejected.
        detail: &'static str,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfRange { vbn, total } => {
                write!(f, "VBN {} out of aggregate range (total {})", vbn.0, total)
            }
            IoError::Capacity { drive, dbn, blocks } => write!(
                f,
                "I/O of {} block(s) at DBN {} beyond capacity of drive {}",
                blocks, dbn.0, drive.0
            ),
            IoError::DriveFailed { drive } => write!(f, "drive {} failed", drive.0),
            IoError::Transient { drive, dbn } => {
                write!(
                    f,
                    "transient I/O error on drive {} at DBN {}",
                    drive.0, dbn.0
                )
            }
            IoError::Unrecoverable { detail } => {
                write!(f, "unrecoverable data loss: {detail}")
            }
            IoError::NotYetSupported { detail } => {
                write!(f, "not yet supported: {detail}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Configuration for a [`FaultPlan`]. All rates are in parts-per-million
/// of drive ops; the default spec injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Transient read-error rate (ppm).
    pub read_error_ppm: u32,
    /// Transient write-error rate (ppm).
    pub write_error_ppm: u32,
    /// Torn-write rate (ppm): a prefix persists, then the op errors.
    pub torn_write_ppm: u32,
    /// Latency-spike rate (ppm).
    pub latency_spike_ppm: u32,
    /// Extra service time charged by a latency spike.
    pub latency_spike_ns: u64,
    /// Aggregate-wide id of a drive that fails outright, if any.
    pub fail_drive: Option<u32>,
    /// The failing drive's op ordinal at which it dies (0 = dead on
    /// arrival).
    pub fail_drive_after_ops: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            read_error_ppm: 0,
            write_error_ppm: 0,
            torn_write_ppm: 0,
            latency_spike_ppm: 0,
            latency_spike_ns: 2_000_000,
            fail_drive: None,
            fail_drive_after_ops: 0,
        }
    }
}

impl FaultSpec {
    /// A spec that only fails one whole drive after `after_ops` ops.
    pub fn drive_failure(drive: u32, after_ops: u64) -> Self {
        Self {
            fail_drive: Some(drive),
            fail_drive_after_ops: after_ops,
            ..Self::default()
        }
    }
}

/// What the plan decided for one drive op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Ok,
    /// Proceed, but charge `extra_ns` more service time.
    Slow {
        /// Additional service time.
        extra_ns: u64,
    },
    /// Fail with a transient error (retryable).
    TransientError,
    /// Persist a prefix of the run, then fail (write ops only).
    TornWrite,
    /// The drive is dead; fail persistently.
    DriveFailed,
}

/// The kind of drive op being decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A media read.
    Read,
    /// A media write.
    Write,
}

/// A seeded, deterministic fault schedule shared by an aggregate's drives.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
}

/// SplitMix64 finalizer (same mixer the block-stamp generator uses).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Build a plan from a spec.
    pub fn new(spec: FaultSpec) -> Self {
        Self { spec }
    }

    /// The configuration this plan was built from.
    #[inline]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decide the fate of op number `op` (a per-drive ordinal) on `drive`.
    ///
    /// Pure function of `(seed, drive, op, kind)`: the same arguments
    /// always yield the same decision.
    pub fn decide(&self, drive: DriveId, op: u64, kind: OpKind) -> FaultDecision {
        let s = &self.spec;
        if s.fail_drive == Some(drive.0) && op >= s.fail_drive_after_ops {
            return FaultDecision::DriveFailed;
        }
        let kind_salt = match kind {
            OpKind::Read => 0x52,
            OpKind::Write => 0x57,
        };
        let h = mix(s.seed ^ mix(drive.0 as u64 ^ 0xD21F) ^ mix(op ^ kind_salt));
        // Partition one draw into disjoint ppm bands so the rates are
        // additive and a single op triggers at most one fault.
        let draw = (h % 1_000_000) as u32;
        let (err_ppm, torn_ppm) = match kind {
            OpKind::Read => (s.read_error_ppm, 0),
            OpKind::Write => (s.write_error_ppm, s.torn_write_ppm),
        };
        if draw < err_ppm {
            return FaultDecision::TransientError;
        }
        if draw < err_ppm + torn_ppm {
            return FaultDecision::TornWrite;
        }
        if draw < err_ppm + torn_ppm + s.latency_spike_ppm {
            return FaultDecision::Slow {
                extra_ns: s.latency_spike_ns,
            };
        }
        FaultDecision::Ok
    }
}

/// Bounded-retry and drive-offlining policy applied where drive I/O is
/// issued (the RAID layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so a transient op is tried
    /// `max_retries + 1` times in total).
    pub max_retries: u32,
    /// Backoff charged to service time: `backoff_base_ns << attempt`.
    pub backoff_base_ns: u64,
    /// Consecutive exhausted-retry failures after which the drive is
    /// taken offline and served via reconstruction.
    pub offline_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ns: 50_000,
            offline_after: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::new(FaultSpec {
            seed: 42,
            read_error_ppm: 200_000,
            write_error_ppm: 200_000,
            torn_write_ppm: 100_000,
            latency_spike_ppm: 100_000,
            ..FaultSpec::default()
        });
        for op in 0..500 {
            let a = p.decide(DriveId(3), op, OpKind::Write);
            let b = p.decide(DriveId(3), op, OpKind::Write);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let p = FaultPlan::new(FaultSpec {
            seed: 7,
            write_error_ppm: 250_000, // 25 %
            ..FaultSpec::default()
        });
        let n = 10_000;
        let errs = (0..n)
            .filter(|&op| p.decide(DriveId(0), op, OpKind::Write) == FaultDecision::TransientError)
            .count();
        let frac = errs as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "got {frac}");
    }

    #[test]
    fn reads_and_writes_draw_independent_streams() {
        let p = FaultPlan::new(FaultSpec {
            seed: 9,
            read_error_ppm: 500_000,
            write_error_ppm: 500_000,
            ..FaultSpec::default()
        });
        let differs = (0..200).any(|op| {
            p.decide(DriveId(1), op, OpKind::Read) != p.decide(DriveId(1), op, OpKind::Write)
        });
        assert!(differs, "read and write streams should not be identical");
    }

    #[test]
    fn whole_drive_failure_is_persistent_and_targeted() {
        let p = FaultPlan::new(FaultSpec::drive_failure(2, 10));
        assert_eq!(p.decide(DriveId(2), 9, OpKind::Write), FaultDecision::Ok);
        for op in 10..20 {
            assert_eq!(
                p.decide(DriveId(2), op, OpKind::Read),
                FaultDecision::DriveFailed
            );
        }
        assert_eq!(p.decide(DriveId(1), 500, OpKind::Write), FaultDecision::Ok);
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Transient {
            drive: DriveId(4),
            dbn: Dbn(17),
        };
        assert!(e.to_string().contains("drive 4"));
        let e = IoError::OutOfRange {
            vbn: Vbn(99),
            total: 50,
        };
        assert!(e.to_string().contains("out of aggregate range"));
    }
}
