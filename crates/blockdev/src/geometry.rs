//! Aggregate geometry: the VBN number space and its mapping onto RAID
//! groups, drives, stripes, and Allocation Areas.
//!
//! The paper (§II-B) describes an aggregate as a set of RAID groups, each
//! with one or more parity drives. Blocks are addressed by **VBN**.
//! White Alligator needs three pieces of address arithmetic (§IV-C/D):
//!
//! 1. a **bucket** is "a set of contiguous VBNs on each drive", so the VBN
//!    space must be laid out *drive-major*: every data drive owns one
//!    contiguous VBN range. Consecutive VBNs on the same drive are then
//!    physically consecutive disk blocks (DBNs);
//! 2. a **stripe** is one block per data drive of a RAID group at the same
//!    DBN, sharing a parity block;
//! 3. an **Allocation Area** is a contiguous run of stripes (equivalently,
//!    for each drive, a contiguous run of `aa_stripes` DBNs).
//!
//! Parity drives carry no VBNs: they are not client-addressable.

use crate::fault::IoError;
use serde::{Deserialize, Serialize};

/// Fixed simulated block size in bytes (WAFL uses 4 KiB blocks).
pub const BLOCK_SIZE: usize = 4096;

/// A volume block number: the aggregate-wide physical block address.
///
/// `Vbn(0)` is valid; callers that need a sentinel use `Option<Vbn>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Vbn(pub u64);

/// A disk block number: the block offset within a single drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dbn(pub u64);

/// Aggregate-wide drive index (data drives only; parity drives are
/// addressed through their RAID group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DriveId(pub u32);

/// RAID group index within the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RaidGroupId(pub u32);

/// A stripe within a RAID group: all data blocks at DBN `stripe.0` across
/// the group's data drives plus the parity block(s) at the same DBN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StripeId {
    /// Owning RAID group.
    pub rg: RaidGroupId,
    /// DBN shared by every block of the stripe.
    pub dbn: Dbn,
}

/// An Allocation Area: a contiguous set of stripes within one RAID group
/// (§IV-D). `index` counts AAs from DBN 0 upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AaId {
    /// Owning RAID group.
    pub rg: RaidGroupId,
    /// AA ordinal within the group (AA `i` covers stripes
    /// `[i * aa_stripes, (i + 1) * aa_stripes)`).
    pub index: u32,
}

/// Fully resolved physical location of a VBN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockLoc {
    /// RAID group holding the block.
    pub rg: RaidGroupId,
    /// Data drive holding the block (aggregate-wide id).
    pub drive: DriveId,
    /// Index of the drive *within its RAID group* (0-based among data
    /// drives).
    pub drive_in_rg: u32,
    /// Block offset on the drive.
    pub dbn: Dbn,
}

/// Static geometry of one RAID group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaidGroupGeometry {
    /// Group id.
    pub id: RaidGroupId,
    /// Aggregate-wide ids of the group's data drives, in stripe order.
    pub data_drives: Vec<DriveId>,
    /// Number of parity drives (RAID-4/DP style: parity on dedicated
    /// drives, as in NetApp systems).
    pub parity_drives: u32,
    /// Blocks per drive (same for every drive of the group).
    pub blocks_per_drive: u64,
    /// First VBN of the group's first data drive.
    pub vbn_base: u64,
}

impl RaidGroupGeometry {
    /// Number of data drives in the group (the tetris width, §IV-E).
    #[inline]
    pub fn width(&self) -> u32 {
        self.data_drives.len() as u32
    }

    /// Total data blocks in the group.
    #[inline]
    pub fn data_blocks(&self) -> u64 {
        self.blocks_per_drive * self.data_drives.len() as u64
    }

    /// VBN range `[start, end)` owned by data drive `drive_in_rg`.
    #[inline]
    pub fn drive_vbn_range(&self, drive_in_rg: u32) -> std::ops::Range<u64> {
        debug_assert!(drive_in_rg < self.width());
        let start = self.vbn_base + drive_in_rg as u64 * self.blocks_per_drive;
        start..start + self.blocks_per_drive
    }
}

/// Immutable geometry of an aggregate: RAID groups, drives, AA size, and
/// the VBN mapping. Construct with [`GeometryBuilder`].
///
/// VBN layout is *drive-major*: RAID groups are concatenated, and within a
/// group each data drive owns one contiguous VBN range. So for a group
/// with base `B`, `d` data drives and `n` blocks per drive:
///
/// ```text
/// vbn = B + drive_in_rg * n + dbn
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateGeometry {
    raid_groups: Vec<RaidGroupGeometry>,
    aa_stripes: u64,
    total_vbns: u64,
    total_drives: u32,
}

impl AggregateGeometry {
    /// All RAID groups in the aggregate.
    #[inline]
    pub fn raid_groups(&self) -> &[RaidGroupGeometry] {
        &self.raid_groups
    }

    /// Geometry of one RAID group.
    #[inline]
    pub fn raid_group(&self, rg: RaidGroupId) -> &RaidGroupGeometry {
        &self.raid_groups[rg.0 as usize]
    }

    /// Number of stripes per Allocation Area.
    #[inline]
    pub fn aa_stripes(&self) -> u64 {
        self.aa_stripes
    }

    /// Total number of VBNs (data blocks) in the aggregate.
    #[inline]
    pub fn total_vbns(&self) -> u64 {
        self.total_vbns
    }

    /// Total number of data drives across all RAID groups.
    #[inline]
    pub fn total_data_drives(&self) -> u32 {
        self.total_drives
    }

    /// Number of AAs in a RAID group (the last AA may be short if
    /// `blocks_per_drive` is not a multiple of `aa_stripes`).
    #[inline]
    pub fn aa_count(&self, rg: RaidGroupId) -> u32 {
        let g = self.raid_group(rg);
        g.blocks_per_drive.div_ceil(self.aa_stripes) as u32
    }

    /// DBN range `[start, end)` covered by an AA on each of its drives.
    #[inline]
    pub fn aa_dbn_range(&self, aa: AaId) -> std::ops::Range<u64> {
        let g = self.raid_group(aa.rg);
        let start = aa.index as u64 * self.aa_stripes;
        let end = (start + self.aa_stripes).min(g.blocks_per_drive);
        debug_assert!(start < g.blocks_per_drive, "AA index out of range");
        start..end
    }

    /// The AA containing a given stripe.
    #[inline]
    pub fn aa_of_stripe(&self, s: StripeId) -> AaId {
        AaId {
            rg: s.rg,
            index: (s.dbn.0 / self.aa_stripes) as u32,
        }
    }

    /// Resolve a VBN to its physical location.
    ///
    /// Errors with [`IoError::OutOfRange`] when `vbn` is outside the
    /// aggregate's address space.
    pub fn locate(&self, vbn: Vbn) -> Result<BlockLoc, IoError> {
        let g = self
            .raid_groups
            .iter()
            .find(|g| vbn.0 >= g.vbn_base && vbn.0 < g.vbn_base + g.data_blocks())
            .ok_or(IoError::OutOfRange {
                vbn,
                total: self.total_vbns,
            })?;
        let off = vbn.0 - g.vbn_base;
        let drive_in_rg = (off / g.blocks_per_drive) as u32;
        let dbn = Dbn(off % g.blocks_per_drive);
        Ok(BlockLoc {
            rg: g.id,
            drive: g.data_drives[drive_in_rg as usize],
            drive_in_rg,
            dbn,
        })
    }

    /// Inverse of [`locate`](Self::locate): the VBN at `(rg, drive_in_rg, dbn)`.
    #[inline]
    pub fn vbn_at(&self, rg: RaidGroupId, drive_in_rg: u32, dbn: Dbn) -> Vbn {
        let g = self.raid_group(rg);
        debug_assert!(drive_in_rg < g.width());
        debug_assert!(dbn.0 < g.blocks_per_drive);
        Vbn(g.vbn_base + drive_in_rg as u64 * g.blocks_per_drive + dbn.0)
    }

    /// The stripe containing a VBN.
    ///
    /// # Panics
    /// Panics if `vbn` is out of range (callers pass VBNs already
    /// validated by the allocator; use [`Self::locate`] for fallible
    /// resolution).
    #[inline]
    pub fn stripe_of(&self, vbn: Vbn) -> StripeId {
        let loc = self.locate(vbn).expect("stripe_of: VBN out of range");
        StripeId {
            rg: loc.rg,
            dbn: loc.dbn,
        }
    }

    /// The AA containing a VBN.
    #[inline]
    pub fn aa_of(&self, vbn: Vbn) -> AaId {
        self.aa_of_stripe(self.stripe_of(vbn))
    }

    /// Iterate over every `(RaidGroupId)` in the aggregate.
    pub fn rg_ids(&self) -> impl Iterator<Item = RaidGroupId> + '_ {
        (0..self.raid_groups.len() as u32).map(RaidGroupId)
    }
}

/// Builder for [`AggregateGeometry`].
///
/// ```
/// use wafl_blockdev::GeometryBuilder;
///
/// // Figure 3 of the paper: two RAID groups with 3 and 2 data drives.
/// let geo = GeometryBuilder::new()
///     .aa_stripes(64)
///     .raid_group(3, 1, 4096)
///     .raid_group(2, 1, 4096)
///     .build();
/// assert_eq!(geo.total_data_drives(), 5);
/// assert_eq!(geo.total_vbns(), 5 * 4096);
/// ```
#[derive(Debug, Default)]
pub struct GeometryBuilder {
    groups: Vec<(u32, u32, u64)>, // (data, parity, blocks_per_drive)
    aa_stripes: u64,
}

impl GeometryBuilder {
    /// Start an empty builder (AA size defaults to 512 stripes).
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            aa_stripes: 512,
        }
    }

    /// Set the number of stripes per Allocation Area.
    pub fn aa_stripes(mut self, stripes: u64) -> Self {
        assert!(stripes > 0, "AA must contain at least one stripe");
        self.aa_stripes = stripes;
        self
    }

    /// Append a RAID group with `data` data drives, `parity` parity drives,
    /// and `blocks_per_drive` blocks on every drive.
    pub fn raid_group(mut self, data: u32, parity: u32, blocks_per_drive: u64) -> Self {
        assert!(data > 0, "RAID group needs at least one data drive");
        assert!(blocks_per_drive > 0, "drives must be non-empty");
        self.groups.push((data, parity, blocks_per_drive));
        self
    }

    /// Convenience: a single-RAID-group aggregate.
    pub fn single_group(
        data: u32,
        parity: u32,
        blocks_per_drive: u64,
        aa_stripes: u64,
    ) -> AggregateGeometry {
        Self::new()
            .aa_stripes(aa_stripes)
            .raid_group(data, parity, blocks_per_drive)
            .build()
    }

    /// Finalize the geometry.
    ///
    /// # Panics
    /// Panics if no RAID group was added.
    pub fn build(self) -> AggregateGeometry {
        assert!(
            !self.groups.is_empty(),
            "aggregate needs at least one RAID group"
        );
        let mut raid_groups = Vec::with_capacity(self.groups.len());
        let mut vbn_base = 0u64;
        let mut next_drive = 0u32;
        for (i, (data, parity, blocks)) in self.groups.iter().copied().enumerate() {
            let data_drives: Vec<DriveId> = (next_drive..next_drive + data).map(DriveId).collect();
            next_drive += data;
            raid_groups.push(RaidGroupGeometry {
                id: RaidGroupId(i as u32),
                data_drives,
                parity_drives: parity,
                blocks_per_drive: blocks,
                vbn_base,
            });
            vbn_base += data as u64 * blocks;
        }
        AggregateGeometry {
            raid_groups,
            aa_stripes: self.aa_stripes,
            total_vbns: vbn_base,
            total_drives: next_drive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig3_geometry() -> AggregateGeometry {
        // Figure 3: an aggregate with two RAID groups and five data drives.
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .raid_group(2, 1, 1024)
            .build()
    }

    #[test]
    fn vbn_ranges_are_drive_major_and_contiguous() {
        let geo = paper_fig3_geometry();
        let g0 = geo.raid_group(RaidGroupId(0));
        assert_eq!(g0.drive_vbn_range(0), 0..1024);
        assert_eq!(g0.drive_vbn_range(1), 1024..2048);
        assert_eq!(g0.drive_vbn_range(2), 2048..3072);
        let g1 = geo.raid_group(RaidGroupId(1));
        assert_eq!(g1.drive_vbn_range(0), 3072..4096);
        assert_eq!(g1.drive_vbn_range(1), 4096..5120);
    }

    #[test]
    fn locate_roundtrips_with_vbn_at() {
        let geo = paper_fig3_geometry();
        for vbn in (0..geo.total_vbns()).step_by(97) {
            let loc = geo.locate(Vbn(vbn)).unwrap();
            assert_eq!(geo.vbn_at(loc.rg, loc.drive_in_rg, loc.dbn), Vbn(vbn));
        }
    }

    #[test]
    fn consecutive_vbns_on_drive_are_consecutive_dbns() {
        // Bucket contiguity (§IV-C objective 2) depends on this.
        let geo = paper_fig3_geometry();
        for vbn in 0..1023u64 {
            let a = geo.locate(Vbn(vbn)).unwrap();
            let b = geo.locate(Vbn(vbn + 1)).unwrap();
            assert_eq!(a.drive, b.drive);
            assert_eq!(b.dbn.0, a.dbn.0 + 1);
        }
    }

    #[test]
    fn stripe_groups_one_block_per_drive() {
        let geo = paper_fig3_geometry();
        let s = geo.stripe_of(Vbn(100));
        // All drives of RG0 at DBN 100 map to the same stripe.
        for d in 0..3 {
            let v = geo.vbn_at(RaidGroupId(0), d, Dbn(100));
            assert_eq!(geo.stripe_of(v), s);
        }
        // RG1 at the same DBN is a *different* stripe.
        let v1 = geo.vbn_at(RaidGroupId(1), 0, Dbn(100));
        assert_ne!(geo.stripe_of(v1), s);
    }

    #[test]
    fn aa_arithmetic() {
        let geo = paper_fig3_geometry();
        assert_eq!(geo.aa_count(RaidGroupId(0)), 16); // 1024 / 64
        let aa = AaId {
            rg: RaidGroupId(0),
            index: 3,
        };
        assert_eq!(geo.aa_dbn_range(aa), 192..256);
        assert_eq!(geo.aa_of(geo.vbn_at(RaidGroupId(0), 1, Dbn(200))), aa);
    }

    #[test]
    fn short_final_aa() {
        let geo = GeometryBuilder::new()
            .aa_stripes(100)
            .raid_group(2, 1, 250)
            .build();
        assert_eq!(geo.aa_count(RaidGroupId(0)), 3);
        let last = AaId {
            rg: RaidGroupId(0),
            index: 2,
        };
        assert_eq!(geo.aa_dbn_range(last), 200..250);
    }

    #[test]
    fn locate_out_of_range_errors() {
        let geo = paper_fig3_geometry();
        let err = geo.locate(Vbn(geo.total_vbns())).unwrap_err();
        assert_eq!(
            err,
            IoError::OutOfRange {
                vbn: Vbn(geo.total_vbns()),
                total: geo.total_vbns(),
            }
        );
        assert!(err.to_string().contains("out of aggregate range"));
    }

    #[test]
    fn drive_ids_unique_across_groups() {
        let geo = paper_fig3_geometry();
        let mut seen = std::collections::HashSet::new();
        for g in geo.raid_groups() {
            for d in &g.data_drives {
                assert!(seen.insert(*d), "duplicate drive id {d:?}");
            }
        }
        assert_eq!(seen.len(), 5);
    }
}
