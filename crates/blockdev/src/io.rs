//! The aggregate-level write-I/O engine.
//!
//! A **tetris** (§IV-E) is the unit of write I/O in WAFL: a contiguous
//! collection of stripes, one buffer list per drive. The `alligator` crate
//! builds tetris structures; when a tetris is complete it is "sent to
//! RAID" — that is, submitted here as a [`WriteIo`].
//!
//! The engine resolves VBNs to drives, forwards the write to the owning
//! [`crate::raid::RaidGroup`], and maintains aggregate-wide
//! counters that the evaluation harness reads (full-stripe ratio, blocks
//! written per drive, simulated busy time).

use crate::drive::DriveKind;
use crate::geometry::{AggregateGeometry, BlockLoc, RaidGroupId, Vbn};
use crate::raid::RaidGroup;
use crate::BlockStamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One contiguous run of blocks on a single data drive within a write.
#[derive(Debug, Clone)]
pub struct WriteSegment {
    /// Index of the drive within its RAID group.
    pub drive_in_rg: u32,
    /// Starting DBN of the run.
    pub start_dbn: u64,
    /// Block payloads, one per DBN starting at `start_dbn`.
    pub stamps: Vec<BlockStamp>,
}

/// A write I/O against one RAID group (the on-the-wire form of a tetris).
#[derive(Debug, Clone)]
pub struct WriteIo {
    /// Target RAID group.
    pub rg: RaidGroupId,
    /// Per-drive segments. Multiple segments per drive are allowed.
    pub segments: Vec<WriteSegment>,
}

impl WriteIo {
    /// Total number of data blocks in the I/O.
    pub fn blocks(&self) -> u64 {
        self.segments.iter().map(|s| s.stamps.len() as u64).sum()
    }
}

/// Outcome of a submitted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoResult {
    /// Simulated service time of the whole I/O (max over drives).
    pub service_ns: u64,
    /// Data blocks read back for parity (0 for pure full-stripe I/O).
    pub parity_reads: u64,
    /// Data blocks written.
    pub blocks_written: u64,
}

/// Aggregate-wide I/O counters.
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Write I/Os submitted.
    pub write_ios: AtomicU64,
    /// Data blocks written.
    pub blocks_written: AtomicU64,
    /// Parity-driven data reads.
    pub parity_reads: AtomicU64,
    /// Accumulated simulated service time.
    pub service_ns: AtomicU64,
}

impl IoCounters {
    /// Plain-value snapshot.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            write_ios: self.write_ios.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            parity_reads: self.parity_reads.load(Ordering::Relaxed),
            service_ns: self.service_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`IoCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Write I/Os submitted.
    pub write_ios: u64,
    /// Data blocks written.
    pub blocks_written: u64,
    /// Parity-driven data reads.
    pub parity_reads: u64,
    /// Accumulated simulated service time.
    pub service_ns: u64,
}

/// The aggregate I/O engine: geometry + RAID groups + counters.
pub struct IoEngine {
    geometry: Arc<AggregateGeometry>,
    groups: Vec<RaidGroup>,
    counters: IoCounters,
}

impl IoEngine {
    /// Build the engine and all backing drives for a geometry.
    pub fn new(geometry: Arc<AggregateGeometry>, kind: DriveKind) -> Self {
        let groups = geometry
            .raid_groups()
            .iter()
            .map(|g| RaidGroup::new(g.clone(), kind))
            .collect();
        Self {
            geometry,
            groups,
            counters: IoCounters::default(),
        }
    }

    /// The aggregate geometry.
    #[inline]
    pub fn geometry(&self) -> &Arc<AggregateGeometry> {
        &self.geometry
    }

    /// Access one RAID group.
    #[inline]
    pub fn raid_group(&self, rg: RaidGroupId) -> &RaidGroup {
        &self.groups[rg.0 as usize]
    }

    /// All RAID groups.
    #[inline]
    pub fn raid_groups(&self) -> &[RaidGroup] {
        &self.groups
    }

    /// Aggregate counters.
    #[inline]
    pub fn counters(&self) -> &IoCounters {
        &self.counters
    }

    /// Submit a write I/O (a completed tetris).
    pub fn submit_write(&self, io: &WriteIo) -> IoResult {
        let g = &self.groups[io.rg.0 as usize];
        let width = g.width() as usize;
        let mut per_drive: Vec<BTreeMap<u64, BlockStamp>> = vec![BTreeMap::new(); width];
        let mut blocks = 0u64;
        for seg in &io.segments {
            let m = &mut per_drive[seg.drive_in_rg as usize];
            for (i, &s) in seg.stamps.iter().enumerate() {
                let prev = m.insert(seg.start_dbn + i as u64, s);
                debug_assert!(prev.is_none(), "duplicate block in one WriteIo");
                blocks += 1;
            }
        }
        let (service_ns, parity_reads) = g.write(&per_drive);
        self.counters.write_ios.fetch_add(1, Ordering::Relaxed);
        self.counters.blocks_written.fetch_add(blocks, Ordering::Relaxed);
        self.counters.parity_reads.fetch_add(parity_reads, Ordering::Relaxed);
        self.counters.service_ns.fetch_add(service_ns, Ordering::Relaxed);
        IoResult {
            service_ns,
            parity_reads,
            blocks_written: blocks,
        }
    }

    /// Convenience: write a single block at a VBN (used by metafile flushes
    /// and the superblock path, which bypass tetris construction).
    pub fn write_vbn(&self, vbn: Vbn, stamp: BlockStamp) -> IoResult {
        let loc = self.geometry.locate(vbn);
        self.submit_write(&WriteIo {
            rg: loc.rg,
            segments: vec![WriteSegment {
                drive_in_rg: loc.drive_in_rg,
                start_dbn: loc.dbn.0,
                stamps: vec![stamp],
            }],
        })
    }

    /// Read the stamp stored at a VBN.
    pub fn read_vbn(&self, vbn: Vbn) -> BlockStamp {
        let BlockLoc {
            rg, drive_in_rg, dbn, ..
        } = self.geometry.locate(vbn);
        self.groups[rg.0 as usize].data_drives()[drive_in_rg as usize]
            .read_block(dbn)
            .0
    }

    /// Verify parity across the whole aggregate (scrub). Test helper.
    pub fn scrub(&self) -> Result<(), String> {
        for g in &self.groups {
            g.verify_parity(0, g.geometry().blocks_per_drive)?;
        }
        Ok(())
    }

    /// Fraction of stripes written full-stripe, aggregated over all groups.
    /// Returns `None` before any stripe has been written.
    pub fn full_stripe_ratio(&self) -> Option<f64> {
        let (mut full, mut partial) = (0u64, 0u64);
        for g in &self.groups {
            full += g.counters().full_stripe_writes.load(Ordering::Relaxed);
            partial += g.counters().partial_stripe_writes.load(Ordering::Relaxed);
        }
        let total = full + partial;
        (total > 0).then(|| full as f64 / total as f64)
    }
}

impl std::fmt::Debug for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine")
            .field("raid_groups", &self.groups.len())
            .field("total_vbns", &self.geometry.total_vbns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GeometryBuilder;

    fn engine() -> IoEngine {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(3, 1, 512)
                .raid_group(2, 1, 512)
                .build(),
        );
        IoEngine::new(geo, DriveKind::Ssd)
    }

    #[test]
    fn write_vbn_then_read_vbn() {
        let e = engine();
        e.write_vbn(Vbn(1500), 0xabc);
        assert_eq!(e.read_vbn(Vbn(1500)), 0xabc);
        assert_eq!(e.read_vbn(Vbn(1501)), 0);
    }

    #[test]
    fn full_tetris_write_is_all_full_stripes() {
        let e = engine();
        // Cover stripes [0, 4) of RG0 on all three drives.
        let io = WriteIo {
            rg: RaidGroupId(0),
            segments: (0..3)
                .map(|d| WriteSegment {
                    drive_in_rg: d,
                    start_dbn: 0,
                    stamps: vec![crate::stamp(d as u64, 0, 1); 4],
                })
                .collect(),
        };
        let r = e.submit_write(&io);
        assert_eq!(r.parity_reads, 0);
        assert_eq!(r.blocks_written, 12);
        assert_eq!(e.full_stripe_ratio(), Some(1.0));
        e.scrub().unwrap();
    }

    #[test]
    fn ragged_tetris_pays_parity_reads() {
        let e = engine();
        let io = WriteIo {
            rg: RaidGroupId(1),
            segments: vec![WriteSegment {
                drive_in_rg: 0,
                start_dbn: 10,
                stamps: vec![7; 2],
            }],
        };
        let r = e.submit_write(&io);
        assert_eq!(r.parity_reads, 2); // the other drive, 2 stripes
        assert!(e.full_stripe_ratio().unwrap() < 1.0);
        e.scrub().unwrap();
    }

    #[test]
    fn counters_accumulate_across_ios() {
        let e = engine();
        e.write_vbn(Vbn(0), 1);
        e.write_vbn(Vbn(700), 2);
        let s = e.counters().snapshot();
        assert_eq!(s.write_ios, 2);
        assert_eq!(s.blocks_written, 2);
        assert!(s.service_ns > 0);
    }

    #[test]
    fn scrub_detects_everything_consistent_initially() {
        engine().scrub().unwrap();
    }
}
