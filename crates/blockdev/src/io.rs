//! The aggregate-level write-I/O engine.
//!
//! A **tetris** (§IV-E) is the unit of write I/O in WAFL: a contiguous
//! collection of stripes, one buffer list per drive. The `alligator` crate
//! builds tetris structures; when a tetris is complete it is "sent to
//! RAID" — that is, submitted here as a [`WriteIo`].
//!
//! The engine resolves VBNs to drives, forwards the write to the owning
//! [`crate::raid::RaidGroup`], and maintains aggregate-wide
//! counters that the evaluation harness reads (full-stripe ratio, blocks
//! written per drive, simulated busy time).

use crate::aio::{AioEngine, FileBackend};
use crate::drive::DriveKind;
use crate::fault::{FaultPlan, FaultSpec, IoError, RetryPolicy};
use crate::geometry::{AggregateGeometry, BlockLoc, DriveId, RaidGroupId, Vbn};
use crate::raid::RaidGroup;
use crate::BlockStamp;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// One contiguous run of blocks on a single data drive within a write.
#[derive(Debug, Clone)]
pub struct WriteSegment {
    /// Index of the drive within its RAID group.
    pub drive_in_rg: u32,
    /// Starting DBN of the run.
    pub start_dbn: u64,
    /// Block payloads, one per DBN starting at `start_dbn`.
    pub stamps: Vec<BlockStamp>,
}

/// A write I/O against one RAID group (the on-the-wire form of a tetris).
#[derive(Debug, Clone)]
pub struct WriteIo {
    /// Target RAID group.
    pub rg: RaidGroupId,
    /// Per-drive segments. Multiple segments per drive are allowed.
    pub segments: Vec<WriteSegment>,
}

impl WriteIo {
    /// Total number of data blocks in the I/O.
    pub fn blocks(&self) -> u64 {
        self.segments.iter().map(|s| s.stamps.len() as u64).sum()
    }
}

/// Outcome of a submitted write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoResult {
    /// Simulated service time of the whole I/O (max over drives).
    pub service_ns: u64,
    /// Data blocks read back for parity (0 for pure full-stripe I/O).
    pub parity_reads: u64,
    /// Data blocks written.
    pub blocks_written: u64,
}

/// Aggregate-wide I/O counters.
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Write I/Os submitted.
    pub write_ios: AtomicU64,
    /// Data blocks written.
    pub blocks_written: AtomicU64,
    /// Parity-driven data reads.
    pub parity_reads: AtomicU64,
    /// Accumulated simulated service time.
    pub service_ns: AtomicU64,
}

impl IoCounters {
    /// Plain-value snapshot.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            // ordering: statistics counter; staleness is acceptable.
            write_ios: self.write_ios.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            parity_reads: self.parity_reads.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            service_ns: self.service_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`IoCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Write I/Os submitted.
    pub write_ios: u64,
    /// Data blocks written.
    pub blocks_written: u64,
    /// Parity-driven data reads.
    pub parity_reads: u64,
    /// Accumulated simulated service time.
    pub service_ns: u64,
}

/// Aggregate-wide fault/degraded-mode counters, summed over RAID groups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    /// Blocks served by XOR reconstruction instead of the home drive.
    pub reconstructed_reads: u64,
    /// Stripes written or read while one member was offline.
    pub degraded_stripes: u64,
    /// Data blocks whose media write was skipped (drive offline).
    pub degraded_writes: u64,
    /// Drive-op retries performed by the bounded-backoff policy.
    pub io_retries: u64,
    /// Drive-op errors observed (before retry resolution).
    pub io_errors: u64,
    /// Blocks rewritten onto media by the repair paths (whole-drive
    /// rebuilds plus single-block scrub repairs).
    pub blocks_rebuilt: u64,
    /// Drives (data + parity) currently out of service.
    pub drives_offline: u64,
}

/// The aggregate I/O engine: geometry + RAID groups + counters.
pub struct IoEngine {
    geometry: Arc<AggregateGeometry>,
    groups: Vec<RaidGroup>,
    counters: IoCounters,
    fault: Option<Arc<FaultPlan>>,
    /// Optional real-file mirror: every write that completes against the
    /// simulated drives is also persisted here (see [`crate::aio`]).
    mirror: Mutex<Option<Arc<FileBackend>>>, // lock-rank: io.mirror 70
    /// Back-reference to an attached async engine, if any. Weak: the
    /// [`AioEngine`] owns an `Arc<IoEngine>`, never the reverse.
    aio: Mutex<Weak<AioEngine>>, // lock-rank: io.aio 71
}

impl IoEngine {
    /// Build the engine and all backing drives for a geometry.
    pub fn new(geometry: Arc<AggregateGeometry>, kind: DriveKind) -> Self {
        let groups = geometry
            .raid_groups()
            .iter()
            .map(|g| RaidGroup::new(g.clone(), kind))
            .collect();
        Self {
            geometry,
            groups,
            counters: IoCounters::default(),
            fault: None,
            mirror: Mutex::new(None),
            aio: Mutex::new(Weak::new()),
        }
    }

    /// Attach a real-file mirror: from now on every successful
    /// [`IoEngine::submit_write`] is also applied to the backing files.
    /// Attach **after** [`FileBackend::load_into`] on remount, so the
    /// load is not echoed back into the files.
    pub fn attach_mirror(&self, backend: Arc<FileBackend>) {
        *self.mirror.lock() = Some(backend);
    }

    /// The attached file mirror, if any.
    pub fn file_mirror(&self) -> Option<Arc<FileBackend>> {
        self.mirror.lock().clone()
    }

    /// Durability barrier: fdatasync the file mirror (no-op without one).
    pub fn sync_media(&self) -> Result<(), IoError> {
        if let Some(m) = self.file_mirror() {
            m.sync_all().map_err(|_| IoError::Unrecoverable {
                detail: "file backend fsync failed",
            })?;
        }
        Ok(())
    }

    /// Crash the file mirror (power-loss simulation): subsequent mirror
    /// writes are dropped, and one mid-flight write may be torn.
    pub fn crash_mirror(&self) {
        if let Some(m) = self.file_mirror() {
            m.crash();
        }
    }

    /// Register an async engine layered on top of this one. Callers that
    /// honor async submission (the tetris fire path) check
    /// [`IoEngine::aio`] before falling back to inline completion.
    pub fn set_aio(&self, engine: &Arc<AioEngine>) {
        *self.aio.lock() = Arc::downgrade(engine);
    }

    /// The registered async engine, if one is attached and still alive.
    pub fn aio(&self) -> Option<Arc<AioEngine>> {
        self.aio.lock().upgrade()
    }

    /// Build an engine whose drives (data and parity) share a seeded
    /// [`FaultPlan`], with the default [`RetryPolicy`].
    pub fn with_faults(geometry: Arc<AggregateGeometry>, kind: DriveKind, spec: FaultSpec) -> Self {
        Self::with_faults_and_policy(geometry, kind, spec, RetryPolicy::default())
    }

    /// Build a fault-injected engine with an explicit retry/offlining
    /// policy.
    pub fn with_faults_and_policy(
        geometry: Arc<AggregateGeometry>,
        kind: DriveKind,
        spec: FaultSpec,
        policy: RetryPolicy,
    ) -> Self {
        let mut engine = Self::new(geometry, kind);
        let plan = Arc::new(FaultPlan::new(spec));
        for g in &mut engine.groups {
            g.set_retry_policy(policy);
        }
        for g in &engine.groups {
            for d in g.data_drives().iter().chain(g.parity_drives()) {
                d.set_fault_plan(Some(Arc::clone(&plan)));
            }
        }
        engine.fault = Some(plan);
        engine
    }

    /// The installed fault plan, if any.
    #[inline]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// The aggregate geometry.
    #[inline]
    pub fn geometry(&self) -> &Arc<AggregateGeometry> {
        &self.geometry
    }

    /// Access one RAID group.
    #[inline]
    pub fn raid_group(&self, rg: RaidGroupId) -> &RaidGroup {
        &self.groups[rg.0 as usize]
    }

    /// All RAID groups.
    #[inline]
    pub fn raid_groups(&self) -> &[RaidGroup] {
        &self.groups
    }

    /// Aggregate counters.
    #[inline]
    pub fn counters(&self) -> &IoCounters {
        &self.counters
    }

    /// Submit a write I/O (a completed tetris). A single drive failure is
    /// absorbed by the RAID layer's degraded mode; the error surfaces
    /// only when the write is unrecoverable (or structurally invalid).
    pub fn submit_write(&self, io: &WriteIo) -> Result<IoResult, IoError> {
        let g = &self.groups[io.rg.0 as usize];
        let width = g.width() as usize;
        let mut per_drive: Vec<BTreeMap<u64, BlockStamp>> = vec![BTreeMap::new(); width];
        let mut blocks = 0u64;
        for seg in &io.segments {
            let m = &mut per_drive[seg.drive_in_rg as usize];
            for (i, &s) in seg.stamps.iter().enumerate() {
                let prev = m.insert(seg.start_dbn + i as u64, s);
                debug_assert!(prev.is_none(), "duplicate block in one WriteIo");
                blocks += 1;
            }
        }
        let (service_ns, parity_reads) = g.write(&per_drive)?;
        if let Some(m) = self.file_mirror() {
            m.apply_write(io).map_err(|_| IoError::Unrecoverable {
                detail: "file backend write failed",
            })?;
        }
        // ordering: statistics counter; staleness is acceptable.
        self.counters.write_ios.fetch_add(1, Ordering::Relaxed);
        self.counters
            .blocks_written
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(blocks, Ordering::Relaxed);
        self.counters
            .parity_reads
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(parity_reads, Ordering::Relaxed);
        self.counters
            .service_ns
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(service_ns, Ordering::Relaxed);
        Ok(IoResult {
            service_ns,
            parity_reads,
            blocks_written: blocks,
        })
    }

    /// Convenience: write a single block at a VBN (used by metafile flushes
    /// and the superblock path, which bypass tetris construction).
    pub fn write_vbn(&self, vbn: Vbn, stamp: BlockStamp) -> Result<IoResult, IoError> {
        let loc = self.geometry.locate(vbn)?;
        self.submit_write(&WriteIo {
            rg: loc.rg,
            segments: vec![WriteSegment {
                drive_in_rg: loc.drive_in_rg,
                start_dbn: loc.dbn.0,
                stamps: vec![stamp],
            }],
        })
    }

    /// Read the stamp stored at a VBN, transparently served by
    /// degraded-mode reconstruction when the home drive has failed.
    pub fn read_vbn(&self, vbn: Vbn) -> Result<BlockStamp, IoError> {
        let BlockLoc {
            rg,
            drive_in_rg,
            dbn,
            ..
        } = self.geometry.locate(vbn)?;
        Ok(self.groups[rg.0 as usize].read_block(drive_in_rg, dbn)?.0)
    }

    /// Verify parity across the whole aggregate (scrub). Inspects raw
    /// media, so it fails while a group is degraded and passes again
    /// after [`IoEngine::rebuild_offline`].
    pub fn scrub(&self) -> Result<(), String> {
        for g in &self.groups {
            g.verify_parity(0, g.geometry().blocks_per_drive)?;
        }
        Ok(())
    }

    /// Rebuild every offline drive in the aggregate. Returns total
    /// blocks rebuilt.
    pub fn rebuild_offline(&self) -> u64 {
        self.groups.iter().map(|g| g.rebuild_offline()).sum()
    }

    /// Ids of all drives (data and parity) currently out of service.
    pub fn offline_drives(&self) -> Vec<DriveId> {
        let mut out = Vec::new();
        for g in &self.groups {
            for d in g.data_drives().iter().chain(g.parity_drives()) {
                if d.is_offline() {
                    out.push(d.id());
                }
            }
        }
        out
    }

    /// Aggregate-wide fault/degraded-mode counters.
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        let mut s = FaultSnapshot::default();
        for g in &self.groups {
            let c = g.counters();
            // ordering: statistics counter; staleness is acceptable.
            s.reconstructed_reads += c.reconstructed_reads.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            s.degraded_stripes += c.degraded_stripes.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            s.degraded_writes += c.degraded_writes.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            s.io_retries += c.io_retries.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            s.io_errors += c.io_errors.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            s.blocks_rebuilt += c.blocks_rebuilt.load(Ordering::Relaxed);
        }
        s.drives_offline = self.offline_drives().len() as u64;
        s
    }

    /// Fraction of stripes written full-stripe, aggregated over all groups.
    /// Returns `None` before any stripe has been written.
    pub fn full_stripe_ratio(&self) -> Option<f64> {
        let (mut full, mut partial) = (0u64, 0u64);
        for g in &self.groups {
            // ordering: statistics counter; staleness is acceptable.
            full += g.counters().full_stripe_writes.load(Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            partial += g.counters().partial_stripe_writes.load(Ordering::Relaxed);
        }
        let total = full + partial;
        (total > 0).then(|| full as f64 / total as f64)
    }
}

impl std::fmt::Debug for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine")
            .field("raid_groups", &self.groups.len())
            .field("total_vbns", &self.geometry.total_vbns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use crate::geometry::GeometryBuilder;

    fn engine() -> IoEngine {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(3, 1, 512)
                .raid_group(2, 1, 512)
                .build(),
        );
        IoEngine::new(geo, DriveKind::Ssd)
    }

    #[test]
    fn write_vbn_then_read_vbn() {
        let e = engine();
        e.write_vbn(Vbn(1500), 0xabc).unwrap();
        assert_eq!(e.read_vbn(Vbn(1500)).unwrap(), 0xabc);
        assert_eq!(e.read_vbn(Vbn(1501)).unwrap(), 0);
    }

    #[test]
    fn out_of_range_vbn_errors() {
        let e = engine();
        let total = e.geometry().total_vbns();
        assert!(matches!(
            e.read_vbn(Vbn(total)),
            Err(crate::fault::IoError::OutOfRange { .. })
        ));
        assert!(matches!(
            e.write_vbn(Vbn(total + 5), 1),
            Err(crate::fault::IoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn injected_drive_failure_served_degraded_then_rebuilt() {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(3, 1, 512)
                .build(),
        );
        // Drive 1 dies after 4 ops.
        let e = IoEngine::with_faults(geo, DriveKind::Ssd, FaultSpec::drive_failure(1, 4));
        for v in 0..40u64 {
            for d in 0..3u64 {
                e.write_vbn(Vbn(d * 512 + v), crate::stamp(d, v, 1))
                    .unwrap();
            }
        }
        assert_eq!(e.offline_drives(), vec![DriveId(1)]);
        // Every block — including the dead drive's — reads back correct.
        for v in 0..40u64 {
            for d in 0..3u64 {
                assert_eq!(e.read_vbn(Vbn(d * 512 + v)).unwrap(), crate::stamp(d, v, 1));
            }
        }
        let s = e.fault_snapshot();
        assert!(s.reconstructed_reads > 0);
        assert!(s.degraded_writes > 0);
        assert_eq!(s.drives_offline, 1);
        // Scrub fails while degraded, passes after rebuild.
        assert!(e.scrub().is_err());
        assert!(e.rebuild_offline() > 0);
        assert!(e.offline_drives().is_empty());
        e.scrub().unwrap();
    }

    #[test]
    fn full_tetris_write_is_all_full_stripes() {
        let e = engine();
        // Cover stripes [0, 4) of RG0 on all three drives.
        let io = WriteIo {
            rg: RaidGroupId(0),
            segments: (0..3)
                .map(|d| WriteSegment {
                    drive_in_rg: d,
                    start_dbn: 0,
                    stamps: vec![crate::stamp(d as u64, 0, 1); 4],
                })
                .collect(),
        };
        let r = e.submit_write(&io).unwrap();
        assert_eq!(r.parity_reads, 0);
        assert_eq!(r.blocks_written, 12);
        assert_eq!(e.full_stripe_ratio(), Some(1.0));
        e.scrub().unwrap();
    }

    #[test]
    fn ragged_tetris_pays_parity_reads() {
        let e = engine();
        let io = WriteIo {
            rg: RaidGroupId(1),
            segments: vec![WriteSegment {
                drive_in_rg: 0,
                start_dbn: 10,
                stamps: vec![7; 2],
            }],
        };
        let r = e.submit_write(&io).unwrap();
        assert_eq!(r.parity_reads, 2); // the other drive, 2 stripes
        assert!(e.full_stripe_ratio().unwrap() < 1.0);
        e.scrub().unwrap();
    }

    #[test]
    fn counters_accumulate_across_ios() {
        let e = engine();
        e.write_vbn(Vbn(0), 1).unwrap();
        e.write_vbn(Vbn(700), 2).unwrap();
        let s = e.counters().snapshot();
        assert_eq!(s.write_ios, 2);
        assert_eq!(s.blocks_written, 2);
        assert!(s.service_ns > 0);
    }

    #[test]
    fn scrub_detects_everything_consistent_initially() {
        engine().scrub().unwrap();
    }
}
