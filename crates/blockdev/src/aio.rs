//! Asynchronous write-I/O engine: submission/completion queues over the
//! aggregate's [`IoEngine`], with an optional real-file backend.
//!
//! The synchronous engine completes every tetris inline on the
//! submitting thread, so a CP drains its dirty set one stripe at a time
//! and the paper's §IV tetris machinery never exploits per-drive
//! parallelism. This module adds the io_uring-shaped alternative:
//!
//! * [`AioEngine::submit`] enqueues a [`WriteIo`] on its RAID group's
//!   bounded submit ring and returns an [`IoTicket`] immediately;
//! * a worker per RAID group services the ring in FIFO order (one
//!   worker per group keeps every drive's fault-plan op ordinals
//!   identical at any queue depth — retries and offlining decisions are
//!   made **per completion**, exactly as the synchronous engine made
//!   them per call);
//! * finished writes are published on a lock-free MPMC completion ring
//!   ([`CompletionRing`], a Vyukov-style sequenced ring built on the
//!   `crate::sync` shim so `crates/mc` can model-check the protocol);
//! * [`AioEngine::poll_completions`] harvests completions without
//!   blocking, and [`AioEngine::drain`] is the barrier: it returns only
//!   when every prior submission has completed, then fsyncs the file
//!   backend (CP phase boundaries are the only durability barriers).
//!
//! The engine writes through two backends at once when a
//! [`FileBackend`] mirror is attached to the [`IoEngine`]: the
//! simulated drives stay the read/verify authority, and every block
//! that completes is additionally `pwrite`n at its geometry offset into
//! a per-drive backing file with O_DIRECT-style alignment. The files
//! are the remount-persistent state for crash-consistency torture:
//! [`FileBackend::crash`] drops (and mid-I/O, tears) everything not yet
//! on media, and [`FileBackend::load_into`] rebuilds a fresh aggregate
//! from whatever survived. Raw block devices are probed by
//! [`DiskKind::probe`] and rejected with a typed
//! [`IoError::NotYetSupported`].

use crate::fault::IoError;
use crate::geometry::{AggregateGeometry, Dbn, RaidGroupId, BLOCK_SIZE};
use crate::io::{IoEngine, IoResult, WriteIo};
use crate::sync::{atomic, cell};
use crate::BlockStamp;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Tickets and completions
// ---------------------------------------------------------------------

/// Opaque handle for one submitted write I/O.
///
/// Tickets are minted only by [`AioEngine::submit`] (the field is
/// private, and `scripts/lint_concurrency.py` additionally enforces
/// that no code outside this module constructs one): a completion can
/// therefore never be forged or double-sourced by a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoTicket(u64);

impl IoTicket {
    /// The ticket's sequence number (monotone per engine).
    #[inline]
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A finished write I/O, as delivered by [`AioEngine::poll_completions`].
#[derive(Debug, Clone)]
pub struct Completion {
    /// The ticket returned by the matching [`AioEngine::submit`].
    pub ticket: IoTicket,
    /// The write outcome, exactly as the synchronous engine would have
    /// returned it (degraded writes absorbed, unrecoverable ones `Err`).
    pub result: Result<IoResult, IoError>,
    /// Wall-clock nanoseconds from submit to completion publish.
    pub submit_to_complete_ns: u64,
}

// ---------------------------------------------------------------------
// Lock-free completion ring (model-checked in crates/mc)
// ---------------------------------------------------------------------

struct Slot<T> {
    /// Vyukov sequence stamp: `pos` when ready for a push at `pos`,
    /// `pos + 1` when holding the value pushed at `pos`, and
    /// `pos + capacity` once that value has been popped.
    seq: atomic::AtomicU64,
    val: cell::UnsafeCell<Option<T>>,
}

/// Bounded lock-free MPMC ring (Vyukov sequenced-slot design) used as
/// the completion queue. Built entirely on the `crate::sync` shim so
/// that `--features mc` can exhaustively model-check the protocol: no
/// completion lost, none double-delivered, across any interleaving of
/// producers (workers) and consumers (pollers).
pub struct CompletionRing<T> {
    slots: Box<[Slot<T>]>,
    /// Next position to pop.
    head: atomic::AtomicU64,
    /// Next position to push.
    tail: atomic::AtomicU64,
    mask: u64,
}

// SAFETY: slots are accessed through the sequenced-slot protocol: a
// producer writes a slot's cell only after winning the tail CAS for
// that position, a consumer reads it only after winning the head CAS,
// and the seq Release/Acquire pair orders the hand-off. T crossing
// threads requires T: Send.
unsafe impl<T: Send> Sync for CompletionRing<T> {}
// SAFETY: moving the ring moves ownership of the T values inside it.
unsafe impl<T: Send> Send for CompletionRing<T> {}

impl<T> CompletionRing<T> {
    /// Create a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: atomic::AtomicU64::new(i),
                val: cell::UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            head: atomic::AtomicU64::new(0),
            tail: atomic::AtomicU64::new(0),
            mask: cap - 1,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Push a value; returns it back if the ring is full.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        // ordering: Relaxed — an optimistic read; the CAS below validates it.
        let mut tail = self.tail.load(atomic::Ordering::Relaxed);
        loop {
            let slot = &self.slots[(tail & self.mask) as usize];
            // ordering: Acquire — pairs with the pop's Release store; seeing
            // seq == tail proves the slot's previous value was fully taken;
            // pairs-with: aio.ring-seq.
            let seq = slot.seq.load(atomic::Ordering::Acquire);
            let dif = seq.wrapping_sub(tail) as i64;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    // ordering: Relaxed — claiming the position; the value
                    // hand-off is ordered by the slot's seq, not the tail.
                    atomic::Ordering::Relaxed,
                    // ordering: Relaxed — failure just rereads the tail.
                    atomic::Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the tail CAS for `tail` grants
                        // exclusive write access to this slot until the
                        // seq store below publishes it.
                        slot.val.with_mut(|p| unsafe { *p = Some(v) });
                        // ordering: Release — publishes the value to the
                        // consumer whose Acquire load observes seq == tail+1;
                        // pairs-with: aio.ring-seq.
                        slot.seq
                            .store(tail.wrapping_add(1), atomic::Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                return Err(v); // full: slot still holds an unpopped value
            } else {
                // ordering: Relaxed — another producer advanced past us; reread.
                tail = self.tail.load(atomic::Ordering::Relaxed);
            }
        }
    }

    /// Pop a value; `None` when the ring is empty.
    pub fn try_pop(&self) -> Option<T> {
        // ordering: Relaxed — an optimistic read; the CAS below validates it.
        let mut head = self.head.load(atomic::Ordering::Relaxed);
        loop {
            let slot = &self.slots[(head & self.mask) as usize];
            // ordering: Acquire — pairs with the push's Release store; seeing
            // seq == head+1 proves the slot's value is fully written;
            // pairs-with: aio.ring-seq.
            let seq = slot.seq.load(atomic::Ordering::Acquire);
            let dif = seq.wrapping_sub(head.wrapping_add(1)) as i64;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    // ordering: Relaxed — claiming the position; the value
                    // hand-off is ordered by the slot's seq, not the head.
                    atomic::Ordering::Relaxed,
                    // ordering: Relaxed — failure just rereads the head.
                    atomic::Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the head CAS for `head` grants
                        // exclusive access to this slot until the seq
                        // store below recycles it for producers.
                        let v = slot.val.with_mut(|p| unsafe { (*p).take() });
                        // ordering: Release — recycles the slot for the
                        // producer one lap ahead (its Acquire load pairs here);
                        // pairs-with: aio.ring-seq.
                        slot.seq.store(
                            head.wrapping_add(self.mask).wrapping_add(1),
                            atomic::Ordering::Release,
                        );
                        return Some(v.expect("sequenced slot held no value"));
                    }
                    Err(h) => head = h,
                }
            } else if dif < 0 {
                return None; // empty: slot not yet filled for this lap
            } else {
                // ordering: Relaxed — another consumer advanced past us; reread.
                head = self.head.load(atomic::Ordering::Relaxed);
            }
        }
    }
}

impl<T> std::fmt::Debug for CompletionRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionRing")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

// ---------------------------------------------------------------------
// DiskKind probe + file backend
// ---------------------------------------------------------------------

/// What kind of storage target a path refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// A directory of per-drive backing files (supported).
    Directory,
    /// A raw block device (detected, but writes are rejected with
    /// [`IoError::NotYetSupported`] until the on-device allocator
    /// lands — see ROADMAP).
    BlockDevice,
}

impl DiskKind {
    /// Probe a path. Nonexistent paths probe as [`DiskKind::Directory`]
    /// (they will be created as one).
    pub fn probe(path: &Path) -> DiskKind {
        use std::os::unix::fs::FileTypeExt;
        match std::fs::metadata(path) {
            Ok(md) if md.file_type().is_block_device() => DiskKind::BlockDevice,
            _ => DiskKind::Directory,
        }
    }
}

/// When the file backend makes completed writes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every write I/O — the synchronous engine's
    /// discipline (each stripe durable before the next is submitted).
    PerWrite,
    /// `fdatasync` only at [`FileBackend::sync_all`] barriers (CP phase
    /// boundaries / [`AioEngine::drain`]) — the pipelined discipline.
    Barrier,
}

/// Linux `O_DIRECT` open flag (no libc dependency in this tree).
const O_DIRECT: i32 = 0x4000;

/// Real-file storage backend: one backing file per data drive, blocks
/// at `dbn * BLOCK_SIZE`, each 4 KiB block filled with its 16-byte
/// stamp repeated (so content survives a remount byte-exactly).
///
/// Attached to an [`IoEngine`] as a mirror
/// ([`IoEngine::attach_mirror`]): every write that completes against
/// the simulated drives is also written here, through O_DIRECT when
/// the filesystem supports it (falling back to buffered I/O with the
/// fallback recorded — see [`FileBackend::o_direct`]).
pub struct FileBackend {
    dir: PathBuf,
    /// One file per data drive, indexed by `rg_base[rg] + drive_in_rg`.
    files: Vec<File>,
    rg_base: Vec<usize>,
    blocks_per_drive: Vec<u64>,
    o_direct: bool,
    policy: SyncPolicy,
    /// Set by [`FileBackend::crash`]: all subsequent file writes are
    /// dropped, tearing any multi-segment write in progress.
    crashed: std::sync::atomic::AtomicBool,
}

impl FileBackend {
    /// Open (creating if needed) the per-drive backing files for a
    /// geometry under `dir`. A `dir` that probes as a raw block device
    /// is rejected with [`IoError::NotYetSupported`].
    pub fn open(
        dir: &Path,
        geometry: &AggregateGeometry,
        policy: SyncPolicy,
    ) -> Result<FileBackend, IoError> {
        if DiskKind::probe(dir) == DiskKind::BlockDevice {
            return Err(IoError::NotYetSupported {
                detail: "raw block devices are probed but not yet written (ROADMAP: on-device allocator)",
            });
        }
        std::fs::create_dir_all(dir).map_err(|_| IoError::NotYetSupported {
            detail: "file backend directory could not be created",
        })?;
        let mut files = Vec::new();
        let mut rg_base = Vec::new();
        let mut blocks_per_drive = Vec::new();
        let mut o_direct = true;
        for g in geometry.raid_groups() {
            rg_base.push(files.len());
            for d in 0..g.data_drives.len() {
                let path = dir.join(format!("rg{}-d{}.blk", g.id.0, d));
                let size = g.blocks_per_drive * BLOCK_SIZE as u64;
                let file = match open_direct(&path, size) {
                    Ok(f) => f,
                    Err(_) => {
                        // O_DIRECT unavailable (e.g. tmpfs): fall back
                        // to buffered I/O and record the downgrade.
                        o_direct = false;
                        let f = OpenOptions::new()
                            .read(true)
                            .write(true)
                            .create(true)
                            .truncate(false)
                            .open(&path)
                            .map_err(|_| IoError::NotYetSupported {
                                detail: "file backend open failed",
                            })?;
                        f.set_len(size).map_err(|_| IoError::NotYetSupported {
                            detail: "file backend set_len failed",
                        })?;
                        f
                    }
                };
                files.push(file);
                blocks_per_drive.push(g.blocks_per_drive);
            }
        }
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            files,
            rg_base,
            blocks_per_drive,
            o_direct,
            policy,
            crashed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The backing directory.
    #[inline]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether every backing file is open with `O_DIRECT` (false after
    /// a buffered fallback, e.g. on tmpfs).
    #[inline]
    pub fn o_direct(&self) -> bool {
        self.o_direct
    }

    /// The configured durability policy.
    #[inline]
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Simulate power loss: drop every file write from now on. A
    /// multi-segment write racing this call persists only a prefix of
    /// its segments — the torn-stripe case recovery must absorb.
    pub fn crash(&self) {
        // ordering: Release — the tear point is published to writer
        // threads; pairs-with: aio.file-crash.
        self.crashed
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Has [`FileBackend::crash`] been called?
    pub fn is_crashed(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in crash();
        // pairs-with: aio.file-crash.
        self.crashed.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Mirror one completed write I/O into the backing files. Segments
    /// are written in order; a crash flag observed between segments
    /// tears the write. Returns `Ok` even when dropped — a crashed
    /// backend behaves like powered-off media, not an erroring one.
    pub fn apply_write(&self, io: &WriteIo) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        let base = self.rg_base[io.rg.0 as usize];
        for seg in &io.segments {
            if self.is_crashed() {
                return Ok(()); // torn: earlier segments persisted, rest lost
            }
            let idx = base + seg.drive_in_rg as usize;
            let buf = AlignedBuf::fill(&seg.stamps);
            self.files[idx].write_at(buf.bytes(), seg.start_dbn * BLOCK_SIZE as u64)?;
        }
        if self.policy == SyncPolicy::PerWrite && !self.is_crashed() {
            for seg in &io.segments {
                self.files[base + seg.drive_in_rg as usize].sync_data()?;
            }
        }
        Ok(())
    }

    /// Barrier: fdatasync every backing file (a no-op after a crash).
    pub fn sync_all(&self) -> std::io::Result<()> {
        if self.is_crashed() {
            return Ok(());
        }
        for f in &self.files {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Read one drive's full stamp array back from its backing file.
    pub fn read_drive(
        &self,
        rg: RaidGroupId,
        drive_in_rg: u32,
    ) -> std::io::Result<Vec<BlockStamp>> {
        use std::os::unix::fs::FileExt;
        let idx = self.rg_base[rg.0 as usize] + drive_in_rg as usize;
        let blocks = self.blocks_per_drive[idx] as usize;
        let mut buf = AlignedBuf::zeroed(blocks);
        self.files[idx].read_exact_at(buf.bytes_mut(), 0)?;
        Ok(buf.stamps())
    }

    /// Remount: load every surviving block into a fresh engine's
    /// simulated drives and rebuild parity from the loaded data.
    /// Returns the number of nonzero blocks loaded.
    pub fn load_into(&self, engine: &IoEngine) -> std::io::Result<u64> {
        let mut loaded = 0u64;
        for g in engine.raid_groups() {
            let rg = g.geometry().id;
            for (d, drive) in g.data_drives().iter().enumerate() {
                let stamps = self.read_drive(rg, d as u32)?;
                loaded += stamps.iter().filter(|&&s| s != 0).count() as u64;
                drive.repair_write(Dbn(0), &stamps);
            }
            for p in 0..g.parity_drives().len() {
                g.rebuild_parity(p);
            }
        }
        Ok(loaded)
    }
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("files", &self.files.len())
            .field("o_direct", &self.o_direct)
            .finish()
    }
}

/// Open a file with `O_DIRECT` sized to `size` bytes, verifying the
/// flag actually works on this filesystem with a non-destructive
/// aligned read probe (filesystems like tmpfs reject the flag at open;
/// a few accept it at open and fail at I/O time).
fn open_direct(path: &Path, size: u64) -> std::io::Result<File> {
    use std::os::unix::fs::{FileExt, OpenOptionsExt};
    let f = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .custom_flags(O_DIRECT)
        .open(path)?;
    f.set_len(size)?;
    let mut probe = AlignedBuf::zeroed(1);
    f.read_exact_at(probe.bytes_mut(), 0)?;
    Ok(f)
}

/// A 4096-aligned heap buffer sized in whole blocks (O_DIRECT requires
/// aligned user memory as well as aligned offsets/lengths).
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBuf {
    fn zeroed(blocks: usize) -> Self {
        let len = blocks.max(1) * BLOCK_SIZE;
        let layout = std::alloc::Layout::from_size_align(len, BLOCK_SIZE).expect("valid layout");
        // SAFETY: layout has nonzero size (blocks >= 1) and valid
        // power-of-two alignment; allocation failure is handled below.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned buffer allocation failed");
        Self { ptr, len }
    }

    /// Fill: one block per stamp, each block the 16-byte stamp repeated.
    fn fill(stamps: &[BlockStamp]) -> Self {
        let buf = Self::zeroed(stamps.len());
        for (i, &s) in stamps.iter().enumerate() {
            let bytes = s.to_le_bytes();
            for j in 0..(BLOCK_SIZE / 16) {
                let off = i * BLOCK_SIZE + j * 16;
                // SAFETY: off + 16 <= len by construction (i < stamps.len(),
                // j < BLOCK_SIZE/16); the buffer is exclusively owned here.
                unsafe {
                    std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.ptr.add(off), 16);
                }
            }
        }
        buf
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr is a live allocation of exactly len bytes.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: ptr is a live allocation of exactly len bytes, and
        // &mut self guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Decode the first 16 bytes of each block as its stamp.
    fn stamps(&self) -> Vec<BlockStamp> {
        self.bytes()
            .chunks_exact(BLOCK_SIZE)
            .map(|b| BlockStamp::from_le_bytes(b[..16].try_into().expect("16-byte prefix")))
            .collect()
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout =
            std::alloc::Layout::from_size_align(self.len, BLOCK_SIZE).expect("valid layout");
        // SAFETY: ptr was allocated with exactly this layout in zeroed().
        unsafe { std::alloc::dealloc(self.ptr, layout) };
    }
}

// ---------------------------------------------------------------------
// The async engine
// ---------------------------------------------------------------------

/// One submitted-but-unserviced write.
struct Pending {
    ticket: u64,
    io: WriteIo,
    submitted_at: Instant,
}

/// Per-RAID-group bounded MPSC submit ring: producers block when the
/// ring is at capacity (backpressure), the group's worker drains FIFO.
struct SubmitRing {
    q: parking_lot::Mutex<VecDeque<Pending>>, // lock-rank: aio.queue 73
    not_full: parking_lot::Condvar,
    not_empty: parking_lot::Condvar,
    cap: usize,
}

/// Shared state between the engine handle and its workers.
struct Inner {
    io: Arc<IoEngine>,
    rings: Vec<SubmitRing>,
    completions: CompletionRing<Completion>,
    /// Spill list for a full completion ring, so a worker never blocks
    /// on a caller that is slow to poll (same pattern as the arena's
    /// ArenaFull overflow queue).
    overflow: parking_lot::Mutex<Vec<Completion>>, // lock-rank: aio.overflow 74
    submitted: std::sync::atomic::AtomicU64,
    completed: std::sync::atomic::AtomicU64,
    inflight: std::sync::atomic::AtomicU64,
    depth_peak: std::sync::atomic::AtomicU64,
    lat_total_ns: std::sync::atomic::AtomicU64,
    dropped: std::sync::atomic::AtomicU64,
    shutdown: std::sync::atomic::AtomicBool,
    crashed: std::sync::atomic::AtomicBool,
    drain_mx: parking_lot::Mutex<()>, // lock-rank: aio.drain 72
    drain_cv: parking_lot::Condvar,
    /// Live queue-depth gauge in the obs metrics registry.
    depth_gauge: Arc<obs::Gauge>,
    /// Submit→complete latency histogram in the obs metrics registry.
    lat_hist: Arc<obs::LogHistogram>,
}

/// The asynchronous I/O engine (see module docs).
pub struct AioEngine {
    inner: Arc<Inner>,
    workers: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>, // lock-rank: aio.workers 75
}

impl AioEngine {
    /// Build an engine over `io` with one worker and one submit ring
    /// per RAID group. `depth` bounds each ring (minimum 1): a submit
    /// against a full ring blocks until the worker makes room.
    pub fn new(io: Arc<IoEngine>, depth: usize) -> Arc<AioEngine> {
        let depth = depth.max(1);
        let groups = io.raid_groups().len();
        let rings = (0..groups)
            .map(|_| SubmitRing {
                q: parking_lot::Mutex::new(VecDeque::with_capacity(depth)),
                not_full: parking_lot::Condvar::new(),
                not_empty: parking_lot::Condvar::new(),
                cap: depth,
            })
            .collect();
        let registry = obs::Registry::global();
        let inner = Arc::new(Inner {
            io,
            rings,
            completions: CompletionRing::with_capacity((groups * depth).max(64)),
            overflow: parking_lot::Mutex::new(Vec::new()),
            submitted: std::sync::atomic::AtomicU64::new(0),
            completed: std::sync::atomic::AtomicU64::new(0),
            inflight: std::sync::atomic::AtomicU64::new(0),
            depth_peak: std::sync::atomic::AtomicU64::new(0),
            lat_total_ns: std::sync::atomic::AtomicU64::new(0),
            dropped: std::sync::atomic::AtomicU64::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            crashed: std::sync::atomic::AtomicBool::new(false),
            drain_mx: parking_lot::Mutex::new(()),
            drain_cv: parking_lot::Condvar::new(),
            depth_gauge: registry.gauge("io_queue_depth"),
            lat_hist: registry.histogram("io_submit_to_complete_ns"),
        });
        let workers = (0..groups)
            .map(|rg| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("aio-rg{rg}"))
                    .spawn(move || worker_loop(&inner, rg))
                    .expect("spawn aio worker")
            })
            .collect();
        Arc::new(AioEngine {
            inner,
            workers: parking_lot::Mutex::new(workers),
        })
    }

    /// The engine this one submits to.
    #[inline]
    pub fn io(&self) -> &Arc<IoEngine> {
        &self.inner.io
    }

    /// Enqueue a write I/O on its RAID group's submit ring. Blocks only
    /// when the ring is at capacity (backpressure). The returned ticket
    /// matches the eventual [`Completion::ticket`].
    pub fn submit(&self, wio: WriteIo) -> Result<IoTicket, IoError> {
        let inner = &*self.inner;
        // ordering: Relaxed RMW mints unique tickets; completion visibility
        // is ordered by the ring and the completed counter, not this one.
        let id = inner
            .submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // ordering: Acquire — see whether a crash point already fired;
        // pairs-with: aio.crashed.
        if inner.crashed.load(std::sync::atomic::Ordering::Acquire) {
            // Crashed engine: the write is lost (powered-off media), but
            // the caller's ticket accounting must still balance.
            // ordering: Relaxed — statistics counter.
            inner
                .dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // ordering: Release — keeps completed <= submitted visible to
            // drain; pairs-with: aio.completed.
            inner
                .completed
                .fetch_add(1, std::sync::atomic::Ordering::Release);
            return Ok(IoTicket(id));
        }
        // ordering: AcqRel — the gauge and its high-water mark stay
        // mutually consistent (same pattern as put_commit_outstanding);
        // pairs-with: aio.inflight-gauge.
        let depth = inner
            .inflight
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel)
            + 1;
        // ordering: AcqRel — see the gauge increment above;
        // pairs-with: aio.inflight-gauge.
        inner
            .depth_peak
            .fetch_max(depth, std::sync::atomic::Ordering::AcqRel);
        inner.depth_gauge.set(depth);
        let ring = &inner.rings[wio.rg.0 as usize];
        let mut q = ring.q.lock();
        while q.len() >= ring.cap {
            ring.not_full.wait(&mut q);
            // A crash while parked: bail out like the pre-queue check.
            // ordering: Acquire — pairs with the crash point's Release;
            // pairs-with: aio.crashed.
            if inner.crashed.load(std::sync::atomic::Ordering::Acquire) {
                drop(q);
                self.account_dropped(1);
                return Ok(IoTicket(id));
            }
        }
        q.push_back(Pending {
            ticket: id,
            io: wio,
            submitted_at: Instant::now(),
        });
        ring.not_empty.notify_one();
        Ok(IoTicket(id))
    }

    /// Harvest every completion published so far, without blocking.
    pub fn poll_completions(&self) -> Vec<Completion> {
        let inner = &*self.inner;
        let mut out = Vec::new();
        while let Some(c) = inner.completions.try_pop() {
            out.push(c);
        }
        let mut spilled = inner.overflow.lock();
        out.append(&mut *spilled);
        out
    }

    /// Barrier: wait until every prior submission has completed, fsync
    /// the file backend (if one is attached to the engine), and return
    /// all unharvested completions. This is the only point with
    /// ordering guarantees — completions before the barrier, in any
    /// order; nothing in flight after it.
    pub fn drain(&self) -> Vec<Completion> {
        let inner = &*self.inner;
        {
            let mut g = inner.drain_mx.lock();
            loop {
                // ordering: Acquire — pairs with workers' Release bumps, so
                // completed == submitted implies all results are visible.
                let sub = inner.submitted.load(std::sync::atomic::Ordering::Acquire);
                // ordering: Acquire — see above; pairs-with: aio.completed.
                let comp = inner.completed.load(std::sync::atomic::Ordering::Acquire);
                if comp >= sub {
                    break;
                }
                // Timed wait: a missed notify costs one tick, not a hang.
                inner
                    .drain_cv
                    .wait_until(&mut g, Instant::now() + Duration::from_millis(20));
            }
        }
        // The durability half of the barrier: everything the workers
        // wrote is on media before the caller proceeds (CP phase
        // boundary / superblock commit).
        let _ = inner.io.sync_media();
        self.poll_completions()
    }

    /// Crash point: drop everything still queued (and, via the file
    /// mirror's crash flag, tear anything mid-write). Returns the
    /// number of queued writes dropped. The engine stays alive but
    /// every later submit is dropped too.
    pub fn crash_drop_inflight(&self) -> u64 {
        let inner = &*self.inner;
        // ordering: Release — later Acquire loads (submit, workers) see the
        // crash before they see any queue state mutated below;
        // pairs-with: aio.crashed.
        inner
            .crashed
            .store(true, std::sync::atomic::Ordering::Release);
        inner.io.crash_mirror();
        let mut n = 0u64;
        for ring in &inner.rings {
            let mut q = ring.q.lock();
            n += q.len() as u64;
            q.clear();
            ring.not_full.notify_all();
            ring.not_empty.notify_all();
        }
        if n > 0 {
            self.account_dropped(n);
        }
        n
    }

    fn account_dropped(&self, n: u64) {
        let inner = &*self.inner;
        // ordering: Relaxed — statistics counter.
        inner
            .dropped
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        // ordering: AcqRel — gauge decrement pairs with submit's increment;
        // pairs-with: aio.inflight-gauge.
        inner
            .inflight
            .fetch_sub(n, std::sync::atomic::Ordering::AcqRel);
        // ordering: Release — keeps drain's completed-vs-submitted check
        // sound; pairs-with: aio.completed.
        inner
            .completed
            .fetch_add(n, std::sync::atomic::Ordering::Release);
        let _g = inner.drain_mx.lock();
        inner.drain_cv.notify_all();
    }

    /// Total writes submitted.
    pub fn submitted(&self) -> u64 {
        // ordering: Acquire — pairs with the Relaxed/Release bumps; a
        // point-in-time reporting read.
        self.inner
            .submitted
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Total writes completed (including crash-dropped ones).
    pub fn completed(&self) -> u64 {
        // ordering: Acquire — pairs with workers' Release bumps;
        // pairs-with: aio.completed.
        self.inner
            .completed
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Writes dropped by a crash point.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — statistics counter.
        self.inner
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Writes currently submitted but not completed.
    pub fn inflight(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel gauge updates;
        // pairs-with: aio.inflight-gauge.
        self.inner
            .inflight
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// High-water mark of [`AioEngine::inflight`].
    pub fn queue_depth_peak(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel fetch_max;
        // pairs-with: aio.inflight-gauge.
        self.inner
            .depth_peak
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Accumulated submit→complete latency over all completions.
    pub fn submit_to_complete_ns_total(&self) -> u64 {
        // ordering: Relaxed — statistics counter.
        self.inner
            .lat_total_ns
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Stop the workers (draining their rings first unless crashed).
    /// Called automatically on drop.
    pub fn shutdown(&self) {
        // ordering: Release — workers' Acquire loads see the flag after
        // observing any queue state published before this call;
        // pairs-with: aio.shutdown.
        self.inner
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        for ring in &self.inner.rings {
            let _q = ring.q.lock();
            ring.not_empty.notify_all();
            ring.not_full.notify_all();
        }
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for AioEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AioEngine")
            .field("rings", &self.inner.rings.len())
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .finish()
    }
}

/// Worker: drain one RAID group's submit ring in FIFO order. One
/// worker per group means each drive observes the same op sequence at
/// any queue depth, so fault-plan draws, retry backoff, and
/// consecutive-error offlining are depth-invariant.
fn worker_loop(inner: &Inner, rg: usize) {
    let ring = &inner.rings[rg];
    loop {
        let pending = {
            let mut q = ring.q.lock();
            loop {
                if let Some(p) = q.pop_front() {
                    ring.not_full.notify_one();
                    break p;
                }
                // ordering: Acquire — pairs with shutdown's Release store;
                // pairs-with: aio.shutdown.
                if inner.shutdown.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                ring.not_empty.wait(&mut q);
            }
        };
        // ordering: Acquire — a crash point fired while this item was
        // queued; drop it exactly as the crash path drops the rest;
        // pairs-with: aio.crashed.
        if inner.crashed.load(std::sync::atomic::Ordering::Acquire) {
            complete(inner, pending.ticket, None, 0);
            continue;
        }
        let sp = obs::trace_span!(obs::EventKind::Io, pending.io.blocks());
        let result = inner.io.submit_write(&pending.io);
        drop(sp);
        let ns = pending.submitted_at.elapsed().as_nanos() as u64;
        complete(inner, pending.ticket, Some(result), ns);
    }
}

/// Publish one completion (or account a dropped write when `result` is
/// `None`) and wake any drainer.
fn complete(inner: &Inner, ticket: u64, result: Option<Result<IoResult, IoError>>, ns: u64) {
    match result {
        Some(result) => {
            // ordering: Relaxed — statistics counter.
            inner
                .lat_total_ns
                .fetch_add(ns, std::sync::atomic::Ordering::Relaxed);
            inner.lat_hist.record(ns);
            let c = Completion {
                ticket: IoTicket(ticket),
                result,
                submit_to_complete_ns: ns,
            };
            if let Err(c) = inner.completions.try_push(c) {
                inner.overflow.lock().push(c);
            }
        }
        None => {
            // ordering: Relaxed — statistics counter.
            inner
                .dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
    // ordering: AcqRel — gauge decrement pairs with submit's increment;
    // pairs-with: aio.inflight-gauge.
    let depth = inner
        .inflight
        .fetch_sub(1, std::sync::atomic::Ordering::AcqRel)
        - 1;
    inner.depth_gauge.set(depth);
    // ordering: Release — publishes this completion's effects to drain's
    // Acquire load of the counter; pairs-with: aio.completed.
    inner
        .completed
        .fetch_add(1, std::sync::atomic::Ordering::Release);
    let _g = inner.drain_mx.lock();
    inner.drain_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::DriveKind;
    use crate::fault::{FaultSpec, RetryPolicy};
    use crate::geometry::{GeometryBuilder, Vbn};
    use crate::io::WriteSegment;

    fn engine() -> Arc<IoEngine> {
        Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(3, 1, 512)
                    .raid_group(2, 1, 512)
                    .build(),
            ),
            DriveKind::Ssd,
        ))
    }

    fn stripe_io(rg: u32, start: u64, depth: u64, width: u32, salt: u64) -> WriteIo {
        WriteIo {
            rg: RaidGroupId(rg),
            segments: (0..width)
                .map(|d| WriteSegment {
                    drive_in_rg: d,
                    start_dbn: start,
                    stamps: (0..depth)
                        .map(|i| crate::stamp(salt ^ d as u64, start + i, 1))
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn ring_push_pop_fifo_per_producer() {
        let r: CompletionRing<u64> = CompletionRing::with_capacity(4);
        assert_eq!(r.capacity(), 4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert!(r.try_push(99).is_err(), "full ring rejects");
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
        // Reusable across laps.
        r.try_push(7).unwrap();
        assert_eq!(r.try_pop(), Some(7));
    }

    #[test]
    fn ring_concurrent_no_loss_no_dup() {
        let r: Arc<CompletionRing<u64>> = Arc::new(CompletionRing::with_capacity(8));
        let n_per = 5_000u64;
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..n_per {
                        let mut v = p * n_per + i;
                        loop {
                            match r.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < (3 * n_per as usize) / 2 {
                        match r.try_pop() {
                            Some(v) => got.push(v),
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        while let Some(v) = r.try_pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..3 * n_per).collect();
        assert_eq!(all, expect, "every value delivered exactly once");
    }

    #[test]
    fn submit_poll_drain_roundtrip() {
        let io = engine();
        let aio = AioEngine::new(Arc::clone(&io), 8);
        let mut tickets = Vec::new();
        for s in 0..6u64 {
            tickets.push(aio.submit(stripe_io(0, s * 4, 4, 3, 7)).unwrap());
        }
        let done = aio.drain();
        assert_eq!(done.len(), 6);
        assert_eq!(aio.inflight(), 0);
        assert_eq!(aio.completed(), 6);
        assert!(aio.queue_depth_peak() >= 1);
        let mut got: Vec<u64> = done.iter().map(|c| c.ticket.id()).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = tickets.iter().map(|t| t.id()).collect();
        want.sort_unstable();
        assert_eq!(got, want, "every ticket completes exactly once");
        for c in &done {
            let r = c.result.as_ref().unwrap();
            assert_eq!(r.blocks_written, 12);
            assert_eq!(r.parity_reads, 0, "aligned stripes are full-stripe");
        }
        // Media state identical to the synchronous path.
        assert_eq!(io.full_stripe_ratio(), Some(1.0));
        io.scrub().unwrap();
        assert_eq!(io.read_vbn(Vbn(0)).unwrap(), crate::stamp(7, 0, 1));
    }

    #[test]
    fn depth_one_serializes_depth_eight_overlaps() {
        let io = engine();
        let aio = AioEngine::new(io, 8);
        for s in 0..20u64 {
            aio.submit(stripe_io(0, s * 2, 2, 3, 3)).unwrap();
            aio.submit(stripe_io(1, s * 2, 2, 2, 4)).unwrap();
        }
        let done = aio.drain();
        assert_eq!(done.len(), 40);
        // Two RAID groups → up to two writes genuinely in flight at once.
        assert!(aio.queue_depth_peak() >= 2);
    }

    #[test]
    fn fault_accounting_is_depth_invariant() {
        // The same seeded fault plan must produce the same retry and
        // offlining decisions whether writes queue 1-deep or 8-deep:
        // decisions are drawn per drive-op *completion* in worker FIFO
        // order, not per submission.
        let spec = FaultSpec {
            seed: 0xD15C,
            write_error_ppm: 120_000,
            ..FaultSpec::default()
        };
        let run = |depth: usize| {
            let geo = Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(3, 1, 512)
                    .build(),
            );
            let io = Arc::new(IoEngine::with_faults_and_policy(
                geo,
                DriveKind::Ssd,
                spec,
                RetryPolicy::default(),
            ));
            let aio = AioEngine::new(Arc::clone(&io), depth);
            for s in 0..40u64 {
                aio.submit(stripe_io(0, s * 4, 4, 3, 9)).unwrap();
            }
            let done = aio.drain();
            assert_eq!(done.len(), 40);
            io.fault_snapshot()
        };
        let d1 = run(1);
        let d8 = run(8);
        assert_eq!(d1, d8, "fault accounting must not depend on queue depth");
        assert!(d1.io_retries > 0, "the seed injects retried transients");
        assert_eq!(d1.drives_offline, 0);
    }

    #[test]
    fn crash_drops_queued_writes_but_balances_tickets() {
        let io = engine();
        let aio = AioEngine::new(io, 4);
        for s in 0..12u64 {
            aio.submit(stripe_io(0, s * 2, 2, 3, 5)).unwrap();
        }
        aio.crash_drop_inflight();
        // Post-crash submissions are dropped, not queued.
        aio.submit(stripe_io(0, 100, 2, 3, 5)).unwrap();
        let done = aio.drain(); // must not hang
        assert_eq!(aio.completed(), aio.submitted());
        assert!(aio.dropped() >= 1, "at least the post-crash submit dropped");
        assert!(done.len() as u64 <= 13 - aio.dropped());
    }

    #[test]
    fn file_backend_mirrors_and_reloads() {
        let dir = std::env::temp_dir().join(format!("wafl-aio-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = engine();
        let backend =
            Arc::new(FileBackend::open(&dir, io.geometry(), SyncPolicy::Barrier).unwrap());
        io.attach_mirror(Arc::clone(&backend));
        let aio = AioEngine::new(Arc::clone(&io), 8);
        for s in 0..8u64 {
            aio.submit(stripe_io(0, s * 4, 4, 3, 11)).unwrap();
        }
        aio.drain();
        io.write_vbn(Vbn(700), 0xFEED).unwrap(); // sync path mirrors too
        io.sync_media().unwrap();
        // Remount into a fresh engine from the files alone.
        let fresh = engine();
        let back2 = FileBackend::open(&dir, fresh.geometry(), SyncPolicy::Barrier).unwrap();
        let loaded = back2.load_into(&fresh).unwrap();
        assert_eq!(loaded, 8 * 4 * 3 + 1);
        for s in 0..8u64 {
            for d in 0..3u64 {
                let vbn = Vbn(d * 512 + s * 4);
                assert_eq!(
                    fresh.read_vbn(vbn).unwrap(),
                    crate::stamp(11 ^ d, s * 4, 1),
                    "reloaded stamp at {vbn:?}"
                );
            }
        }
        assert_eq!(fresh.read_vbn(Vbn(700)).unwrap(), 0xFEED);
        fresh.scrub().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_crash_tears_writes() {
        let dir = std::env::temp_dir().join(format!("wafl-aio-tear-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = engine();
        let backend =
            Arc::new(FileBackend::open(&dir, io.geometry(), SyncPolicy::Barrier).unwrap());
        io.attach_mirror(Arc::clone(&backend));
        io.write_vbn(Vbn(0), 0xAA).unwrap();
        backend.crash();
        io.write_vbn(Vbn(1), 0xBB).unwrap(); // dropped at the mirror
        let fresh = engine();
        let back2 = FileBackend::open(&dir, fresh.geometry(), SyncPolicy::Barrier).unwrap();
        back2.load_into(&fresh).unwrap();
        assert_eq!(fresh.read_vbn(Vbn(0)).unwrap(), 0xAA);
        assert_eq!(fresh.read_vbn(Vbn(1)).unwrap(), 0, "post-crash write lost");
        fresh.scrub().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn block_device_probe_is_typed_rejection() {
        let dev = Path::new("/dev/vda");
        if DiskKind::probe(dev) != DiskKind::BlockDevice {
            return; // environment without the device: nothing to assert
        }
        let geo = GeometryBuilder::new()
            .aa_stripes(8)
            .raid_group(1, 1, 16)
            .build();
        match FileBackend::open(dev, &geo, SyncPolicy::Barrier) {
            Err(IoError::NotYetSupported { .. }) => {}
            other => panic!("expected NotYetSupported, got {other:?}"),
        }
    }
}
