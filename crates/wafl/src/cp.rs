//! Consistency points: WAFL's atomic batch-commit of dirty state.
//!
//! "WAFL accumulates and flushes thousands of operations worth of data to
//! persistent storage … Writing a consistent collection of changes as a
//! single transaction in WAFL is known as a consistency point … The
//! primary function of a CP is to flush changed state — i.e., all dirty
//! buffers — from each dirty inode to persistent storage, which is known
//! as inode cleaning … Once all dirty inodes for files and metafiles have
//! been cleaned, the newly written data is atomically persisted by
//! overwriting the superblock in place" (§II-C).
//!
//! The phases implemented by [`run_cp`]:
//!
//! 1. **freeze** — swap the NVLog halves and atomically take every dirty
//!    inode's CP workload (in-memory COW boundary);
//! 2. **clean** — partition into cleaner messages (region split +
//!    batching) and run them on the [`CleanerPool`];
//! 3. **apply** — install cleaned block locations into the inodes;
//! 4. **metafile flush** — the allocation metafiles dirtied by this CP's
//!    commits and frees are themselves write-allocated and written, to a
//!    bounded fix-point ("any metafile updates made on behalf of a CP
//!    must reach persistent storage as part of that same CP"). Allocating
//!    a bitmap block's new location dirties the bitmap again, so a true
//!    fix-point never closes; after `metafile_fixpoint_max` rounds the
//!    residual blocks are written in place at their previous locations
//!    (first-time blocks take one final allocation whose bitmap dirt is
//!    dropped, counted in [`CpReport::residual_dirty_dropped`]);
//! 5. **commit** — atomically publish the new [`DiskImage`] superblock
//!    and discard the in-flight NVLog half.

use crate::cleaner::{partition_work, CleanerPool};
use crate::config::FsConfig;
use crate::inode::{BlockPtr, FileId};
use crate::nvlog::NvLog;
use crate::snapshot::Snapshot;
use crate::volume::{Volume, VolumeId};
use alligator::Allocator;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wafl_blockdev::Vbn;

/// Identifies the owner of a metafile block: the aggregate's active map,
/// or a volume's VVBN map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetafileSrc {
    /// The aggregate active map / AA metadata.
    Aggregate,
    /// A volume's VVBN active map.
    Volume(VolumeId),
}

/// On-disk locations of metafile blocks (metafiles are files too and are
/// written copy-on-write like everything else).
#[derive(Debug, Default)]
pub struct MetafileLocs {
    locs: Mutex<BTreeMap<(MetafileSrc, u64), Vbn>>, // lock-rank: cp.locs 20
}

impl MetafileLocs {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location of a metafile block.
    pub fn get(&self, src: MetafileSrc, block: u64) -> Option<Vbn> {
        self.locs.lock().get(&(src, block)).copied()
    }

    /// Record a new location; returns the previous one (to free).
    pub fn set(&self, src: MetafileSrc, block: u64, vbn: Vbn) -> Option<Vbn> {
        self.locs.lock().insert((src, block), vbn)
    }

    /// Snapshot for the superblock image.
    pub fn snapshot(&self) -> Vec<((MetafileSrc, u64), Vbn)> {
        self.locs.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Restore from a superblock image.
    pub fn restore(entries: &[((MetafileSrc, u64), Vbn)]) -> Self {
        Self {
            locs: Mutex::new(entries.iter().copied().collect()),
        }
    }

    /// Number of located metafile blocks.
    pub fn len(&self) -> usize {
        self.locs.lock().len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.locs.lock().is_empty()
    }
}

/// The point-in-time on-disk image committed by a CP: what the superblock
/// roots. (Real WAFL serializes this state into metafile/inodefile blocks;
/// the simulation snapshots it logically — see DESIGN.md §3.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskImage {
    /// CP sequence number.
    pub cp_id: u64,
    /// Per-volume file system trees.
    pub volumes: Vec<VolumeImage>,
    /// Metafile block locations.
    pub metafile_locs: Vec<((MetafileSrc, u64), Vbn)>,
}

/// One volume's committed state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VolumeImage {
    /// Volume id.
    pub id: VolumeId,
    /// Housing aggregate index.
    pub aggr: u32,
    /// VVBN space size.
    pub vvbn_total: u64,
    /// Every file with its committed block map.
    pub files: Vec<(FileId, Vec<(u64, BlockPtr)>)>,
    /// Retained snapshots (part of the on-disk state: a snapshot is a
    /// kept CP image).
    pub snapshots: Vec<Snapshot>,
}

/// The superblock slot: atomically replaceable committed image.
#[derive(Debug, Default)]
pub struct SuperblockStore {
    image: Mutex<Option<Arc<DiskImage>>>, // lock-rank: cp.image 21
}

impl SuperblockStore {
    /// Empty store (no CP committed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically overwrite the superblock (the commit point).
    pub fn commit(&self, image: DiskImage) {
        *self.image.lock() = Some(Arc::new(image));
    }

    /// The most recently committed image.
    pub fn load(&self) -> Option<Arc<DiskImage>> {
        self.image.lock().clone()
    }
}

/// A point inside the CP pipeline where an injected crash fires, for
/// recovery testing. Every point precedes the superblock commit, so a
/// crashed CP must be equivalent to *no* CP at all once the NVRAM log is
/// replayed (§II-C: "If the system crashes before the superblock is
/// written, the file system state from the most recently completed CP is
/// loaded and all subsequent operations are replayed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPoint {
    /// After the NVLog/inode freeze, before any cleaning.
    AfterFreeze,
    /// After cleaner messages ran (data blocks may be on media).
    AfterClean,
    /// After cleaned locations were installed in the inodes and the
    /// in-flight tetrises were completed.
    AfterApply,
    /// After the metafile fix-point flush — one step short of the
    /// superblock commit.
    AfterMetafileFlush,
}

impl CrashPoint {
    /// All crash points, in pipeline order.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::AfterFreeze,
        CrashPoint::AfterClean,
        CrashPoint::AfterApply,
        CrashPoint::AfterMetafileFlush,
    ];
}

/// What one CP did (returned by [`run_cp`]).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CpReport {
    /// CP sequence number.
    pub cp_id: u64,
    /// Dirty inodes cleaned.
    pub inodes_cleaned: usize,
    /// Dirty buffers cleaned (user data blocks written).
    pub buffers_cleaned: usize,
    /// Cleaner messages dispatched (after batching / region split).
    pub cleaner_messages: usize,
    /// Metafile blocks written by the flush phase.
    pub metafile_blocks_written: usize,
    /// Fix-point rounds used by the metafile flush.
    pub fixpoint_rounds: usize,
    /// Dirty metafile blocks whose re-dirt was dropped at the bound.
    pub residual_dirty_dropped: usize,
    /// Phase 1 wall time (NVLog/inode freeze).
    pub freeze_ns: u64,
    /// Phase 2 wall time (cleaner fan-out, tetris stripe fill,
    /// async-write submission).
    pub clean_ns: u64,
    /// Phase 3 wall time (install cleaned locations, complete
    /// in-flight tetrises).
    pub apply_ns: u64,
    /// Phase 4 wall time (metafile fix-point flush).
    pub metafile_ns: u64,
    /// Phase 5a wall time (async-I/O drain / media fsync barrier).
    pub barrier_ns: u64,
    /// Phase 5b wall time (disk-image build + superblock commit +
    /// NVLog half-swap).
    pub commit_ns: u64,
    /// Whole-CP wall time, measured around all phases. The per-phase
    /// times are nested inside this span, so
    /// `phase_ns().iter().sum() <= total_ns`; the gap is the (tiny)
    /// inter-phase bookkeeping, which `exp_telemetry` bounds at ≤ 5 %.
    pub total_ns: u64,
}

/// Profiler names of the CP phases, index-aligned with
/// [`CpReport::phase_ns`]. Phase 5 is split at its two very different
/// costs: the I/O `barrier` (scales with queue depth and device speed)
/// and the in-memory image `commit`.
pub const CP_PHASE_NAMES: [&str; 6] = ["freeze", "clean", "apply", "metafile", "barrier", "commit"];

impl CpReport {
    /// Per-phase wall times, index-aligned with [`CP_PHASE_NAMES`].
    pub fn phase_ns(&self) -> [u64; 6] {
        [
            self.freeze_ns,
            self.clean_ns,
            self.apply_ns,
            self.metafile_ns,
            self.barrier_ns,
            self.commit_ns,
        ]
    }

    /// Index into [`CP_PHASE_NAMES`] of the phase that bound this CP's
    /// latency (ties go to the earlier phase).
    pub fn binding_phase(&self) -> usize {
        let ns = self.phase_ns();
        let mut best = 0;
        for (i, v) in ns.iter().enumerate() {
            if *v > ns[best] {
                best = i;
            }
        }
        best
    }

    /// Fraction of [`CpReport::total_ns`] the profiled phases account
    /// for (1.0 when total is zero — a degenerate instant CP has no
    /// unattributed time).
    pub fn phase_coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        self.phase_ns().iter().sum::<u64>() as f64 / self.total_ns as f64
    }

    /// Publish this CP's critical-path profile to the global metrics
    /// registry: one `cp_phase_<name>_ns` histogram sample per phase, a
    /// `cp_phase_binding_<name>` counter tick for the binding phase,
    /// and `cp_phase_profiled` for the CP itself. Called by every
    /// committed CP; the telemetry sampler picks the series up from
    /// the registry (DESIGN.md §16).
    pub fn record_profile(&self) {
        let reg = obs::Registry::global();
        for (name, ns) in CP_PHASE_NAMES.iter().zip(self.phase_ns()) {
            reg.histogram(&format!("cp_phase_{name}_ns")).record(ns);
        }
        reg.histogram("cp_total_ns").record(self.total_ns);
        reg.counter(&format!(
            "cp_phase_binding_{}",
            CP_PHASE_NAMES[self.binding_phase()]
        ))
        .inc();
        reg.counter("cp_phase_profiled").inc();
    }
}

/// Execute one consistency point. See the module docs for phases.
///
/// `cp_id` must increase monotonically across calls.
#[allow(clippy::too_many_arguments)]
pub fn run_cp(
    cp_id: u64,
    cfg: &FsConfig,
    volumes: &[Arc<Volume>],
    nvlog: &NvLog,
    alloc: &Arc<Allocator>,
    pool: &CleanerPool,
    mf_locs: &MetafileLocs,
    sb: &SuperblockStore,
) -> CpReport {
    run_cp_inner(cp_id, cfg, volumes, nvlog, alloc, pool, mf_locs, sb, None)
        .expect("CP without an injected crash always commits")
}

/// [`run_cp`] with a crash injected at `crash_at`: the CP is abandoned at
/// that point and `None` is returned. The superblock is *not* committed
/// and the NVLog's in-flight half is *not* discarded, exactly as a real
/// crash would leave them; the caller is expected to drop the instance
/// and recover (e.g. [`crate::Filesystem::crash_and_recover`]).
#[allow(clippy::too_many_arguments)]
pub fn run_cp_crash_at(
    cp_id: u64,
    cfg: &FsConfig,
    volumes: &[Arc<Volume>],
    nvlog: &NvLog,
    alloc: &Arc<Allocator>,
    pool: &CleanerPool,
    mf_locs: &MetafileLocs,
    sb: &SuperblockStore,
    crash_at: CrashPoint,
) -> Option<CpReport> {
    run_cp_inner(
        cp_id,
        cfg,
        volumes,
        nvlog,
        alloc,
        pool,
        mf_locs,
        sb,
        Some(crash_at),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_cp_inner(
    cp_id: u64,
    cfg: &FsConfig,
    volumes: &[Arc<Volume>],
    nvlog: &NvLog,
    alloc: &Arc<Allocator>,
    pool: &CleanerPool,
    mf_locs: &MetafileLocs,
    sb: &SuperblockStore,
    crash_at: Option<CrashPoint>,
) -> Option<CpReport> {
    let mut report = CpReport {
        cp_id,
        ..Default::default()
    };
    let cp_t0 = std::time::Instant::now();

    // Phase 1: freeze.
    let t0 = std::time::Instant::now();
    let sp1 = obs::trace_span!(obs::EventKind::CpPhase, 1);
    nvlog.freeze();
    let mut frozen = Vec::new();
    for v in volumes {
        for (file, buffers) in v.freeze_for_cp() {
            frozen.push((Arc::clone(v), file, buffers));
        }
    }
    report.inodes_cleaned = frozen.len();
    report.buffers_cleaned = frozen.iter().map(|(_, _, b)| b.len()).sum();
    drop(sp1);
    report.freeze_ns = t0.elapsed().as_nanos() as u64;
    if crash_at == Some(CrashPoint::AfterFreeze) {
        // Arm the flight recorder before abandoning the CP (lock-free;
        // dumped at next service). Arg = crash-point pipeline ordinal.
        obs::trigger(obs::Trigger::CrashPoint, 1);
        crash_drop_io(alloc);
        return None;
    }

    // Phase 2: clean. With an async engine attached, each completed
    // tetris is only *submitted* here — its media write overlaps the
    // cleaning (and parity computation) of the stripes after it.
    let t0 = std::time::Instant::now();
    let sp2 = obs::trace_span!(obs::EventKind::CpPhase, 2);
    let items = partition_work(frozen, &cfg.cleaner);
    report.cleaner_messages = items.len();
    let results = pool.clean_all(items);
    // Keep the completion ring shallow; errors are accounted per
    // completion here, not per submission.
    alloc.infra().harvest_io();
    drop(sp2);
    report.clean_ns = t0.elapsed().as_nanos() as u64;
    if crash_at == Some(CrashPoint::AfterClean) {
        // See the AfterFreeze branch.
        obs::trigger(obs::Trigger::CrashPoint, 2);
        crash_drop_io(alloc);
        return None;
    }

    // Phase 3: apply cleaned locations.
    let t0 = std::time::Instant::now();
    let sp3 = obs::trace_span!(obs::EventKind::CpPhase, 3);
    let by_vol: BTreeMap<VolumeId, &Arc<Volume>> = volumes.iter().map(|v| (v.id(), v)).collect();
    for r in &results {
        let vol = by_vol[&r.vol];
        if let Some(inode) = vol.inode(r.file) {
            inode.lock().apply_cleaned(&r.cleaned);
        }
    }
    // All bucket commits and staged frees must reach the metafiles before
    // we flush them, and every partially filled tetris must be completed
    // so the CP's data is on disk before the superblock commit: buckets
    // still sitting in the cache are returned unused, which finishes
    // their tetrises (WAFL's CP-end flush of the partial write I/O).
    flush_bucket_cache(alloc);
    alloc.infra().harvest_io();
    drop(sp3);
    report.apply_ns = t0.elapsed().as_nanos() as u64;
    if crash_at == Some(CrashPoint::AfterApply) {
        // See the AfterFreeze branch.
        obs::trigger(obs::Trigger::CrashPoint, 3);
        crash_drop_io(alloc);
        return None;
    }

    // Phase 4: metafile flush (bounded fix-point).
    let t0 = std::time::Instant::now();
    let sp4 = obs::trace_span!(obs::EventKind::CpPhase, 4);
    flush_metafiles(cfg, volumes, alloc, mf_locs, cp_id, &mut report);
    // The metafile flush allocated through buckets of its own; complete
    // those tetrises too.
    flush_bucket_cache(alloc);
    drop(sp4);
    report.metafile_ns = t0.elapsed().as_nanos() as u64;
    if crash_at == Some(CrashPoint::AfterMetafileFlush) {
        // See the AfterFreeze branch.
        obs::trigger(obs::Trigger::CrashPoint, 4);
        crash_drop_io(alloc);
        return None;
    }

    // Phase 5: superblock commit. This is the CP's one durability
    // barrier: every stripe submitted during phases 2–4 must be on media
    // (and the file backend fsynced) before the superblock can root the
    // new image. Until this point nothing waited on in-flight writes.
    // The profiler splits it at the barrier: `barrier_ns` is where a
    // deep I/O queue pays (or hides) its debt, `commit_ns` is pure
    // in-memory image assembly.
    let t0 = std::time::Instant::now();
    let _sp5 = obs::trace_span!(obs::EventKind::CpPhase, 5);
    io_barrier(alloc);
    report.barrier_ns = t0.elapsed().as_nanos() as u64;
    let t0 = std::time::Instant::now();
    let image = DiskImage {
        cp_id,
        volumes: volumes
            .iter()
            .map(|v| VolumeImage {
                id: v.id(),
                aggr: v.aggr(),
                vvbn_total: v.vvbn().total(),
                files: v
                    .file_ids()
                    .into_iter()
                    .map(|f| {
                        let inode = v.inode(f).expect("listed file exists");
                        let map = inode
                            .lock()
                            .block_map()
                            .iter()
                            .map(|(k, p)| (*k, *p))
                            .collect();
                        (f, map)
                    })
                    .collect(),
                snapshots: v.snapshots().snapshot_images(),
            })
            .collect(),
        metafile_locs: mf_locs.snapshot(),
    };
    sb.commit(image);
    nvlog.commit_cp();
    report.commit_ns = t0.elapsed().as_nanos() as u64;
    report.total_ns = cp_t0.elapsed().as_nanos() as u64;
    report.record_profile();
    Some(report)
}

/// Complete all in-flight tetrises by returning every cached bucket
/// unused. Their reserved VBNs are released (no metafile dirt), and each
/// tetris's outstanding count reaches zero, sending the write I/O.
fn flush_bucket_cache(alloc: &Arc<Allocator>) {
    // `flush_cache` retires buckets (no Immediate-mode re-refill), so
    // this terminates under either reinsertion policy.
    alloc.flush_cache();
}

/// The pre-commit barrier: wait for every async write submitted during
/// this CP and make the media durable. Without an async engine the only
/// outstanding obligation is the file mirror's fsync.
fn io_barrier(alloc: &Arc<Allocator>) {
    let infra = alloc.infra();
    if infra.io().aio().is_some() {
        // `drain` already ends with the media fsync.
        infra.drain_io();
    } else {
        let _ = infra.io().sync_media();
    }
}

/// A crash point fired: everything submitted but not yet on media is
/// lost. Queued async writes are dropped and the file mirror (if any)
/// stops persisting — tearing at most one mid-flight stripe. Safe
/// because CP writes are copy-on-write: nothing the *committed* image
/// references is touched, so the dropped blocks are unreachable after
/// recovery and NVLog replay restores their logical content.
fn crash_drop_io(alloc: &Arc<Allocator>) {
    let infra = alloc.infra();
    if let Some(aio) = infra.io().aio() {
        aio.crash_drop_inflight();
    } else {
        infra.io().crash_mirror();
    }
}

/// Phase 4: write-allocate and write every dirty metafile block.
fn flush_metafiles(
    cfg: &FsConfig,
    volumes: &[Arc<Volume>],
    alloc: &Arc<Allocator>,
    mf_locs: &MetafileLocs,
    cp_id: u64,
    report: &mut CpReport,
) {
    /// Distinguished file-id namespace for metafile stamps ("META").
    const MF_STAMP_NS: u64 = 0x4D45_5441;

    let take_dirty = |volumes: &[Arc<Volume>]| -> Vec<(MetafileSrc, u64)> {
        let mut out: Vec<(MetafileSrc, u64)> = alloc
            .infra()
            .aggmap()
            .take_dirty_blocks()
            .into_iter()
            .map(|b| (MetafileSrc::Aggregate, b))
            .collect();
        for v in volumes {
            out.extend(
                v.vvbn()
                    .take_dirty_blocks()
                    .into_iter()
                    .map(|b| (MetafileSrc::Volume(v.id()), b)),
            );
        }
        out
    };

    let io = Arc::clone(alloc.infra().io());
    let mut bucket = None;
    let mut stage = alloc.new_stage();
    for round in 0..cfg.metafile_fixpoint_max {
        let dirty = take_dirty(volumes);
        if dirty.is_empty() {
            break;
        }
        report.fixpoint_rounds = round + 1;
        let last_round = round + 1 == cfg.metafile_fixpoint_max;
        for (src, block) in dirty {
            let stamp_src = match src {
                MetafileSrc::Aggregate => MF_STAMP_NS,
                MetafileSrc::Volume(v) => MF_STAMP_NS ^ (1 + v.0 as u64),
            };
            let stamp = wafl_blockdev::stamp(stamp_src, block, cp_id);
            let prev = mf_locs.get(src, block);
            if last_round {
                // Bound reached: write in place (or allocate once for a
                // block that has never had a location, dropping the
                // resulting bitmap dirt after the loop).
                match prev {
                    Some(vbn) => {
                        // Blocks written via alloc_one reach disk through
                        // the bucket's tetris at PUT; in-place rewrites
                        // need a direct write.
                        // An in-place metafile rewrite that fails
                        // terminally (e.g. a double drive failure) leaves
                        // the CP unable to meet its durability contract;
                        // halt the aggregate rather than commit a
                        // superblock rooting unwritten metadata.
                        io.write_vbn(vbn, stamp)
                            .expect("CP metafile in-place write failed unrecoverably");
                        report.metafile_blocks_written += 1;
                    }
                    None => {
                        if let Some(vbn) = alloc_one(alloc, &mut bucket, stamp) {
                            mf_locs.set(src, block, vbn);
                            report.metafile_blocks_written += 1;
                        }
                    }
                }
            } else {
                // Copy-on-write: new location, free the old. The data
                // itself reaches disk through the bucket's tetris.
                if let Some(vbn) = alloc_one(alloc, &mut bucket, stamp) {
                    if let Some(old) = mf_locs.set(src, block, vbn) {
                        alloc.free_vbn(&mut stage, old);
                    }
                    report.metafile_blocks_written += 1;
                }
            }
        }
        // Settle this round's allocations so the next round sees the
        // metafile dirt they produced — otherwise the fix-point
        // terminates vacuously after one round and bitmap updates leak
        // into the next CP.
        if let Some(b) = bucket.take() {
            alloc.put_bucket(b);
        }
        alloc.flush_stage(&mut stage);
        alloc.drain();
        if last_round {
            // Drop residual dirt produced by the in-place round's
            // first-time allocations.
            let residual = take_dirty(volumes);
            report.residual_dirty_dropped += residual.len();
            return;
        }
    }
}

/// Allocate a single VBN through the bucket API (metafile cleaning uses
/// the same allocator as user data).
fn alloc_one(
    alloc: &Arc<Allocator>,
    bucket: &mut Option<alligator::Bucket>,
    stamp: wafl_blockdev::BlockStamp,
) -> Option<Vbn> {
    loop {
        if let Some(b) = bucket.as_mut() {
            if let Some(v) = b.use_vbn(stamp) {
                return Some(v);
            }
        }
        if let Some(old) = bucket.take() {
            alloc.put_bucket(old);
        }
        *bucket = Some(alloc.get_bucket()?);
    }
}
