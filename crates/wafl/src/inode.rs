//! Inodes: per-file metadata and the dirty-buffer front/CP split.
//!
//! "Writing to a file 'dirties' the in-memory inode associated with the
//! file and adds it to a list of dirty inodes to process in the next
//! consistency point" (§II-C). During a CP, "in-memory data that is to be
//! included in a CP is atomically identified at the start of the CP and
//! isolated from further modifications … any attempts to change an
//! inode's properties or a buffer's contents during a CP result in the
//! object being COW'd in memory."
//!
//! [`Inode`] realizes that with a **front** dirty map (accepts client
//! writes at any time) and a **CP snapshot** taken by
//! [`Inode::freeze_for_cp`]: the front map is moved out wholesale at CP
//! start, so writes that arrive during the CP dirty the (new, empty)
//! front map and are persisted by the *next* CP — exactly the paper's
//! semantics, with the copy made eagerly at the snapshot boundary instead
//! of lazily per object.

use crate::buffer::{CleanedBlock, DirtyBuffer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wafl_blockdev::{BlockStamp, Vbn};

/// File identifier, unique within a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// A block's on-disk location: `(vvbn, pvbn)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPtr {
    /// Virtual VBN (offset space of the volume).
    pub vvbn: u64,
    /// Physical VBN (aggregate space).
    pub pvbn: Vbn,
    /// Stamp last persisted there (kept for integrity checks).
    pub stamp: BlockStamp,
}

/// An in-memory inode: attributes, block map, and dirty buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inode {
    id: FileId,
    /// Persistent block map: fbn → current on-disk location. Updated only
    /// by CP apply; this is the state the superblock commit snapshots.
    block_map: BTreeMap<u64, BlockPtr>,
    /// Front dirty buffers: modified since the last CP freeze.
    front: BTreeMap<u64, DirtyBuffer>,
    /// Highest fbn ever written + 1 (a simple size proxy).
    size_fbns: u64,
}

impl Inode {
    /// Fresh empty inode.
    pub fn new(id: FileId) -> Self {
        Self {
            id,
            block_map: BTreeMap::new(),
            front: BTreeMap::new(),
            size_fbns: 0,
        }
    }

    /// File id.
    #[inline]
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Number of dirty buffers in the front map.
    #[inline]
    pub fn dirty_count(&self) -> usize {
        self.front.len()
    }

    /// Is the inode dirty (needs the next CP)?
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.front.is_empty()
    }

    /// Size proxy: one past the highest fbn ever written.
    #[inline]
    pub fn size_fbns(&self) -> u64 {
        self.size_fbns
    }

    /// The persistent block map (CP-committed state).
    #[inline]
    pub fn block_map(&self) -> &BTreeMap<u64, BlockPtr> {
        &self.block_map
    }

    /// Record a client write of `stamp` at `fbn`. Captures the block's
    /// previous location for the overwrite-free path. Re-dirtying a block
    /// already dirty in the front map just replaces the payload (the old
    /// location was captured by the first dirtying).
    pub fn write(&mut self, fbn: u64, stamp: BlockStamp) {
        self.size_fbns = self.size_fbns.max(fbn + 1);
        match self.front.get_mut(&fbn) {
            Some(existing) => existing.stamp = stamp,
            None => {
                let buf = match self.block_map.get(&fbn) {
                    Some(ptr) => DirtyBuffer::overwrite(fbn, stamp, ptr.vvbn, ptr.pvbn),
                    None => DirtyBuffer::first_write(fbn, stamp),
                };
                self.front.insert(fbn, buf);
            }
        }
    }

    /// Read the current logical contents of `fbn`: dirty front data wins
    /// over the persistent map. Returns `None` for holes.
    pub fn read(&self, fbn: u64) -> Option<BlockStamp> {
        if let Some(b) = self.front.get(&fbn) {
            return Some(b.stamp);
        }
        self.block_map.get(&fbn).map(|p| p.stamp)
    }

    /// The persisted location of `fbn`, if any (ignores dirty data).
    pub fn lookup(&self, fbn: u64) -> Option<BlockPtr> {
        self.block_map.get(&fbn).copied()
    }

    /// Truncate the file to `new_size_fbns` blocks. Returns
    /// `(fbn, vvbn, pvbn)` for each committed block beyond the new size;
    /// the caller frees them through the allocator's stage path (unless a
    /// snapshot still references them). Dirty front buffers beyond the
    /// size are simply dropped (they were never allocated).
    pub fn truncate(&mut self, new_size_fbns: u64) -> Vec<(u64, u64, Vbn)> {
        self.front.retain(|&fbn, _| fbn < new_size_fbns);
        let doomed: Vec<u64> = self
            .block_map
            .range(new_size_fbns..)
            .map(|(&fbn, _)| fbn)
            .collect();
        let mut freed = Vec::with_capacity(doomed.len());
        for fbn in doomed {
            let ptr = self.block_map.remove(&fbn).expect("listed key");
            freed.push((fbn, ptr.vvbn, ptr.pvbn));
        }
        self.size_fbns = self.size_fbns.min(new_size_fbns);
        freed
    }

    /// CP start: take the front dirty buffers as this CP's workload. New
    /// writes after this call land in a fresh front map (in-memory COW).
    pub fn freeze_for_cp(&mut self) -> Vec<DirtyBuffer> {
        std::mem::take(&mut self.front).into_values().collect()
    }

    /// CP apply: install cleaned locations into the persistent block map.
    ///
    /// If a block was re-dirtied *during* the CP, its front buffer's
    /// old-location fields are retargeted to the location this CP just
    /// assigned: the pre-CP location has been freed by this CP, and it is
    /// the new location that the *next* CP must free — otherwise the old
    /// block would be double-freed and the new one leaked.
    pub fn apply_cleaned(&mut self, cleaned: &[CleanedBlock]) {
        for c in cleaned {
            self.block_map.insert(
                c.fbn,
                BlockPtr {
                    vvbn: c.vvbn,
                    pvbn: c.pvbn,
                    stamp: c.stamp,
                },
            );
            if let Some(fb) = self.front.get_mut(&c.fbn) {
                fb.old_vvbn = Some(c.vvbn);
                fb.old_pvbn = Some(c.pvbn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_sees_dirty_data() {
        let mut i = Inode::new(FileId(1));
        i.write(3, 0x33);
        assert_eq!(i.read(3), Some(0x33));
        assert_eq!(i.read(4), None);
        assert!(i.is_dirty());
        assert_eq!(i.size_fbns(), 4);
    }

    #[test]
    fn rewrite_before_cp_keeps_first_old_location() {
        let mut i = Inode::new(FileId(1));
        i.apply_cleaned(&[CleanedBlock {
            fbn: 0,
            vvbn: 5,
            pvbn: Vbn(100),
            stamp: 0xaa,
        }]);
        i.write(0, 0xbb);
        i.write(0, 0xcc); // second write to the same dirty block
        let frozen = i.freeze_for_cp();
        assert_eq!(frozen.len(), 1);
        assert_eq!(frozen[0].stamp, 0xcc);
        assert_eq!(frozen[0].old_pvbn, Some(Vbn(100)), "old loc captured once");
    }

    #[test]
    fn freeze_isolates_cp_from_new_writes() {
        let mut i = Inode::new(FileId(1));
        i.write(0, 0x1);
        i.write(1, 0x2);
        let frozen = i.freeze_for_cp();
        assert_eq!(frozen.len(), 2);
        assert!(!i.is_dirty());
        // A write during the CP dirties the new front map only.
        i.write(0, 0x9);
        assert_eq!(i.dirty_count(), 1);
        assert_eq!(i.read(0), Some(0x9));
    }

    #[test]
    fn write_during_cp_captures_precp_location_not_inflight() {
        let mut i = Inode::new(FileId(1));
        i.apply_cleaned(&[CleanedBlock {
            fbn: 0,
            vvbn: 1,
            pvbn: Vbn(10),
            stamp: 0xaa,
        }]);
        i.write(0, 0xbb);
        let _cp = i.freeze_for_cp();
        // During the CP, a new write sees the *committed* map (the CP's
        // new location is not applied yet) — so the old location it will
        // free is the pre-CP one... but the CP will free Vbn(10) itself.
        // The next CP must free the location the in-flight CP assigns,
        // which becomes visible through apply_cleaned:
        i.apply_cleaned(&[CleanedBlock {
            fbn: 0,
            vvbn: 2,
            pvbn: Vbn(20),
            stamp: 0xbb,
        }]);
        i.write(0, 0xcc);
        let next = i.freeze_for_cp();
        assert_eq!(next[0].old_pvbn, Some(Vbn(20)));
    }

    #[test]
    fn apply_cleaned_updates_map_and_read_path() {
        let mut i = Inode::new(FileId(2));
        i.write(7, 0x77);
        let frozen = i.freeze_for_cp();
        i.apply_cleaned(&[CleanedBlock {
            fbn: 7,
            vvbn: 3,
            pvbn: Vbn(42),
            stamp: frozen[0].stamp,
        }]);
        assert_eq!(i.read(7), Some(0x77));
        assert_eq!(i.lookup(7).unwrap().pvbn, Vbn(42));
    }
}
