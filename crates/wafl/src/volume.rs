//! FlexVol volumes: file containers within an aggregate.
//!
//! "WAFL houses and exports multiple file systems called FlexVol volumes
//! from within a shared pool of storage called an aggregate … A block in
//! a FlexVol volume has both a VBN to specify the physical location of
//! the block and a Virtual VBN to specify the block's offset within the
//! volume" (§II-B).

use crate::buffer::DirtyBuffer;
use crate::inode::{FileId, Inode};
use crate::snapshot::{Snapshot, SnapshotSet};
use crate::vvbn::VvbnSpace;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use wafl_blockdev::BlockStamp;

/// Volume identifier within the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VolumeId(pub u32);

/// A FlexVol volume: inodes + VVBN space + dirty-inode list.
pub struct Volume {
    id: VolumeId,
    /// Aggregate index in the Waffinity topology housing this volume.
    aggr: u32,
    inodes: RwLock<BTreeMap<FileId, Arc<Mutex<Inode>>>>, // lock-rank: volume.inodes 15
    vvbn: VvbnSpace,
    /// "a list of dirty inodes to process in the next consistency point"
    /// (§II-C). A set: an inode appears once however many blocks dirty.
    dirty: Mutex<BTreeSet<FileId>>, // lock-rank: volume.dirty 16
    /// Retained point-in-time images (see [`crate::snapshot`]).
    snapshots: SnapshotSet,
}

impl Volume {
    /// Create a volume with a VVBN space of `vvbn_total` blocks.
    pub fn new(id: VolumeId, aggr: u32, vvbn_total: u64) -> Arc<Self> {
        Arc::new(Self {
            id,
            aggr,
            inodes: RwLock::new(BTreeMap::new()),
            vvbn: VvbnSpace::new(vvbn_total),
            dirty: Mutex::new(BTreeSet::new()),
            snapshots: SnapshotSet::new(),
        })
    }

    /// Volume id.
    #[inline]
    pub fn id(&self) -> VolumeId {
        self.id
    }

    /// Housing aggregate (Waffinity index).
    #[inline]
    pub fn aggr(&self) -> u32 {
        self.aggr
    }

    /// The volume's VVBN allocator.
    #[inline]
    pub fn vvbn(&self) -> &VvbnSpace {
        &self.vvbn
    }

    /// Create an empty file. Returns `false` if it already exists.
    pub fn create_file(&self, file: FileId) -> bool {
        let mut inodes = self.inodes.write();
        if inodes.contains_key(&file) {
            return false;
        }
        inodes.insert(file, Arc::new(Mutex::new(Inode::new(file))));
        true
    }

    /// Does the file exist?
    pub fn has_file(&self, file: FileId) -> bool {
        self.inodes.read().contains_key(&file)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.inodes.read().len()
    }

    /// Handle to an inode.
    pub fn inode(&self, file: FileId) -> Option<Arc<Mutex<Inode>>> {
        self.inodes.read().get(&file).cloned()
    }

    /// Client write: dirty the block and add the inode to the dirty list.
    ///
    /// # Panics
    /// Panics if the file does not exist (callers route creates first).
    pub fn write(&self, file: FileId, fbn: u64, stamp: BlockStamp) {
        let inode = self
            .inode(file)
            .unwrap_or_else(|| panic!("write to missing file {file:?}"));
        inode.lock().write(fbn, stamp);
        self.dirty.lock().insert(file);
    }

    /// Client read of current logical contents (dirty data wins).
    pub fn read(&self, file: FileId, fbn: u64) -> Option<BlockStamp> {
        self.inode(file).and_then(|i| i.lock().read(fbn))
    }

    /// Truncate a file, freeing its VVBNs beyond the new size in the
    /// volume map. Returns the freed *physical* VBNs for the caller to
    /// stage through the allocator — blocks still referenced by a
    /// snapshot are retained by it and excluded. `None` if the file does
    /// not exist.
    pub fn truncate_file(
        &self,
        file: FileId,
        new_size_fbns: u64,
    ) -> Option<Vec<wafl_blockdev::Vbn>> {
        let inode = self.inode(file)?;
        let freed = inode.lock().truncate(new_size_fbns);
        let mut pvbns = Vec::with_capacity(freed.len());
        for (fbn, vvbn, pvbn) in freed {
            if self.snapshots.any_references(file, fbn, pvbn) {
                continue; // the snapshot owns this block now
            }
            self.vvbn.free(vvbn);
            pvbns.push(pvbn);
        }
        // The inode may have gone clean (all dirty buffers beyond size).
        if let Some(i) = self.inode(file) {
            if !i.lock().is_dirty() {
                self.dirty.lock().remove(&file);
            }
        }
        Some(pvbns)
    }

    /// Delete a file entirely. Returns its freed physical VBNs, or `None`
    /// if it does not exist.
    pub fn delete_file(&self, file: FileId) -> Option<Vec<wafl_blockdev::Vbn>> {
        let pvbns = self.truncate_file(file, 0)?;
        self.inodes.write().remove(&file);
        self.dirty.lock().remove(&file);
        Some(pvbns)
    }

    /// Number of inodes on the dirty list.
    pub fn dirty_count(&self) -> usize {
        self.dirty.lock().len()
    }

    /// CP freeze: atomically take the dirty-inode list and each inode's
    /// dirty buffers. New writes dirty inodes for the *next* CP.
    ///
    /// Overwrite frees of blocks still referenced by a snapshot are
    /// suppressed here: the old block transfers to the snapshot instead
    /// of returning to the free pool.
    pub fn freeze_for_cp(&self) -> Vec<(FileId, Vec<DirtyBuffer>)> {
        let ids: Vec<FileId> = std::mem::take(&mut *self.dirty.lock())
            .into_iter()
            .collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(inode) = self.inode(id) {
                let mut buffers = inode.lock().freeze_for_cp();
                if !self.snapshots.is_empty() {
                    for b in &mut buffers {
                        if let Some(old) = b.old_pvbn {
                            if self.snapshots.any_references(id, b.fbn, old) {
                                b.old_pvbn = None;
                                b.old_vvbn = None;
                            }
                        }
                    }
                }
                if !buffers.is_empty() {
                    out.push((id, buffers));
                }
            }
        }
        out
    }

    /// Iterate over all file ids (verification/recovery helper).
    pub fn file_ids(&self) -> Vec<FileId> {
        self.inodes.read().keys().copied().collect()
    }

    /// The volume's snapshot set.
    #[inline]
    pub fn snapshots(&self) -> &SnapshotSet {
        &self.snapshots
    }

    /// Build a snapshot of the *committed* state under `name` (caller
    /// ensures a CP ran just before, so the image is current). Returns
    /// `false` if the name exists.
    pub fn take_snapshot(&self, name: &str, cp_id: u64) -> bool {
        let mut files = std::collections::BTreeMap::new();
        for f in self.file_ids() {
            let inode = self.inode(f).expect("listed file exists");
            let map = inode.lock().block_map().clone();
            if !map.is_empty() {
                files.insert(f, map);
            }
        }
        self.snapshots.add(Snapshot {
            name: name.to_string(),
            cp_id,
            files,
        })
    }

    /// Delete a snapshot, returning the physical/virtual blocks that are
    /// now unreferenced (not in the active maps nor in any remaining
    /// snapshot) for the caller to free. `None` if no such snapshot.
    pub fn delete_snapshot(&self, name: &str) -> Option<Vec<(u64, wafl_blockdev::Vbn)>> {
        let snap = self.snapshots.remove(name)?;
        let mut reclaimed = Vec::new();
        for (file, fbn, ptr) in snap.iter_blocks() {
            // Still live in the active file system?
            let active = self
                .inode(file)
                .and_then(|i| i.lock().lookup(fbn))
                .map(|p| p.pvbn == ptr.pvbn)
                .unwrap_or(false);
            if active {
                continue;
            }
            // Still referenced by another snapshot?
            if self.snapshots.any_references(file, fbn, ptr.pvbn) {
                continue;
            }
            reclaimed.push((ptr.vvbn, ptr.pvbn));
        }
        Some(reclaimed)
    }
}

impl std::fmt::Debug for Volume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Volume")
            .field("id", &self.id)
            .field("files", &self.file_count())
            .field("dirty", &self.dirty_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let v = Volume::new(VolumeId(0), 0, 1000);
        assert!(v.create_file(FileId(1)));
        assert!(!v.create_file(FileId(1)), "duplicate create rejected");
        v.write(FileId(1), 5, 0x55);
        assert_eq!(v.read(FileId(1), 5), Some(0x55));
        assert_eq!(v.read(FileId(1), 6), None);
        assert_eq!(v.dirty_count(), 1);
    }

    #[test]
    fn dirty_list_dedupes_inodes() {
        let v = Volume::new(VolumeId(0), 0, 1000);
        v.create_file(FileId(1));
        for fbn in 0..10 {
            v.write(FileId(1), fbn, fbn as u128 + 1);
        }
        assert_eq!(v.dirty_count(), 1);
    }

    #[test]
    fn freeze_takes_dirty_work_and_resets() {
        let v = Volume::new(VolumeId(0), 0, 1000);
        v.create_file(FileId(1));
        v.create_file(FileId(2));
        v.write(FileId(1), 0, 0xa);
        v.write(FileId(2), 0, 0xb);
        v.write(FileId(2), 1, 0xc);
        let frozen = v.freeze_for_cp();
        assert_eq!(frozen.len(), 2);
        let total: usize = frozen.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(v.dirty_count(), 0);
        // Writes during the CP re-dirty for the next CP.
        v.write(FileId(1), 9, 0xd);
        assert_eq!(v.dirty_count(), 1);
    }

    #[test]
    #[should_panic(expected = "missing file")]
    fn write_to_missing_file_panics() {
        let v = Volume::new(VolumeId(0), 0, 1000);
        v.write(FileId(9), 0, 1);
    }

    #[test]
    fn concurrent_writers_to_distinct_files() {
        let v = Volume::new(VolumeId(0), 0, 100_000);
        for f in 0..8u64 {
            v.create_file(FileId(f));
        }
        let mut handles = Vec::new();
        for f in 0..8u64 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for fbn in 0..100 {
                    v.write(FileId(f), fbn, wafl_blockdev::stamp(f, fbn, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.dirty_count(), 8);
        for f in 0..8u64 {
            assert_eq!(v.read(FileId(f), 42), Some(wafl_blockdev::stamp(f, 42, 1)));
        }
    }
}
