//! Snapshots: retained consistency-point images.
//!
//! "Each CP is a self-consistent point-in-time image of the file system"
//! (§II-C of the paper). A WAFL snapshot *is* such an image kept alive
//! after newer CPs supersede it: because the file system never writes in
//! place, retaining an old image costs only the metadata that roots it —
//! the data blocks are shared with the active file system until they are
//! overwritten.
//!
//! Snapshots interact with write allocation through the *free* path the
//! paper describes (§IV-A): overwriting a block normally frees its old
//! VBN through a stage, but a block still referenced by a snapshot must
//! not be freed — it now belongs to the snapshot. Deleting a snapshot
//! reclaims exactly the blocks no other image references (the province of
//! the paper's free-space-reclamation citation [10]).

use crate::inode::{BlockPtr, FileId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use wafl_blockdev::Vbn;

/// A retained point-in-time image of one volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// User-visible name (unique per volume).
    pub name: String,
    /// The CP whose image this snapshot retains.
    pub cp_id: u64,
    /// Per-file committed block maps at snapshot time.
    pub files: BTreeMap<FileId, BTreeMap<u64, BlockPtr>>,
}

impl Snapshot {
    /// Does this snapshot reference physical block `pvbn` at
    /// `(file, fbn)`?
    #[inline]
    pub fn references(&self, file: FileId, fbn: u64, pvbn: Vbn) -> bool {
        self.files
            .get(&file)
            .and_then(|m| m.get(&fbn))
            .map(|p| p.pvbn == pvbn)
            .unwrap_or(false)
    }

    /// Look up a block's snapshot-time location.
    pub fn lookup(&self, file: FileId, fbn: u64) -> Option<BlockPtr> {
        self.files.get(&file).and_then(|m| m.get(&fbn)).copied()
    }

    /// Total blocks referenced by the snapshot.
    pub fn block_count(&self) -> usize {
        self.files.values().map(|m| m.len()).sum()
    }

    /// Iterate over every `(file, fbn, ptr)` the snapshot references.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (FileId, u64, BlockPtr)> + '_ {
        self.files
            .iter()
            .flat_map(|(f, m)| m.iter().map(move |(fbn, p)| (*f, *fbn, *p)))
    }
}

/// The snapshot set of one volume.
#[derive(Debug, Default)]
pub struct SnapshotSet {
    snaps: parking_lot::RwLock<Vec<Arc<Snapshot>>>, // lock-rank: snapshot.snaps 23
}

impl SnapshotSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snaps.read().len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.snaps.read().is_empty()
    }

    /// Add a snapshot. Returns `false` if the name exists.
    pub fn add(&self, snap: Snapshot) -> bool {
        let mut s = self.snaps.write();
        if s.iter().any(|x| x.name == snap.name) {
            return false;
        }
        s.push(Arc::new(snap));
        true
    }

    /// Get a snapshot by name.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.snaps.read().iter().find(|s| s.name == name).cloned()
    }

    /// Remove a snapshot by name, returning it.
    pub fn remove(&self, name: &str) -> Option<Arc<Snapshot>> {
        let mut s = self.snaps.write();
        let idx = s.iter().position(|x| x.name == name)?;
        Some(s.remove(idx))
    }

    /// All snapshots, oldest first.
    pub fn list(&self) -> Vec<Arc<Snapshot>> {
        self.snaps.read().clone()
    }

    /// Is `pvbn` at `(file, fbn)` referenced by *any* snapshot?
    pub fn any_references(&self, file: FileId, fbn: u64, pvbn: Vbn) -> bool {
        self.snaps
            .read()
            .iter()
            .any(|s| s.references(file, fbn, pvbn))
    }

    /// Restore from a superblock image.
    pub fn restore(snapshots: Vec<Snapshot>) -> Self {
        Self {
            snaps: parking_lot::RwLock::new(snapshots.into_iter().map(Arc::new).collect()),
        }
    }

    /// Plain clones for the superblock image.
    pub fn snapshot_images(&self) -> Vec<Snapshot> {
        self.snaps.read().iter().map(|s| (**s).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str, file: u64, fbn: u64, pvbn: u64) -> Snapshot {
        let mut files = BTreeMap::new();
        let mut m = BTreeMap::new();
        m.insert(
            fbn,
            BlockPtr {
                vvbn: pvbn + 1000,
                pvbn: Vbn(pvbn),
                stamp: 0xAB,
            },
        );
        files.insert(FileId(file), m);
        Snapshot {
            name: name.to_string(),
            cp_id: 1,
            files,
        }
    }

    #[test]
    fn references_matches_exact_triple() {
        let s = snap("a", 1, 5, 100);
        assert!(s.references(FileId(1), 5, Vbn(100)));
        assert!(!s.references(FileId(1), 5, Vbn(101)), "different block");
        assert!(!s.references(FileId(1), 6, Vbn(100)), "different offset");
        assert!(!s.references(FileId(2), 5, Vbn(100)), "different file");
    }

    #[test]
    fn set_add_get_remove() {
        let set = SnapshotSet::new();
        assert!(set.add(snap("daily", 1, 0, 10)));
        assert!(!set.add(snap("daily", 1, 0, 20)), "duplicate name");
        assert!(set.add(snap("weekly", 1, 0, 30)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("daily").unwrap().cp_id, 1);
        assert!(set.any_references(FileId(1), 0, Vbn(10)));
        assert!(set.any_references(FileId(1), 0, Vbn(30)));
        assert!(!set.any_references(FileId(1), 0, Vbn(20)));
        let removed = set.remove("daily").unwrap();
        assert_eq!(removed.name, "daily");
        assert!(!set.any_references(FileId(1), 0, Vbn(10)));
        assert!(set.remove("daily").is_none());
    }

    #[test]
    fn iter_and_count() {
        let mut s = snap("a", 1, 5, 100);
        s.files.get_mut(&FileId(1)).unwrap().insert(
            6,
            BlockPtr {
                vvbn: 7,
                pvbn: Vbn(101),
                stamp: 1,
            },
        );
        assert_eq!(s.block_count(), 2);
        let blocks: Vec<_> = s.iter_blocks().collect();
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn restore_roundtrip() {
        let set = SnapshotSet::new();
        set.add(snap("a", 1, 0, 10));
        set.add(snap("b", 2, 0, 20));
        let images = set.snapshot_images();
        let back = SnapshotSet::restore(images);
        assert_eq!(back.len(), 2);
        assert!(back.get("a").is_some());
        assert!(back.any_references(FileId(2), 0, Vbn(20)));
    }
}
