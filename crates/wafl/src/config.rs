//! File-system-level configuration.

use crate::cleaner::CleanerConfig;
use alligator::AllocConfig;
use serde::{Deserialize, Serialize};

/// Top-level configuration for a [`Filesystem`](crate::fs::Filesystem).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FsConfig {
    /// Write-allocator settings (chunk size, infra mode, …).
    pub alloc: AllocConfig,
    /// Cleaner-pool settings (thread count, batching, region split).
    pub cleaner: CleanerConfig,
    /// VVBNs per volume created through
    /// [`Filesystem::create_volume`](crate::fs::Filesystem::create_volume).
    pub vvbn_per_volume: u64,
    /// Maximum metafile-flush fix-point iterations before the CP writes
    /// remaining dirty metafile blocks in place (see `cp.rs` docs).
    pub metafile_fixpoint_max: usize,
    /// Per-RAID-group submission-queue depth for the async I/O engine
    /// (`blockdev::aio`). `0` — the default — keeps every write
    /// synchronous and inline, exactly the pre-aio behavior; any
    /// positive depth routes tetris stripes through submission/
    /// completion queues, with CP phase boundaries as the only
    /// durability barriers.
    pub io_queue_depth: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            alloc: AllocConfig::default(),
            cleaner: CleanerConfig::default(),
            vvbn_per_volume: 1 << 20,
            metafile_fixpoint_max: 4,
            io_queue_depth: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = FsConfig::default();
        assert!(c.vvbn_per_volume > 0);
        assert!(c.metafile_fixpoint_max >= 1);
        assert!(c.cleaner.threads >= 1);
    }
}
