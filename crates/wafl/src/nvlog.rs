//! The nonvolatile RAM operation log.
//!
//! "Instead of delaying the client reply until the data reaches
//! persistent storage as part of the next batch, operations that update
//! file system state are logged in nonvolatile RAM, which allows the
//! system to reply to client writes very quickly … If the system crashes
//! before the superblock is written, the file system state from the most
//! recently completed CP is loaded and all subsequent operations are
//! replayed from the log stored in nonvolatile RAM" (§II-C).
//!
//! The log has two halves, CP-aligned:
//!
//! * `current` — ops logged since the last CP freeze (they will be part
//!   of the *next* CP);
//! * `in_cp` — ops whose effects are being persisted by the in-flight CP;
//!   discarded when the superblock commits, replayed if the system
//!   crashes before that.

use crate::inode::FileId;
use crate::volume::VolumeId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use wafl_blockdev::BlockStamp;

/// A logged client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Create a file in a volume.
    Create {
        /// Target volume.
        vol: VolumeId,
        /// New file id.
        file: FileId,
    },
    /// Write one block of a file.
    Write {
        /// Target volume.
        vol: VolumeId,
        /// Target file.
        file: FileId,
        /// File block number.
        fbn: u64,
        /// Payload stamp.
        stamp: BlockStamp,
    },
    /// Truncate a file to a block count.
    Truncate {
        /// Target volume.
        vol: VolumeId,
        /// Target file.
        file: FileId,
        /// New size in blocks.
        new_size_fbns: u64,
    },
    /// Delete a file.
    Delete {
        /// Target volume.
        vol: VolumeId,
        /// Target file.
        file: FileId,
    },
}

/// The two-half NVRAM log — see module docs.
///
/// ```
/// use wafl::{FileId, NvLog, Op, VolumeId};
///
/// let log = NvLog::new();
/// let w = |fbn| Op::Write { vol: VolumeId(0), file: FileId(1), fbn, stamp: 1 };
/// log.log(w(0));
/// log.freeze();        // CP start: ops move to the in-flight half
/// log.log(w(1));       // acknowledged during the CP
/// assert_eq!(log.replay_ops().len(), 2, "crash now would replay both");
/// log.commit_cp();     // superblock written: the CP's half is discarded
/// assert_eq!(log.replay_ops(), vec![w(1)]);
/// ```
#[derive(Debug, Default)]
pub struct NvLog {
    inner: Mutex<Halves>, // lock-rank: nvlog 22
}

#[derive(Debug, Default)]
struct Halves {
    current: Vec<Op>,
    in_cp: Vec<Op>,
}

impl NvLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log an acknowledged client op.
    pub fn log(&self, op: Op) {
        self.inner.lock().current.push(op);
    }

    /// CP freeze: the current half becomes the in-flight-CP half; new ops
    /// accumulate in a fresh current half.
    ///
    /// # Panics
    /// Panics if a CP is already in flight (the previous `commit_cp` was
    /// never called) — WAFL runs one CP at a time per aggregate.
    pub fn freeze(&self) {
        let mut h = self.inner.lock();
        assert!(
            h.in_cp.is_empty(),
            "NVLog freeze with a CP already in flight"
        );
        h.in_cp = std::mem::take(&mut h.current);
    }

    /// Superblock committed: the in-flight CP's log half is discarded.
    pub fn commit_cp(&self) {
        self.inner.lock().in_cp.clear();
    }

    /// Crash recovery: every op not yet covered by a committed CP, in
    /// arrival order (`in_cp` half first, then `current`).
    pub fn replay_ops(&self) -> Vec<Op> {
        let h = self.inner.lock();
        h.in_cp.iter().chain(h.current.iter()).copied().collect()
    }

    /// Ops in the current (next-CP) half.
    pub fn current_len(&self) -> usize {
        self.inner.lock().current.len()
    }

    /// Ops in the in-flight-CP half.
    pub fn in_cp_len(&self) -> usize {
        self.inner.lock().in_cp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(fbn: u64) -> Op {
        Op::Write {
            vol: VolumeId(0),
            file: FileId(1),
            fbn,
            stamp: fbn as u128 + 1,
        }
    }

    #[test]
    fn freeze_splits_halves() {
        let log = NvLog::new();
        log.log(w(0));
        log.log(w(1));
        log.freeze();
        log.log(w(2));
        assert_eq!(log.in_cp_len(), 2);
        assert_eq!(log.current_len(), 1);
    }

    #[test]
    fn commit_discards_only_the_cp_half() {
        let log = NvLog::new();
        log.log(w(0));
        log.freeze();
        log.log(w(1));
        log.commit_cp();
        assert_eq!(log.in_cp_len(), 0);
        assert_eq!(log.current_len(), 1);
        assert_eq!(log.replay_ops(), vec![w(1)]);
    }

    #[test]
    fn replay_covers_both_halves_in_order() {
        let log = NvLog::new();
        log.log(w(0));
        log.freeze();
        log.log(w(1));
        log.log(w(2));
        assert_eq!(log.replay_ops(), vec![w(0), w(1), w(2)]);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_freeze_panics() {
        let log = NvLog::new();
        log.log(w(0));
        log.freeze();
        log.freeze();
    }

    #[test]
    fn empty_freeze_is_fine() {
        let log = NvLog::new();
        log.freeze();
        log.commit_cp();
        assert!(log.replay_ops().is_empty());
    }
}
