//! [`StorageSystem`]: multiple aggregates under one Waffinity scheduler.
//!
//! §IV-B2's *first* parallelism mechanism: "allocation bitmaps in each
//! aggregate … map to different Aggregate VBN … affinities … Thus,
//! accesses to metafiles in different aggregates and volumes are
//! parallelized in Waffinity because threads running in parallel on
//! different cores can read and write to metafiles without explicit
//! synchronization."
//!
//! A [`StorageSystem`] owns one Waffinity topology and thread pool shared
//! by N aggregates, each a full [`Filesystem`] (its own drives, metafiles,
//! allocator, cleaner pool, NVLog, and CP engine). Infrastructure messages
//! for aggregate `a` run in `AggrVbnRange(a, ·)` affinities, so two
//! aggregates' refills and commits never serialize against each other —
//! with zero additional locking, exactly as in the paper.

use crate::config::FsConfig;
use crate::cp::CpReport;
use crate::fs::{ExecMode, Filesystem};
use alligator::{Executor, InlineExecutor, PoolExecutor};
use std::sync::Arc;
use waffinity::{Model, Topology, WaffinityPool};
use wafl_blockdev::{AggregateGeometry, DriveKind, IoEngine};
use wafl_metafile::AggregateMap;

/// A storage system: several aggregates sharing one Waffinity scheduler.
pub struct StorageSystem {
    topo: Arc<Topology>,
    pool: Option<Arc<WaffinityPool>>,
    aggregates: Vec<Filesystem>,
}

impl StorageSystem {
    /// Build a system with one aggregate per geometry. All aggregates
    /// share one Waffinity topology (and thread pool in
    /// [`ExecMode::Pool`]).
    pub fn new(
        cfg: FsConfig,
        geometries: Vec<AggregateGeometry>,
        kind: DriveKind,
        exec: ExecMode,
    ) -> Self {
        assert!(!geometries.is_empty(), "need at least one aggregate");
        let n = geometries.len() as u32;
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, n, 8, 8, 8));
        let (executor, pool): (Arc<dyn Executor>, _) = match exec {
            ExecMode::Inline => (Arc::new(InlineExecutor), None),
            ExecMode::Pool(threads) => {
                let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), threads));
                (
                    Arc::new(PoolExecutor::new(Arc::clone(&pool))) as Arc<dyn Executor>,
                    Some(pool),
                )
            }
        };
        let aggregates = geometries
            .into_iter()
            .enumerate()
            .map(|(i, geometry)| {
                let geo = Arc::new(geometry);
                let io = Arc::new(IoEngine::new(Arc::clone(&geo), kind));
                let aggmap = Arc::new(AggregateMap::new(geo));
                Filesystem::assemble_shared(
                    cfg,
                    io,
                    aggmap,
                    Arc::clone(&executor),
                    Arc::clone(&topo),
                    i as u32,
                    pool.clone(),
                )
            })
            .collect();
        Self {
            topo,
            pool,
            aggregates,
        }
    }

    /// Number of aggregates.
    pub fn aggregate_count(&self) -> usize {
        self.aggregates.len()
    }

    /// Access one aggregate's file system.
    pub fn aggregate(&self, i: usize) -> &Filesystem {
        &self.aggregates[i]
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The shared Waffinity pool (pool mode only).
    pub fn waffinity_pool(&self) -> Option<&Arc<WaffinityPool>> {
        self.pool.as_ref()
    }

    /// Run a CP on every aggregate (each aggregate's CP is independent,
    /// as in WAFL: "any two operations in different aggregates" can
    /// proceed in parallel).
    pub fn run_cp_all(&self) -> Vec<CpReport> {
        self.aggregates.iter().map(|a| a.run_cp()).collect()
    }

    /// Verify every aggregate.
    pub fn verify_all(&self) -> Result<(), String> {
        for (i, a) in self.aggregates.iter().enumerate() {
            a.verify_integrity()
                .map_err(|e| format!("aggregate {i}: {e}"))?;
        }
        Ok(())
    }

    /// Rebuild every offline drive in every aggregate from parity; returns
    /// the total number of blocks reconstructed. After this, a raw-media
    /// parity scrub passes again.
    pub fn rebuild_offline_all(&self) -> u64 {
        self.aggregates
            .iter()
            .map(|a| a.io().rebuild_offline())
            .sum()
    }

    /// Simulate a whole-system crash: drop all in-memory state and rebuild
    /// every aggregate from its committed superblock image plus an NVRAM
    /// log replay, over a fresh shared Waffinity topology. The simulated
    /// drives are shared with the old instance — they are the persistent
    /// state.
    pub fn crash_and_recover(&self, exec: ExecMode) -> StorageSystem {
        let n = self.aggregates.len() as u32;
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, n, 8, 8, 8));
        let (executor, pool): (Arc<dyn Executor>, _) = match exec {
            ExecMode::Inline => (Arc::new(InlineExecutor), None),
            ExecMode::Pool(threads) => {
                let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), threads));
                (
                    Arc::new(PoolExecutor::new(Arc::clone(&pool))) as Arc<dyn Executor>,
                    Some(pool),
                )
            }
        };
        let aggregates = self
            .aggregates
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let image = a.committed_image();
                let ops = a.nvlog().replay_ops();
                Filesystem::recover_shared(
                    *a.config(),
                    Arc::clone(a.io()),
                    image.as_deref(),
                    &ops,
                    Arc::clone(&executor),
                    Arc::clone(&topo),
                    i as u32,
                    pool.clone(),
                )
            })
            .collect();
        Self {
            topo,
            pool,
            aggregates,
        }
    }
}

impl std::fmt::Debug for StorageSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageSystem")
            .field("aggregates", &self.aggregates.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode::FileId;
    use crate::volume::VolumeId;
    use waffinity::Affinity;
    use wafl_blockdev::{stamp, GeometryBuilder};

    fn geos(n: usize) -> Vec<AggregateGeometry> {
        (0..n)
            .map(|_| {
                GeometryBuilder::new()
                    .aa_stripes(128)
                    .raid_group(3, 1, 8192)
                    .build()
            })
            .collect()
    }

    #[test]
    fn two_aggregates_operate_independently() {
        let sys = StorageSystem::new(
            FsConfig::default(),
            geos(2),
            DriveKind::Ssd,
            ExecMode::Inline,
        );
        for a in 0..2 {
            let fs = sys.aggregate(a);
            fs.create_volume(VolumeId(0));
            fs.create_file(VolumeId(0), FileId(1));
            for fbn in 0..50 {
                fs.write(VolumeId(0), FileId(1), fbn, stamp(a as u64, fbn, 1));
            }
        }
        let reports = sys.run_cp_all();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.buffers_cleaned == 50));
        for a in 0..2 {
            assert_eq!(
                sys.aggregate(a).read_persisted(VolumeId(0), FileId(1), 7),
                Some(stamp(a as u64, 7, 1))
            );
        }
        sys.verify_all().unwrap();
    }

    #[test]
    fn aggregates_use_disjoint_waffinity_affinities() {
        let sys = StorageSystem::new(
            FsConfig::default(),
            geos(2),
            DriveKind::Ssd,
            ExecMode::Pool(2),
        );
        for a in 0..2 {
            let fs = sys.aggregate(a);
            fs.create_volume(VolumeId(0));
            fs.create_file(VolumeId(0), FileId(1));
            for fbn in 0..200 {
                fs.write(VolumeId(0), FileId(1), fbn, stamp(a as u64, fbn, 1));
            }
        }
        sys.run_cp_all();
        let pool = sys.waffinity_pool().unwrap();
        // Each aggregate's infrastructure ran in its own affinity subtree.
        for a in 0..2u32 {
            let msgs: u64 = (0..8)
                .map(|r| pool.messages_in(Affinity::AggrVbnRange(a, r)))
                .sum();
            assert!(msgs > 0, "aggregate {a} infra messages in its own ranges");
        }
        assert_eq!(pool.messages_in(Affinity::Serial), 0);
        sys.verify_all().unwrap();
    }

    #[test]
    fn concurrent_clients_on_different_aggregates() {
        let sys = Arc::new(StorageSystem::new(
            FsConfig::default(),
            geos(2),
            DriveKind::Ssd,
            ExecMode::Pool(2),
        ));
        for a in 0..2 {
            let fs = sys.aggregate(a);
            fs.create_volume(VolumeId(0));
            fs.create_file(VolumeId(0), FileId(1));
        }
        let mut handles = Vec::new();
        for a in 0..2usize {
            let sys = Arc::clone(&sys);
            handles.push(std::thread::spawn(move || {
                for generation in 1..=3u64 {
                    let fs = sys.aggregate(a);
                    for fbn in 0..100 {
                        fs.write(
                            VolumeId(0),
                            FileId(1),
                            fbn,
                            stamp(a as u64, fbn, generation),
                        );
                    }
                    fs.run_cp();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for a in 0..2 {
            assert_eq!(
                sys.aggregate(a).read_persisted(VolumeId(0), FileId(1), 42),
                Some(stamp(a as u64, 42, 3))
            );
        }
        sys.verify_all().unwrap();
    }

    #[test]
    fn system_crash_mid_cp_recovers_every_aggregate() {
        use crate::cp::CrashPoint;
        let sys = StorageSystem::new(
            FsConfig::default(),
            geos(2),
            DriveKind::Ssd,
            ExecMode::Inline,
        );
        for a in 0..2 {
            let fs = sys.aggregate(a);
            fs.create_volume(VolumeId(0));
            fs.create_file(VolumeId(0), FileId(1));
            for fbn in 0..32 {
                fs.write(VolumeId(0), FileId(1), fbn, stamp(a as u64, fbn, 1));
            }
        }
        sys.run_cp_all();
        // Acknowledged-but-uncommitted overwrites on both aggregates;
        // aggregate 0 then crashes in the middle of its next CP.
        for a in 0..2 {
            let fs = sys.aggregate(a);
            for fbn in 0..32 {
                fs.write(VolumeId(0), FileId(1), fbn, stamp(a as u64, fbn, 2));
            }
        }
        sys.aggregate(0).run_cp_crash_at(CrashPoint::AfterClean);
        let rec = sys.crash_and_recover(ExecMode::Inline);
        rec.run_cp_all();
        for a in 0..2 {
            assert_eq!(
                rec.aggregate(a).read_persisted(VolumeId(0), FileId(1), 17),
                Some(stamp(a as u64, 17, 2)),
                "aggregate {a} lost a replayed overwrite"
            );
        }
        assert_eq!(rec.rebuild_offline_all(), 0, "no drives failed here");
        rec.verify_all().unwrap();
    }

    #[test]
    fn single_aggregate_system_matches_filesystem() {
        let sys = StorageSystem::new(
            FsConfig::default(),
            geos(1),
            DriveKind::Ssd,
            ExecMode::Inline,
        );
        assert_eq!(sys.aggregate_count(), 1);
        let fs = sys.aggregate(0);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(9));
        fs.write(VolumeId(0), FileId(9), 0, 0x42);
        fs.run_cp();
        assert_eq!(fs.read_persisted(VolumeId(0), FileId(9), 0), Some(0x42));
    }
}
