//! [`Filesystem`] — the public facade: aggregate + volumes + NVLog + CP.
//!
//! This is the object a downstream user (and the examples, integration
//! tests, and the simulator's real-thread mode) programs against:
//!
//! ```
//! use wafl::{Filesystem, FsConfig, ExecMode, FileId, VolumeId};
//! use wafl_blockdev::{DriveKind, GeometryBuilder};
//!
//! let fs = Filesystem::new(
//!     FsConfig::default(),
//!     GeometryBuilder::new().aa_stripes(64).raid_group(3, 1, 4096).build(),
//!     DriveKind::Ssd,
//!     ExecMode::Inline,
//! );
//! fs.create_volume(VolumeId(0));
//! fs.create_file(VolumeId(0), FileId(1));
//! fs.write(VolumeId(0), FileId(1), 0, 0xfeed);
//! let report = fs.run_cp();
//! assert_eq!(report.buffers_cleaned, 1);
//! assert_eq!(fs.read_persisted(VolumeId(0), FileId(1), 0), Some(0xfeed));
//! ```

use crate::cleaner::CleanerPool;
use crate::config::FsConfig;
use crate::cp::{self, CpReport, CrashPoint, DiskImage, MetafileLocs, SuperblockStore};
use crate::inode::FileId;
use crate::nvlog::{NvLog, Op};
use crate::volume::{Volume, VolumeId};
use alligator::{Allocator, Executor, InlineExecutor, PoolExecutor};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use waffinity::{Model, Topology, WaffinityPool};
use wafl_blockdev::{AggregateGeometry, BlockStamp, DriveKind, FaultSpec, IoEngine, RetryPolicy};
use wafl_metafile::AggregateMap;

/// How infrastructure messages execute.
#[derive(Debug, Clone, Copy)]
pub enum ExecMode {
    /// Synchronously on the calling thread (deterministic; tests).
    Inline,
    /// On a real Waffinity thread pool with this many workers.
    Pool(usize),
}

/// Waffinity topology sizing used by [`Filesystem`]. Fixed counts keep the
/// affinity id space static while volumes come and go; volume `v` maps to
/// affinity slot `v % VOLUME_SLOTS`.
const VOLUME_SLOTS: u32 = 8;
const STRIPES_PER_VOLUME: u32 = 8;
const RANGES: u32 = 8;

/// A WAFL-like file system over one simulated aggregate.
pub struct Filesystem {
    cfg: FsConfig,
    topo: Arc<Topology>,
    io: Arc<IoEngine>,
    /// The async I/O engine, when `cfg.io_queue_depth > 0`. The
    /// filesystem owns the strong reference; the `IoEngine` holds only a
    /// `Weak` back-pointer (no cycle).
    aio: Option<Arc<wafl_blockdev::AioEngine>>,
    alloc: Arc<Allocator>,
    volumes: RwLock<BTreeMap<VolumeId, Arc<Volume>>>, // lock-rank: fs.volumes 10
    nvlog: NvLog,
    pool: CleanerPool,
    mf_locs: MetafileLocs,
    sb: SuperblockStore,
    cp_counter: AtomicU64,
    /// True while a CP is executing. Advisory: background maintenance
    /// (the online scrubber) uses it to schedule its quiesce-dependent
    /// re-checks between CPs.
    cp_in_flight: AtomicBool,
    /// Keeps the Waffinity pool alive in `ExecMode::Pool`.
    waff_pool: Option<Arc<WaffinityPool>>,
}

impl Filesystem {
    /// Create a fresh (empty) file system over a new aggregate.
    pub fn new(
        cfg: FsConfig,
        geometry: AggregateGeometry,
        kind: DriveKind,
        exec: ExecMode,
    ) -> Self {
        let geo = Arc::new(geometry);
        let io = Arc::new(IoEngine::new(Arc::clone(&geo), kind));
        let aggmap = Arc::new(AggregateMap::new(geo));
        Self::assemble(cfg, io, aggmap, exec)
    }

    /// Like [`Filesystem::new`], but with a deterministic fault-injection
    /// plan and retry policy installed on every drive of the aggregate.
    pub fn with_faults(
        cfg: FsConfig,
        geometry: AggregateGeometry,
        kind: DriveKind,
        spec: FaultSpec,
        policy: RetryPolicy,
        exec: ExecMode,
    ) -> Self {
        let geo = Arc::new(geometry);
        let io = Arc::new(IoEngine::with_faults_and_policy(
            Arc::clone(&geo),
            kind,
            spec,
            policy,
        ));
        let aggmap = Arc::new(AggregateMap::new(geo));
        Self::assemble(cfg, io, aggmap, exec)
    }

    fn assemble(
        cfg: FsConfig,
        io: Arc<IoEngine>,
        aggmap: Arc<AggregateMap>,
        exec: ExecMode,
    ) -> Self {
        let topo = Arc::new(Topology::symmetric(
            Model::Hierarchical,
            1,
            VOLUME_SLOTS,
            STRIPES_PER_VOLUME,
            RANGES,
        ));
        let (executor, waff_pool): (Arc<dyn Executor>, _) = match exec {
            ExecMode::Inline => (Arc::new(InlineExecutor), None),
            ExecMode::Pool(threads) => {
                let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), threads));
                (Arc::new(PoolExecutor::new(Arc::clone(&pool))), Some(pool))
            }
        };
        Self::assemble_shared(cfg, io, aggmap, executor, topo, 0, waff_pool)
    }

    /// Assemble an aggregate's file system over a *shared* Waffinity
    /// topology/executor — the multi-aggregate path (§IV-B2: metafiles of
    /// different aggregates map to different Aggregate-VBN affinities, so
    /// their infrastructure work parallelizes with no extra locking).
    /// `aggr` is this aggregate's index in `topo`.
    pub(crate) fn assemble_shared(
        cfg: FsConfig,
        io: Arc<IoEngine>,
        aggmap: Arc<AggregateMap>,
        executor: Arc<dyn Executor>,
        topo: Arc<Topology>,
        aggr: u32,
        waff_pool: Option<Arc<WaffinityPool>>,
    ) -> Self {
        let alloc = Allocator::new(
            cfg.alloc,
            aggmap,
            io.clone(),
            executor,
            Arc::clone(&topo),
            aggr,
        );
        let pool = CleanerPool::new(Arc::clone(&alloc), cfg.cleaner);
        // Positive queue depth: stand up the async engine and register it
        // on the I/O engine, so the tetris fire path pipelines stripes
        // instead of completing them inline. Because the depth travels in
        // `cfg`, `crash_and_recover` re-creates the engine automatically.
        let aio = (cfg.io_queue_depth > 0).then(|| {
            let engine = wafl_blockdev::AioEngine::new(Arc::clone(&io), cfg.io_queue_depth);
            io.set_aio(&engine);
            engine
        });
        Self {
            cfg,
            topo,
            io,
            aio,
            alloc,
            volumes: RwLock::new(BTreeMap::new()),
            nvlog: NvLog::new(),
            pool,
            mf_locs: MetafileLocs::new(),
            sb: SuperblockStore::new(),
            cp_counter: AtomicU64::new(0),
            cp_in_flight: AtomicBool::new(false),
            waff_pool,
        }
    }

    /// Configuration.
    #[inline]
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// The aggregate's I/O engine (shared with any recovered instance —
    /// the drives *are* the persistent state).
    #[inline]
    pub fn io(&self) -> &Arc<IoEngine> {
        &self.io
    }

    /// The write allocator.
    #[inline]
    pub fn allocator(&self) -> &Arc<Allocator> {
        &self.alloc
    }

    /// The async I/O engine, when one is configured
    /// (`FsConfig::io_queue_depth > 0`).
    #[inline]
    pub fn aio(&self) -> Option<&Arc<wafl_blockdev::AioEngine>> {
        self.aio.as_ref()
    }

    /// The cleaner pool (e.g., for dynamic-tuner actuation).
    #[inline]
    pub fn cleaner_pool(&self) -> &CleanerPool {
        &self.pool
    }

    /// The NVRAM log.
    #[inline]
    pub fn nvlog(&self) -> &NvLog {
        &self.nvlog
    }

    /// The most recently committed superblock image, if any CP has run.
    pub fn committed_image(&self) -> Option<Arc<DiskImage>> {
        self.sb.load()
    }

    /// The Waffinity topology.
    #[inline]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The Waffinity thread pool, when running in [`ExecMode::Pool`].
    #[inline]
    pub fn waffinity_pool(&self) -> Option<&Arc<WaffinityPool>> {
        self.waff_pool.as_ref()
    }

    /// Create a volume. Returns `false` if the id exists.
    pub fn create_volume(&self, id: VolumeId) -> bool {
        let mut vols = self.volumes.write();
        if vols.contains_key(&id) {
            return false;
        }
        vols.insert(
            id,
            Volume::new(id, id.0 % VOLUME_SLOTS, self.cfg.vvbn_per_volume),
        );
        true
    }

    /// Handle to a volume.
    pub fn volume(&self, id: VolumeId) -> Option<Arc<Volume>> {
        self.volumes.read().get(&id).cloned()
    }

    /// All volumes.
    pub fn volumes(&self) -> Vec<Arc<Volume>> {
        self.volumes.read().values().cloned().collect()
    }

    /// Create a file (logged to NVRAM).
    pub fn create_file(&self, vol: VolumeId, file: FileId) -> bool {
        let v = self.volume(vol).expect("volume exists");
        let created = v.create_file(file);
        if created {
            self.nvlog.log(Op::Create { vol, file });
        }
        created
    }

    /// Client write: acknowledge after dirtying in memory and logging to
    /// NVRAM (§II-C's fast-reply path).
    pub fn write(&self, vol: VolumeId, file: FileId, fbn: u64, stamp: BlockStamp) {
        let v = self.volume(vol).expect("volume exists");
        v.write(file, fbn, stamp);
        self.nvlog.log(Op::Write {
            vol,
            file,
            fbn,
            stamp,
        });
    }

    /// Read current logical contents (dirty data wins).
    pub fn read(&self, vol: VolumeId, file: FileId, fbn: u64) -> Option<BlockStamp> {
        self.volume(vol)?.read(file, fbn)
    }

    /// Truncate a file to `new_size_fbns` blocks (logged to NVRAM).
    /// Freed blocks flow through the allocator's stage path, exactly like
    /// overwrite frees (§IV-A). Returns `false` if the file is missing.
    pub fn truncate(&self, vol: VolumeId, file: FileId, new_size_fbns: u64) -> bool {
        let v = self.volume(vol).expect("volume exists");
        let Some(pvbns) = v.truncate_file(file, new_size_fbns) else {
            return false;
        };
        self.stage_frees(pvbns);
        self.nvlog.log(Op::Truncate {
            vol,
            file,
            new_size_fbns,
        });
        true
    }

    /// Delete a file (logged to NVRAM). Returns `false` if missing.
    pub fn delete_file(&self, vol: VolumeId, file: FileId) -> bool {
        let v = self.volume(vol).expect("volume exists");
        let Some(pvbns) = v.delete_file(file) else {
            return false;
        };
        self.stage_frees(pvbns);
        self.nvlog.log(Op::Delete { vol, file });
        true
    }

    /// Create a named snapshot of a volume: runs a CP to make the image
    /// current, captures it, and runs another CP so the snapshot itself
    /// is durable (snapshot creation *is* a CP in WAFL). Returns `false`
    /// if the name exists or the volume does not.
    pub fn create_snapshot(&self, vol: VolumeId, name: &str) -> bool {
        let Some(v) = self.volume(vol) else {
            return false;
        };
        let report = self.run_cp();
        if !v.take_snapshot(name, report.cp_id) {
            return false;
        }
        self.run_cp(); // publish the snapshot in the on-disk image
        true
    }

    /// Read a block as of a snapshot.
    pub fn read_snapshot(
        &self,
        vol: VolumeId,
        snapshot: &str,
        file: FileId,
        fbn: u64,
    ) -> Option<BlockStamp> {
        let v = self.volume(vol)?;
        let snap = v.snapshots().get(snapshot)?;
        let ptr = snap.lookup(file, fbn)?;
        self.io.read_vbn(ptr.pvbn).ok()
    }

    /// Delete a snapshot, reclaiming blocks no other image references.
    /// The reclaim is durable at the next CP. Returns the number of
    /// blocks freed, or `None` if the snapshot does not exist.
    pub fn delete_snapshot(&self, vol: VolumeId, name: &str) -> Option<usize> {
        let v = self.volume(vol)?;
        let reclaimed = v.delete_snapshot(name)?;
        let n = reclaimed.len();
        let mut pvbns = Vec::with_capacity(n);
        for (vvbn, pvbn) in reclaimed {
            v.vvbn().free(vvbn);
            pvbns.push(pvbn);
        }
        self.stage_frees(pvbns);
        Some(n)
    }

    fn stage_frees(&self, pvbns: Vec<wafl_blockdev::Vbn>) {
        if pvbns.is_empty() {
            return;
        }
        let mut stage = self.alloc.new_stage();
        for v in pvbns {
            self.alloc.free_vbn(&mut stage, v);
        }
        self.alloc.flush_stage(&mut stage);
    }

    /// Read through the committed block map and the simulated media —
    /// returns what a reboot would see for this block (`None` for holes
    /// or uncommitted blocks).
    pub fn read_persisted(&self, vol: VolumeId, file: FileId, fbn: u64) -> Option<BlockStamp> {
        let v = self.volume(vol)?;
        let inode = v.inode(file)?;
        let ptr = inode.lock().lookup(fbn)?;
        self.io.read_vbn(ptr.pvbn).ok()
    }

    /// Run one consistency point.
    pub fn run_cp(&self) -> CpReport {
        // ordering: Relaxed RMW gives unique CP ids; CP ordering is serialized by the checkpoint lock.
        let cp_id = self.cp_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let vols = self.volumes();
        // ordering: Release/Acquire pair with `cp_in_flight()`; advisory;
        // pairs-with: fs.cp-flag.
        self.cp_in_flight.store(true, Ordering::Release);
        let report = cp::run_cp(
            cp_id,
            &self.cfg,
            &vols,
            &self.nvlog,
            &self.alloc,
            &self.pool,
            &self.mf_locs,
            &self.sb,
        );
        // ordering: Release — the CP's effects precede the flag clearing;
        // pairs-with: fs.cp-flag.
        self.cp_in_flight.store(false, Ordering::Release);
        report
    }

    /// Run a consistency point that crashes at `at`: the CP is abandoned
    /// before the superblock commit, leaving the media, the committed
    /// image, and the NVRAM log exactly as a real mid-CP crash would.
    /// The instance is then dead (its NVLog has a CP permanently in
    /// flight); call [`Filesystem::crash_and_recover`] to get the
    /// post-reboot file system.
    pub fn run_cp_crash_at(&self, at: CrashPoint) {
        // ordering: Relaxed RMW gives unique CP ids; CP ordering is serialized by the checkpoint lock.
        let cp_id = self.cp_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let vols = self.volumes();
        // ordering: Release/Acquire pair with `cp_in_flight()`; advisory;
        // pairs-with: fs.cp-flag.
        self.cp_in_flight.store(true, Ordering::Release);
        let r = cp::run_cp_crash_at(
            cp_id,
            &self.cfg,
            &vols,
            &self.nvlog,
            &self.alloc,
            &self.pool,
            &self.mf_locs,
            &self.sb,
            at,
        );
        debug_assert!(r.is_none(), "an injected crash never commits");
        // ordering: Release — the abandoned CP's effects precede the clear;
        // pairs-with: fs.cp-flag.
        self.cp_in_flight.store(false, Ordering::Release);
    }

    /// Number of CPs run.
    pub fn cp_count(&self) -> u64 {
        // ordering: advisory read of the CP counter.
        self.cp_counter.load(Ordering::Relaxed)
    }

    /// Is a CP currently executing? Advisory — by the time the caller
    /// acts the answer may have changed; the scrubber combines it with a
    /// [`Filesystem::cp_count`] stability check to bracket CP-quiet
    /// windows.
    pub fn cp_in_flight(&self) -> bool {
        // ordering: Acquire pairs with the Release stores around the CP;
        // pairs-with: fs.cp-flag.
        self.cp_in_flight.load(Ordering::Acquire)
    }

    /// Total dirty inodes across volumes (pending the next CP).
    pub fn dirty_inode_count(&self) -> usize {
        self.volumes().iter().map(|v| v.dirty_count()).sum()
    }

    /// Verify that every committed block reads back its expected stamp
    /// from the simulated media, and that the free-space metadata is
    /// internally consistent.
    pub fn verify_integrity(&self) -> Result<(), String> {
        for v in self.volumes() {
            for f in v.file_ids() {
                let inode = v.inode(f).expect("listed file exists");
                let inode = inode.lock();
                for (fbn, ptr) in inode.block_map() {
                    let got = self.io.read_vbn(ptr.pvbn).map_err(|e| {
                        format!("read failed vol {:?} file {:?} fbn {fbn}: {e}", v.id(), f)
                    })?;
                    if got != ptr.stamp {
                        return Err(format!(
                            "stamp mismatch vol {:?} file {:?} fbn {fbn}: disk {got:#x}, map {:#x}",
                            v.id(),
                            f,
                            ptr.stamp
                        ));
                    }
                }
            }
        }
        self.alloc.infra().aggmap().verify()?;
        self.io.scrub()
    }

    /// Simulate a crash: drop all in-memory state and recover from the
    /// committed superblock image plus an NVRAM log replay. The simulated
    /// media (drives) are shared — they are the persistent state.
    pub fn crash_and_recover(&self, exec: ExecMode) -> Filesystem {
        let image = self.sb.load();
        let ops = self.nvlog.replay_ops();
        Self::recover(self.cfg, Arc::clone(&self.io), image.as_deref(), &ops, exec)
    }

    /// Attach a real-file backend under `dir`: from now on every write
    /// that reaches the simulated media is also persisted to per-drive
    /// backing files (O_DIRECT where the filesystem supports it). Call
    /// on a fresh instance, before any writes, so files and simulated
    /// drives stay byte-equivalent.
    pub fn attach_file_backend(
        &self,
        dir: &std::path::Path,
        policy: wafl_blockdev::SyncPolicy,
    ) -> Result<Arc<wafl_blockdev::FileBackend>, wafl_blockdev::IoError> {
        let backend = Arc::new(wafl_blockdev::FileBackend::open(
            dir,
            self.io.geometry(),
            policy,
        )?);
        self.io.attach_mirror(Arc::clone(&backend));
        Ok(backend)
    }

    /// Remount from the file backend: build **fresh** simulated drives,
    /// reload their contents from the backing files under `dir` (parity
    /// rebuilt from the surviving data — a torn stripe reloads as an
    /// internally consistent but logically stale stripe, exactly like a
    /// real array after power loss), then recover from the committed
    /// superblock image + NVRAM replay as usual. Unlike
    /// [`Filesystem::crash_and_recover`], nothing of the old media
    /// survives except what the files hold.
    pub fn remount_from_files(
        &self,
        dir: &std::path::Path,
        exec: ExecMode,
    ) -> Result<Filesystem, String> {
        let mirror = self
            .io
            .file_mirror()
            .ok_or("remount_from_files requires an attached file backend")?;
        let kind = self.io.raid_groups()[0].data_drives()[0].kind();
        let fresh_io = Arc::new(IoEngine::new(Arc::clone(self.io.geometry()), kind));
        let backend = Arc::new(
            wafl_blockdev::FileBackend::open(dir, fresh_io.geometry(), mirror.policy())
                .map_err(|e| format!("reopen file backend: {e}"))?,
        );
        backend
            .load_into(&fresh_io)
            .map_err(|e| format!("load file backend: {e}"))?;
        // Attach only after the load, so reloading is not echoed back.
        fresh_io.attach_mirror(backend);
        let image = self.sb.load();
        let ops = self.nvlog.replay_ops();
        Ok(Self::recover(
            self.cfg,
            fresh_io,
            image.as_deref(),
            &ops,
            exec,
        ))
    }

    /// Build a file system from a committed image + unreplayed NVRAM ops.
    pub fn recover(
        cfg: FsConfig,
        io: Arc<IoEngine>,
        image: Option<&DiskImage>,
        ops: &[Op],
        exec: ExecMode,
    ) -> Filesystem {
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(io.geometry())));
        let fs = Self::assemble(cfg, io, aggmap, exec);
        fs.populate_from(image, ops);
        fs
    }

    /// [`Filesystem::recover`] over a *shared* Waffinity topology — the
    /// multi-aggregate recovery path used by
    /// [`crate::StorageSystem::crash_and_recover`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recover_shared(
        cfg: FsConfig,
        io: Arc<IoEngine>,
        image: Option<&DiskImage>,
        ops: &[Op],
        executor: Arc<dyn Executor>,
        topo: Arc<Topology>,
        aggr: u32,
        waff_pool: Option<Arc<WaffinityPool>>,
    ) -> Filesystem {
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(io.geometry())));
        let fs = Self::assemble_shared(cfg, io, aggmap, executor, topo, aggr, waff_pool);
        fs.populate_from(image, ops);
        fs
    }

    /// Restore committed state from `image` and replay `ops` into a
    /// freshly assembled instance.
    fn populate_from(&self, image: Option<&DiskImage>, ops: &[Op]) {
        let fs = self;
        if let Some(img) = image {
            // The superblock lives on persistent storage: a recovered
            // instance must still root the same committed image, or a
            // second crash before the next CP would lose it.
            fs.sb.commit(img.clone());
            // ordering: recovery/replay is single-threaded.
            fs.cp_counter.store(img.cp_id, Ordering::Relaxed);
            // Blocks may be referenced by both the active maps and one or
            // more snapshots; adopt each physical/virtual block once.
            let mut adopted_pvbn = std::collections::HashSet::new();
            for vi in &img.volumes {
                fs.create_volume(vi.id);
                // create_volume logged nothing; recovery-internal.
                let v = fs.volume(vi.id).expect("just created");
                let mut adopted_vvbn = std::collections::HashSet::new();
                for (file, blocks) in &vi.files {
                    v.create_file(*file);
                    let inode = v.inode(*file).expect("just created");
                    let cleaned: Vec<crate::buffer::CleanedBlock> = blocks
                        .iter()
                        .map(|(fbn, ptr)| crate::buffer::CleanedBlock {
                            fbn: *fbn,
                            vvbn: ptr.vvbn,
                            pvbn: ptr.pvbn,
                            stamp: ptr.stamp,
                        })
                        .collect();
                    inode.lock().apply_cleaned(&cleaned);
                    for c in &cleaned {
                        if adopted_pvbn.insert(c.pvbn) {
                            fs.alloc
                                .infra()
                                .aggmap()
                                .adopt_used(c.pvbn)
                                .expect("image references a free VBN twice");
                        }
                        if adopted_vvbn.insert(c.vvbn) {
                            v.vvbn().adopt(c.vvbn);
                        }
                    }
                }
                // Snapshots: restore and adopt blocks the active maps no
                // longer reference.
                for snap in &vi.snapshots {
                    for (_f, _fbn, ptr) in snap.iter_blocks() {
                        if adopted_pvbn.insert(ptr.pvbn) {
                            fs.alloc
                                .infra()
                                .aggmap()
                                .adopt_used(ptr.pvbn)
                                .expect("snapshot references a freed VBN");
                        }
                        if adopted_vvbn.insert(ptr.vvbn) {
                            v.vvbn().adopt(ptr.vvbn);
                        }
                    }
                    v.snapshots().add(snap.clone());
                }
            }
            for ((_src, _block), vbn) in &img.metafile_locs {
                fs.alloc
                    .infra()
                    .aggmap()
                    .adopt_used(*vbn)
                    .expect("metafile VBN double-referenced");
            }
            for (key, vbn) in &img.metafile_locs {
                fs.mf_locs.set(key.0, key.1, *vbn);
            }
        }
        // Replay unacknowledged-on-disk ops; they re-enter the NVRAM log
        // because they are still not covered by a committed CP.
        for op in ops {
            match *op {
                Op::Create { vol, file } => {
                    if fs.volume(vol).is_none() {
                        fs.create_volume(vol);
                    }
                    fs.create_file(vol, file);
                }
                Op::Write {
                    vol,
                    file,
                    fbn,
                    stamp,
                } => {
                    if fs.volume(vol).is_none() {
                        fs.create_volume(vol);
                    }
                    if fs.volume(vol).map(|v| !v.has_file(file)).unwrap_or(false) {
                        fs.create_file(vol, file);
                    }
                    fs.write(vol, file, fbn, stamp);
                }
                Op::Truncate {
                    vol,
                    file,
                    new_size_fbns,
                } => {
                    fs.truncate(vol, file, new_size_fbns);
                }
                Op::Delete { vol, file } => {
                    fs.delete_file(vol, file);
                }
            }
        }
    }
}

impl std::fmt::Debug for Filesystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Filesystem")
            .field("volumes", &self.volumes.read().len())
            .field("cps", &self.cp_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_blockdev::GeometryBuilder;

    fn fs(exec: ExecMode) -> Filesystem {
        let cfg = FsConfig {
            vvbn_per_volume: 1 << 14,
            ..Default::default()
        };
        Filesystem::new(
            cfg,
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 4096)
                .build(),
            DriveKind::Ssd,
            exec,
        )
    }

    #[test]
    fn write_cp_read_persisted_roundtrip() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..32 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        let r = fs.run_cp();
        assert_eq!(r.buffers_cleaned, 32);
        assert_eq!(r.inodes_cleaned, 1);
        for fbn in 0..32 {
            assert_eq!(
                fs.read_persisted(VolumeId(0), FileId(1), fbn),
                Some(wafl_blockdev::stamp(1, fbn, 1))
            );
        }
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn overwrites_free_old_blocks() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..16 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        let free_after_first = fs.allocator().infra().aggmap().free_count();
        for fbn in 0..16 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 2));
        }
        fs.run_cp();
        let free_after_second = fs.allocator().infra().aggmap().free_count();
        // Overwrite: new blocks allocated, old freed → net change only
        // from metafile churn, bounded well below 16.
        assert!(
            free_after_first.abs_diff(free_after_second) < 16,
            "old data blocks were freed ({free_after_first} → {free_after_second})"
        );
        assert_eq!(
            fs.read_persisted(VolumeId(0), FileId(1), 3),
            Some(wafl_blockdev::stamp(1, 3, 2))
        );
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn cp_writes_are_mostly_full_stripes() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..3 * 64 * 4 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        let ratio = fs.io().full_stripe_ratio().unwrap();
        assert!(
            ratio > 0.8,
            "sequential write should be mostly full stripes, got {ratio}"
        );
    }

    #[test]
    fn multiple_volumes_and_cps() {
        let fs = fs(ExecMode::Inline);
        for v in 0..3 {
            fs.create_volume(VolumeId(v));
            fs.create_file(VolumeId(v), FileId(1));
        }
        for cp in 1..=3u64 {
            for v in 0..3 {
                for fbn in 0..8 {
                    fs.write(
                        VolumeId(v),
                        FileId(1),
                        fbn,
                        wafl_blockdev::stamp(v as u64, fbn, cp),
                    );
                }
            }
            let r = fs.run_cp();
            assert_eq!(r.inodes_cleaned, 3);
        }
        assert_eq!(fs.cp_count(), 3);
        for v in 0..3 {
            assert_eq!(
                fs.read_persisted(VolumeId(v), FileId(1), 5),
                Some(wafl_blockdev::stamp(v as u64, 5, 3))
            );
        }
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn crash_before_any_cp_replays_everything_from_nvlog() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        fs.write(VolumeId(0), FileId(1), 0, 0xabc);
        let recovered = fs.crash_and_recover(ExecMode::Inline);
        assert_eq!(recovered.read(VolumeId(0), FileId(1), 0), Some(0xabc));
        recovered.run_cp();
        assert_eq!(
            recovered.read_persisted(VolumeId(0), FileId(1), 0),
            Some(0xabc)
        );
        recovered.verify_integrity().unwrap();
    }

    #[test]
    fn crash_after_cp_preserves_committed_and_replays_rest() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        fs.write(VolumeId(0), FileId(1), 0, 0x1);
        fs.write(VolumeId(0), FileId(1), 1, 0x2);
        fs.run_cp();
        // Acknowledged but not yet CP'd:
        fs.write(VolumeId(0), FileId(1), 1, 0x22);
        fs.write(VolumeId(0), FileId(1), 2, 0x3);
        let recovered = fs.crash_and_recover(ExecMode::Inline);
        assert_eq!(recovered.read(VolumeId(0), FileId(1), 0), Some(0x1));
        assert_eq!(recovered.read(VolumeId(0), FileId(1), 1), Some(0x22));
        assert_eq!(recovered.read(VolumeId(0), FileId(1), 2), Some(0x3));
        // The replayed ops re-commit on the next CP.
        recovered.run_cp();
        assert_eq!(
            recovered.read_persisted(VolumeId(0), FileId(1), 1),
            Some(0x22)
        );
        recovered.verify_integrity().unwrap();
    }

    #[test]
    fn recovered_fs_does_not_reallocate_live_blocks() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..64 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        let recovered = fs.crash_and_recover(ExecMode::Inline);
        // New writes after recovery must not clobber committed blocks.
        recovered.create_file(VolumeId(0), FileId(2));
        for fbn in 0..64 {
            recovered.write(VolumeId(0), FileId(2), fbn, wafl_blockdev::stamp(2, fbn, 1));
        }
        recovered.run_cp();
        for fbn in 0..64 {
            assert_eq!(
                recovered.read_persisted(VolumeId(0), FileId(1), fbn),
                Some(wafl_blockdev::stamp(1, fbn, 1)),
                "committed block clobbered at fbn {fbn}"
            );
        }
        recovered.verify_integrity().unwrap();
    }

    #[test]
    fn pool_exec_mode_works_end_to_end() {
        let fs = fs(ExecMode::Pool(2));
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..128 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 7));
        }
        let r = fs.run_cp();
        assert_eq!(r.buffers_cleaned, 128);
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn delete_frees_all_blocks() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..64 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        let free_before = fs.allocator().infra().aggmap().free_count();
        assert!(fs.delete_file(VolumeId(0), FileId(1)));
        fs.allocator().drain();
        let free_after = fs.allocator().infra().aggmap().free_count();
        assert_eq!(free_after, free_before + 64);
        assert_eq!(fs.read(VolumeId(0), FileId(1), 0), None);
        assert!(!fs.delete_file(VolumeId(0), FileId(1)), "double delete");
        fs.run_cp();
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn truncate_frees_tail_and_keeps_head() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..32 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        assert!(fs.truncate(VolumeId(0), FileId(1), 10));
        fs.allocator().drain();
        assert_eq!(
            fs.read(VolumeId(0), FileId(1), 5),
            Some(wafl_blockdev::stamp(1, 5, 1))
        );
        assert_eq!(fs.read(VolumeId(0), FileId(1), 10), None);
        assert_eq!(fs.read(VolumeId(0), FileId(1), 31), None);
        fs.run_cp();
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn truncate_drops_uncommitted_dirty_tail() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..16 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.truncate(VolumeId(0), FileId(1), 4);
        let r = fs.run_cp();
        assert_eq!(r.buffers_cleaned, 4, "only the surviving head is cleaned");
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn delete_and_truncate_survive_crash_replay() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        fs.create_file(VolumeId(0), FileId(2));
        for fbn in 0..20 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
            fs.write(VolumeId(0), FileId(2), fbn, wafl_blockdev::stamp(2, fbn, 1));
        }
        fs.run_cp();
        fs.delete_file(VolumeId(0), FileId(1));
        fs.truncate(VolumeId(0), FileId(2), 5);
        let r = fs.crash_and_recover(ExecMode::Inline);
        assert_eq!(r.read(VolumeId(0), FileId(1), 0), None, "delete replayed");
        assert_eq!(
            r.read(VolumeId(0), FileId(2), 3),
            Some(wafl_blockdev::stamp(2, 3, 1))
        );
        assert_eq!(
            r.read(VolumeId(0), FileId(2), 10),
            None,
            "truncate replayed"
        );
        r.run_cp();
        r.verify_integrity().unwrap();
    }

    #[test]
    fn deleted_space_is_reusable() {
        // Fill a tiny aggregate, delete, refill: allocation must succeed
        // again (space actually cycles).
        let cfg = FsConfig {
            vvbn_per_volume: 1 << 12,
            ..Default::default()
        };
        let fs = Filesystem::new(
            cfg,
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(2, 1, 512)
                .build(),
            DriveKind::Ssd,
            ExecMode::Inline,
        );
        fs.create_volume(VolumeId(0));
        for round in 0..4u64 {
            fs.create_file(VolumeId(0), FileId(round));
            for fbn in 0..400 {
                fs.write(
                    VolumeId(0),
                    FileId(round),
                    fbn,
                    wafl_blockdev::stamp(round, fbn, 1),
                );
            }
            fs.run_cp();
            fs.delete_file(VolumeId(0), FileId(round));
            fs.allocator().drain();
        }
        fs.run_cp();
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn mid_cp_crash_recovers_equivalently_at_every_point() {
        // A crash at ANY point before the superblock commit must be
        // equivalent to no CP at all: the committed image plus NVLog
        // replay reconstructs every acknowledged op (§II-C).
        for at in CrashPoint::ALL {
            let fs = fs(ExecMode::Inline);
            fs.create_volume(VolumeId(0));
            fs.create_file(VolumeId(0), FileId(1));
            for fbn in 0..16 {
                fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
            }
            fs.run_cp();
            // Acknowledged after the commit: overwrites + a new file.
            for fbn in 0..16 {
                fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 2));
            }
            fs.create_file(VolumeId(0), FileId(2));
            fs.write(VolumeId(0), FileId(2), 0, wafl_blockdev::stamp(2, 0, 1));
            fs.run_cp_crash_at(at);
            let r = fs.crash_and_recover(ExecMode::Inline);
            for fbn in 0..16 {
                assert_eq!(
                    r.read(VolumeId(0), FileId(1), fbn),
                    Some(wafl_blockdev::stamp(1, fbn, 2)),
                    "replayed overwrite lost at {at:?} fbn {fbn}"
                );
            }
            assert_eq!(
                r.read(VolumeId(0), FileId(2), 0),
                Some(wafl_blockdev::stamp(2, 0, 1)),
                "replayed create lost at {at:?}"
            );
            // The replayed state commits and verifies end to end,
            // including the raw-media parity scrub.
            r.run_cp();
            for fbn in 0..16 {
                assert_eq!(
                    r.read_persisted(VolumeId(0), FileId(1), fbn),
                    Some(wafl_blockdev::stamp(1, fbn, 2))
                );
            }
            r.verify_integrity()
                .unwrap_or_else(|e| panic!("verify failed after crash at {at:?}: {e}"));
        }
    }

    #[test]
    fn cp_completes_degraded_after_drive_failure_then_rebuilds() {
        // One data drive dies mid-run; every CP still completes through
        // parity-based degraded writes and reads, and the drive rebuilds.
        let cfg = FsConfig {
            vvbn_per_volume: 1 << 14,
            ..Default::default()
        };
        let fs = Filesystem::with_faults(
            cfg,
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 2048)
                .build(),
            DriveKind::Ssd,
            // The equal-progress bucket cache batches each drive's CP
            // writes into a handful of long runs (one fault-plan op
            // each), so trip the failure on the drive's third op to land
            // mid-CP.
            FaultSpec::drive_failure(1, 2),
            RetryPolicy::default(),
            ExecMode::Inline,
        );
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..200 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        let snap = fs.io().fault_snapshot();
        assert_eq!(snap.drives_offline, 1, "the targeted drive went offline");
        // Every committed block reads back — a third of them through
        // XOR reconstruction.
        for fbn in 0..200 {
            assert_eq!(
                fs.read_persisted(VolumeId(0), FileId(1), fbn),
                Some(wafl_blockdev::stamp(1, fbn, 1)),
                "degraded read wrong at fbn {fbn}"
            );
        }
        assert!(
            fs.io().fault_snapshot().reconstructed_reads > 0,
            "reads off the failed drive were reconstructed from parity"
        );
        // The raw media is inconsistent until the drive is rebuilt.
        assert!(fs.verify_integrity().is_err(), "scrub fails while degraded");
        assert!(fs.io().rebuild_offline() > 0);
        fs.verify_integrity().unwrap();
    }

    #[test]
    fn crash_while_degraded_recovers_via_replay_and_rebuild() {
        // Compound fault: a drive failure AND a mid-CP crash. Recovery
        // replays the NVLog over the degraded aggregate, the next CP
        // completes degraded, and the rebuild restores parity.
        let cfg = FsConfig {
            vvbn_per_volume: 1 << 14,
            ..Default::default()
        };
        let fs = Filesystem::with_faults(
            cfg,
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 2048)
                .build(),
            DriveKind::Ssd,
            FaultSpec::drive_failure(2, 4),
            RetryPolicy::default(),
            ExecMode::Inline,
        );
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for fbn in 0..64 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 1));
        }
        fs.run_cp();
        for fbn in 0..64 {
            fs.write(VolumeId(0), FileId(1), fbn, wafl_blockdev::stamp(1, fbn, 2));
        }
        fs.run_cp_crash_at(CrashPoint::AfterMetafileFlush);
        let r = fs.crash_and_recover(ExecMode::Inline);
        r.run_cp();
        for fbn in 0..64 {
            assert_eq!(
                r.read_persisted(VolumeId(0), FileId(1), fbn),
                Some(wafl_blockdev::stamp(1, fbn, 2))
            );
        }
        assert!(r.io().rebuild_offline() > 0, "the failed drive rebuilds");
        r.verify_integrity().unwrap();
    }

    #[test]
    fn writes_during_cp_land_in_next_cp() {
        let fs = fs(ExecMode::Inline);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        fs.write(VolumeId(0), FileId(1), 0, 0xa);
        fs.run_cp();
        fs.write(VolumeId(0), FileId(1), 0, 0xb);
        assert_eq!(fs.read_persisted(VolumeId(0), FileId(1), 0), Some(0xa));
        let r = fs.run_cp();
        assert_eq!(r.buffers_cleaned, 1);
        assert_eq!(fs.read_persisted(VolumeId(0), FileId(1), 0), Some(0xb));
        fs.verify_integrity().unwrap();
    }
}
