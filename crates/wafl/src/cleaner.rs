//! Parallel inode cleaning.
//!
//! "Each dirty buffer is cleaned by allocating a free block, writing the
//! buffer to this chosen location, and freeing the previously used block"
//! (§II-C). Under White Alligator, "multiple cleaner threads \[can\] operate
//! concurrently on different inodes or different regions of a single
//! inode" (§IV-A), and "synchronization is required only on the bucket
//! cache, the tetris data structures, and the used bucket list" (§IV-B1).
//!
//! This module provides:
//!
//! * [`partition_work`] — turns a CP's frozen dirty-inode list into
//!   cleaner messages: large inodes are *split into regions* (multiple
//!   cleaners per inode) and, when batching is enabled, many small inodes
//!   are packed into one message ("batched inode cleaning allows multiple
//!   inodes to be associated with a single message in cases when the
//!   dirty inodes each has few dirty buffers, to reduce the message
//!   processing overhead", §V-C);
//! * [`clean_job`] — the per-job cleaning loop: GET a bucket, USE a VBN
//!   per dirty buffer, stage frees of overwritten blocks, PUT the bucket;
//! * [`CleanerPool`] — a real-thread pool of cleaners with an
//!   activatable-thread limit driven by the
//!   [`DynamicTuner`](crate::tuner::DynamicTuner).

use crate::buffer::{CleanedBlock, DirtyBuffer};
use crate::inode::FileId;
use crate::volume::{Volume, VolumeId};
use alligator::{Allocator, Bucket};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Cleaner subsystem configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CleanerConfig {
    /// Worker threads in the pool (the paper's cleaner-thread count; 1 =
    /// the serialized-cleaning baseline of Figs 4/7).
    pub threads: usize,
    /// Enable batched inode cleaning (§V-C).
    pub batching: bool,
    /// Max inodes per batched message.
    pub batch_max_inodes: usize,
    /// Max total dirty buffers per batched message.
    pub batch_max_buffers: usize,
    /// Inodes with more dirty buffers than this are split into regions so
    /// multiple cleaners can work on one inode (§IV-A).
    pub region_split_threshold: usize,
    /// Buffers per region when splitting.
    pub region_size: usize,
    /// VVBNs reserved per chunk by a cleaner (volume-side bucket analog).
    pub vvbn_chunk: usize,
    /// Buckets acquired per GET batch: a cleaner pops up to this many
    /// buckets from its home shard in one cache synchronization event
    /// ([`Allocator::get_bucket_many`]) and feeds later jobs from the
    /// prefetched tail — §IV-C's amortization applied to GET itself.
    /// `1` disables batching (every bucket pays its own CAS/lock).
    pub get_batch: usize,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            batching: true,
            batch_max_inodes: 32,
            batch_max_buffers: 256,
            region_split_threshold: 512,
            region_size: 256,
            vvbn_chunk: 64,
            get_batch: 4,
        }
    }
}

impl CleanerConfig {
    /// The single-threaded baseline ("serialized cleaner threads").
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }
}

/// One inode (or inode region) worth of cleaning work.
pub struct CleanJob {
    /// Volume owning the file.
    pub vol: Arc<Volume>,
    /// The file being cleaned.
    pub file: FileId,
    /// The dirty buffers of this job (the whole inode or one region).
    pub buffers: Vec<DirtyBuffer>,
}

/// One cleaner message: one or more jobs (more than one only when batched).
pub struct CleanItem {
    /// The jobs carried by this message.
    pub jobs: Vec<CleanJob>,
}

/// The outcome of cleaning one job.
#[derive(Debug)]
pub struct CleanResult {
    /// Volume owning the file.
    pub vol: VolumeId,
    /// The cleaned file.
    pub file: FileId,
    /// Where each buffer landed; the CP engine applies these to the
    /// inode's block map.
    pub cleaned: Vec<CleanedBlock>,
}

/// Partition a CP's frozen work into cleaner messages.
pub fn partition_work(
    frozen: Vec<(Arc<Volume>, FileId, Vec<DirtyBuffer>)>,
    cfg: &CleanerConfig,
) -> Vec<CleanItem> {
    let mut items = Vec::new();
    let mut batch: Vec<CleanJob> = Vec::new();
    let mut batch_buffers = 0usize;
    for (vol, file, buffers) in frozen {
        if buffers.len() > cfg.region_split_threshold {
            // Large inode: split into regions, one message each, so
            // multiple cleaner threads can process it in parallel.
            let mut rest = buffers;
            while !rest.is_empty() {
                let take = rest.len().min(cfg.region_size);
                let region: Vec<DirtyBuffer> = rest.drain(..take).collect();
                items.push(CleanItem {
                    jobs: vec![CleanJob {
                        vol: Arc::clone(&vol),
                        file,
                        buffers: region,
                    }],
                });
            }
        } else if cfg.batching {
            if !batch.is_empty()
                && (batch.len() >= cfg.batch_max_inodes
                    || batch_buffers + buffers.len() > cfg.batch_max_buffers)
            {
                items.push(CleanItem {
                    jobs: std::mem::take(&mut batch),
                });
                batch_buffers = 0;
            }
            batch_buffers += buffers.len();
            batch.push(CleanJob { vol, file, buffers });
        } else {
            items.push(CleanItem {
                jobs: vec![CleanJob { vol, file, buffers }],
            });
        }
    }
    if !batch.is_empty() {
        items.push(CleanItem { jobs: batch });
    }
    items
}

/// A cleaner's bucket state across the jobs of one message: the bucket
/// currently being consumed plus the prefetched tail of the last batched
/// GET. Create one per message, run jobs through [`clean_job`], and call
/// [`CleanerCtx::finish`] at message end to PUT the in-hand bucket and
/// requeue untouched prefetched ones.
#[derive(Debug)]
pub struct CleanerCtx {
    /// This cleaner's index (bucket-cache shard affinity).
    pub cleaner: usize,
    /// Buckets per GET batch ([`CleanerConfig::get_batch`]).
    pub get_batch: usize,
    /// The bucket VBNs are currently drawn from.
    pub bucket: Option<Bucket>,
    /// Untouched buckets from the last batched GET, consumed before the
    /// next cache round-trip.
    pub prefetch: VecDeque<Bucket>,
}

impl CleanerCtx {
    /// Context for cleaner `cleaner` batching `get_batch` buckets per GET.
    pub fn new(cleaner: usize, get_batch: usize) -> Self {
        Self {
            cleaner,
            get_batch: get_batch.max(1),
            bucket: None,
            prefetch: VecDeque::new(),
        }
    }

    /// Make `bucket` non-empty: take from the prefetch queue, or GET a
    /// fresh batch. Returns `None` when the aggregate is out of space.
    fn refill(&mut self, alloc: &Allocator) -> Option<()> {
        if let Some(b) = self.prefetch.pop_front() {
            self.bucket = Some(b);
            return Some(());
        }
        let want = self.adaptive_batch(alloc);
        let mut batch = alloc.get_bucket_many(self.cleaner, want)?;
        let first = batch.remove(0);
        self.prefetch.extend(batch);
        self.bucket = Some(first);
        Some(())
    }

    /// The GET batch size for the next cache round-trip. The configured
    /// `get_batch` is a *base*, adapted to the cache's state at GET time:
    ///
    /// * when the whole cache is at or under the refill low watermark the
    ///   batch shrinks to 1 — stripping the last buckets into one
    ///   cleaner's prefetch queue would starve its peers and race ahead
    ///   of the refill pipeline;
    /// * when this cleaner's home shard runs deep (≥ 2× the base) the
    ///   batch grows to 2× — the refill pipeline is ahead, so amortizing
    ///   more GETs into the single pop costs nothing (§IV-C applied to
    ///   GET);
    /// * otherwise the base applies.
    pub fn adaptive_batch(&self, alloc: &Allocator) -> usize {
        let base = self.get_batch;
        if base <= 1 {
            return base.max(1);
        }
        let cache = alloc.cache();
        let stats = alloc.infra().stats();
        if cache.len() <= alloc.config().low_watermark {
            // ordering: statistics counter; staleness is acceptable.
            stats.cache_batch_shrinks.fetch_add(1, Ordering::Relaxed);
            return 1;
        }
        let depth = cache.shard_fill(self.cleaner);
        if depth >= base * 2 {
            // ordering: statistics counter; staleness is acceptable.
            stats.cache_batch_grows.fetch_add(1, Ordering::Relaxed);
            return base * 2;
        }
        base
    }

    /// Message-end settlement: PUT the bucket in hand (its USEs must
    /// commit) and hand untouched prefetched buckets back to the cache.
    pub fn finish(&mut self, alloc: &Allocator) {
        if let Some(b) = self.bucket.take() {
            alloc.put_bucket(b);
        }
        for b in self.prefetch.drain(..) {
            alloc.requeue_bucket(b);
        }
    }
}

/// Clean one job: assign a VVBN and a PVBN to every dirty buffer, record
/// the buffer into the allocator's tetris (via USE), and stage frees of
/// overwritten blocks. `ctx` carries the cleaner's bucket (and batched-GET
/// prefetch queue) across jobs within one message.
///
/// `ctx.cleaner` is the calling cleaner's index: GETs go to bucket-cache
/// shard `cleaner % nshards` first, so concurrent cleaners take disjoint
/// shard hot paths on the common case and only steal across shards when
/// their home shard runs dry.
///
/// Returns `None` if the aggregate ran out of space mid-job (callers
/// treat this as a fatal CP error; `ctx` can still be `finish`ed to
/// settle buckets it holds).
pub fn clean_job(
    alloc: &Allocator,
    ctx: &mut CleanerCtx,
    stage: &mut alligator::Stage,
    job: &CleanJob,
    vvbn_chunk: usize,
) -> Option<CleanResult> {
    let mut cleaned = Vec::with_capacity(job.buffers.len());
    let mut chunk: Option<crate::vvbn::VvbnChunkGuard<'_>> = None;
    for buf in &job.buffers {
        // Virtual VBN from the volume's chunked allocator.
        let vvbn = loop {
            if let Some(c) = chunk.as_mut() {
                if let Some(v) = c.take() {
                    break v;
                }
            }
            chunk = Some(crate::vvbn::VvbnChunkGuard::new(
                job.vol.vvbn(),
                vvbn_chunk,
            )?);
        };
        job.vol.vvbn().commit(vvbn);
        // Physical VBN from the bucket (prefetched or freshly GOT).
        let pvbn = loop {
            if let Some(b) = ctx.bucket.as_mut() {
                if let Some(v) = b.use_vbn(buf.stamp) {
                    break v;
                }
            }
            if let Some(old) = ctx.bucket.take() {
                alloc.put_bucket(old);
            }
            ctx.refill(alloc)?;
        };
        // Overwrite: free the previous locations.
        if let Some(old) = buf.old_pvbn {
            alloc.free_vbn(stage, old);
        }
        if let Some(old_v) = buf.old_vvbn {
            job.vol.vvbn().free(old_v);
        }
        cleaned.push(CleanedBlock {
            fbn: buf.fbn,
            vvbn,
            pvbn,
            stamp: buf.stamp,
        });
    }
    // Unused VVBNs go back to the volume.
    drop(chunk);
    Some(CleanResult {
        vol: job.vol.id(),
        file: job.file,
        cleaned,
    })
}

enum Msg {
    Item {
        item: CleanItem,
        reply: Sender<Option<Vec<CleanResult>>>,
    },
}

struct PoolShared {
    alloc: Arc<Allocator>,
    cfg: CleanerConfig,
    rx: Receiver<Msg>,
    /// Workers with index ≥ this limit park (dynamic tuning).
    active_limit: AtomicUsize,
    limit_changed: Condvar,
    limit_lock: Mutex<()>, // lock-rank: cleaner.limit 26
    shutdown: AtomicBool,
    /// Per-pool busy time for utilization measurement.
    busy_ns: AtomicU64,
    items_done: AtomicU64,
}

/// A pool of real cleaner threads.
pub struct CleanerPool {
    shared: Arc<PoolShared>,
    tx: Sender<Msg>,
    workers: Vec<JoinHandle<()>>,
}

impl CleanerPool {
    /// Spawn `cfg.threads` cleaner threads bound to an allocator.
    pub fn new(alloc: Arc<Allocator>, cfg: CleanerConfig) -> Self {
        assert!(cfg.threads >= 1);
        let (tx, rx) = unbounded();
        let shared = Arc::new(PoolShared {
            alloc,
            cfg,
            rx,
            active_limit: AtomicUsize::new(cfg.threads),
            limit_changed: Condvar::new(),
            limit_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            busy_ns: AtomicU64::new(0),
            items_done: AtomicU64::new(0),
        });
        let workers = (0..cfg.threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cleaner-{i}"))
                    .spawn(move || worker(i, &shared))
                    .expect("spawn cleaner")
            })
            .collect();
        Self {
            shared,
            tx,
            workers,
        }
    }

    /// Pool configuration.
    #[inline]
    pub fn config(&self) -> &CleanerConfig {
        &self.shared.cfg
    }

    /// Currently active (non-parked) thread limit.
    pub fn active_limit(&self) -> usize {
        // ordering: Acquire — pairs with the control plane's Release store
        // of the limit; pairs-with: cleaner.limit.
        self.shared.active_limit.load(Ordering::Acquire)
    }

    /// Set the active-thread limit (the dynamic tuner's actuator).
    pub fn set_active_limit(&self, n: usize) {
        let n = n.clamp(1, self.workers.len());
        // ordering: Release — publishes the new worker limit;
        // pairs-with: cleaner.limit.
        self.shared.active_limit.store(n, Ordering::Release);
        let _g = self.shared.limit_lock.lock();
        self.shared.limit_changed.notify_all();
    }

    /// Accumulated busy nanoseconds across all cleaners (utilization
    /// numerator for the tuner).
    pub fn busy_ns(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.shared.busy_ns.load(Ordering::Relaxed)
    }

    /// Items processed over the pool's lifetime.
    pub fn items_done(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.shared.items_done.load(Ordering::Relaxed)
    }

    /// Clean a CP's worth of items, blocking until all jobs complete.
    ///
    /// # Panics
    /// Panics if the aggregate ran out of space mid-CP (no caller can
    /// make progress in that state).
    pub fn clean_all(&self, items: Vec<CleanItem>) -> Vec<CleanResult> {
        let (reply_tx, reply_rx) = unbounded();
        let n = items.len();
        for item in items {
            self.tx
                .send(Msg::Item {
                    item,
                    reply: reply_tx.clone(),
                })
                .expect("cleaner pool is alive");
        }
        drop(reply_tx);
        let mut out = Vec::new();
        for _ in 0..n {
            let results = reply_rx
                .recv()
                .expect("cleaner worker dropped its reply")
                .expect("aggregate out of space during CP");
            out.extend(results);
        }
        out
    }

    /// Plain-text metrics snapshot for the pool: every allocator counter
    /// (via `StatsSnapshot::named`, so nothing is silently unreported)
    /// plus the pool's own busy/throughput counters and the RAID layer's
    /// degraded-read/rebuild progress, rendered through the unified obs
    /// registry.
    pub fn metrics_text(&self) -> String {
        let reg = obs::Registry::new();
        reg.import_counters(self.shared.alloc.stats().named());
        reg.counter("pool_busy_ns").set(self.busy_ns());
        reg.counter("pool_items_done").set(self.items_done());
        reg.counter("pool_threads").set(self.workers.len() as u64);
        reg.counter("pool_active_limit")
            .set(self.active_limit() as u64);
        // Degraded-mode and repair progress from the RAID layer (the
        // drive-level `io_drive_errors` is distinct from the allocator's
        // `io_errors`, which counts terminally failed tetris writes).
        let f = self.shared.alloc.infra().io().fault_snapshot();
        reg.counter("io_reconstructed_reads")
            .set(f.reconstructed_reads);
        reg.counter("io_degraded_stripes").set(f.degraded_stripes);
        reg.counter("io_degraded_writes").set(f.degraded_writes);
        reg.counter("io_drive_retries").set(f.io_retries);
        reg.counter("io_drive_errors").set(f.io_errors);
        reg.counter("io_blocks_rebuilt").set(f.blocks_rebuilt);
        reg.gauge("io_drives_offline").set(f.drives_offline);
        // Instantaneous levels (gauges live on `AllocStats` only — they
        // are not part of the snapshot, so surface each one here; their
        // high-water marks arrive through `named()` above).
        let raw = self.shared.alloc.raw_stats();
        reg.gauge("cache_arena_chunks_live").set(
            raw.arena_chunks_live
                // ordering: statistics gauge; staleness is acceptable.
                .load(Ordering::Relaxed),
        );
        reg.gauge("put_commit_outstanding").set(
            raw.put_commit_outstanding
                // ordering: statistics gauge; staleness is acceptable.
                .load(Ordering::Relaxed),
        );
        reg.gauge("io_inflight").set(
            raw.io_inflight
                // ordering: statistics gauge; staleness is acceptable.
                .load(Ordering::Relaxed),
        );
        reg.text_snapshot()
    }

    /// Stop the pool (drains queued items first).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        // ordering: Release/Acquire pair on the shutdown flag;
        // pairs-with: cleaner.shutdown.
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake parked workers and unblock recv via channel close.
        self.set_active_limit(self.workers.len());
        let (dummy_tx, _) = unbounded::<Msg>();
        let _ = std::mem::replace(&mut self.tx, dummy_tx); // drop real sender
        let _g = self.shared.limit_lock.lock();
        self.shared.limit_changed.notify_all();
        drop(_g);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CleanerPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

impl std::fmt::Debug for CleanerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanerPool")
            .field("threads", &self.workers.len())
            .field("active_limit", &self.active_limit())
            .finish()
    }
}

fn worker(index: usize, shared: &PoolShared) {
    loop {
        // Dynamic tuning: park while deactivated.
        {
            let mut g = shared.limit_lock.lock();
            // ordering: Acquire — pairs with the control plane's Release store
            // of the limit; pairs-with: cleaner.limit.
            while index >= shared.active_limit.load(Ordering::Acquire)
                // ordering: Release/Acquire pair on the shutdown flag;
        // pairs-with: cleaner.shutdown.
                && !shared.shutdown.load(Ordering::Acquire)
            {
                shared.limit_changed.wait(&mut g);
            }
        }
        let msg = match shared.rx.recv() {
            Ok(m) => m,
            Err(_) => return, // all senders gone: shutdown
        };
        match msg {
            Msg::Item { item, reply } => {
                let t0 = std::time::Instant::now();
                let _sp = obs::trace_span!(obs::EventKind::CleanItem, item.jobs.len() as u64);
                let mut ctx = CleanerCtx::new(index, shared.cfg.get_batch);
                let mut stage = shared.alloc.new_stage();
                let mut results = Vec::with_capacity(item.jobs.len());
                let mut failed = false;
                for job in &item.jobs {
                    match clean_job(
                        &shared.alloc,
                        &mut ctx,
                        &mut stage,
                        job,
                        shared.cfg.vvbn_chunk,
                    ) {
                        Some(r) => results.push(r),
                        None => {
                            failed = true;
                            break;
                        }
                    }
                }
                // PUT the bucket, requeue unused prefetches, flush the
                // stage at message end.
                ctx.finish(&shared.alloc);
                shared.alloc.flush_stage(&mut stage);
                shared
                    .busy_ns
                    // ordering: statistics counter; staleness is acceptable.
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                // ordering: statistics counter; staleness is acceptable.
                shared.items_done.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(if failed { None } else { Some(results) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alligator::{AllocConfig, InlineExecutor};
    use std::sync::Arc;
    use waffinity::{Model, Topology};
    use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
    use wafl_metafile::AggregateMap;

    fn mk_alloc() -> Arc<Allocator> {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 4096)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        Allocator::new(
            AllocConfig::with_chunk(64),
            aggmap,
            io,
            Arc::new(InlineExecutor),
            topo,
            0,
        )
    }

    fn vol() -> Arc<Volume> {
        let v = Volume::new(VolumeId(0), 0, 1 << 16);
        v.create_file(FileId(1));
        v.create_file(FileId(2));
        v
    }

    fn dirty(n: u64) -> Vec<DirtyBuffer> {
        (0..n)
            .map(|fbn| DirtyBuffer::first_write(fbn, wafl_blockdev::stamp(1, fbn, 1)))
            .collect()
    }

    #[test]
    fn partition_splits_large_inodes_into_regions() {
        let cfg = CleanerConfig {
            region_split_threshold: 10,
            region_size: 4,
            batching: false,
            ..Default::default()
        };
        let v = vol();
        let items = partition_work(vec![(v, FileId(1), dirty(11))], &cfg);
        assert_eq!(items.len(), 3, "11 buffers → regions of 4+4+3");
        assert!(items.iter().all(|i| i.jobs.len() == 1));
        let sizes: Vec<usize> = items.iter().map(|i| i.jobs[0].buffers.len()).collect();
        assert_eq!(sizes, vec![4, 4, 3]);
    }

    #[test]
    fn partition_batches_small_inodes() {
        let cfg = CleanerConfig {
            batching: true,
            batch_max_inodes: 3,
            batch_max_buffers: 1000,
            ..Default::default()
        };
        let v = vol();
        let frozen: Vec<_> = (0..7u64)
            .map(|f| {
                v.create_file(FileId(100 + f));
                (Arc::clone(&v), FileId(100 + f), dirty(2))
            })
            .collect();
        let items = partition_work(frozen, &cfg);
        assert_eq!(items.len(), 3, "7 inodes at ≤3 per message");
        assert_eq!(items[0].jobs.len(), 3);
        assert_eq!(items[2].jobs.len(), 1);
    }

    #[test]
    fn partition_without_batching_is_one_inode_per_message() {
        let cfg = CleanerConfig {
            batching: false,
            ..Default::default()
        };
        let v = vol();
        let frozen: Vec<_> = (0..5u64)
            .map(|f| {
                v.create_file(FileId(200 + f));
                (Arc::clone(&v), FileId(200 + f), dirty(1))
            })
            .collect();
        let items = partition_work(frozen, &cfg);
        assert_eq!(items.len(), 5);
    }

    #[test]
    fn batch_respects_buffer_budget() {
        let cfg = CleanerConfig {
            batching: true,
            batch_max_inodes: 100,
            batch_max_buffers: 5,
            ..Default::default()
        };
        let v = vol();
        let frozen: Vec<_> = (0..4u64)
            .map(|f| {
                v.create_file(FileId(300 + f));
                (Arc::clone(&v), FileId(300 + f), dirty(3))
            })
            .collect();
        let items = partition_work(frozen, &cfg);
        // 3+3 > 5 → one inode per... 3 ≤ 5, adding second would exceed →
        // messages of 1 inode... first item holds inode0 (3 buffers);
        // inode1 would make 6 > 5 → flush. So 4 messages? No: each new
        // message starts empty, 3 ≤ 5 then next would exceed → 4 items of
        // 1... wait, after flush, batch = [inode1] (3), inode2 exceeds →
        // flush. Result: 4 items.
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn clean_job_assigns_contiguous_vbns_and_frees_old() {
        let alloc = mk_alloc();
        let v = vol();
        let mut ctx = CleanerCtx::new(0, 4);
        let mut stage = alloc.new_stage();
        let job = CleanJob {
            vol: Arc::clone(&v),
            file: FileId(1),
            buffers: dirty(8),
        };
        let r = clean_job(&alloc, &mut ctx, &mut stage, &job, 16).unwrap();
        assert_eq!(r.cleaned.len(), 8);
        for w in r.cleaned.windows(2) {
            assert_eq!(
                w[1].pvbn.0,
                w[0].pvbn.0 + 1,
                "consecutive buffers get contiguous VBNs"
            );
        }
        // Overwrite pass: frees must be staged.
        let over: Vec<DirtyBuffer> = r
            .cleaned
            .iter()
            .map(|c| DirtyBuffer::overwrite(c.fbn, c.stamp + 1, c.vvbn, c.pvbn))
            .collect();
        let job2 = CleanJob {
            vol: v,
            file: FileId(1),
            buffers: over,
        };
        let r2 = clean_job(&alloc, &mut ctx, &mut stage, &job2, 16).unwrap();
        assert_eq!(r2.cleaned.len(), 8);
        assert_eq!(stage.len(), 8, "8 old PVBNs staged for freeing");
        ctx.finish(&alloc);
        alloc.flush_stage(&mut stage);
        alloc.drain();
        alloc.infra().aggmap().verify().unwrap();
    }

    #[test]
    fn batched_get_prefetches_and_requeues_leftovers() {
        // Single-shard cache so one refill round (3 buckets, one per
        // drive) lands in one stack and a get_batch=4 GET can amortize.
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 4096)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        let mut cfg = AllocConfig::with_chunk(64);
        cfg.cache_shards = 1;
        let alloc = Allocator::new(cfg, aggmap, io, Arc::new(InlineExecutor), topo, 0);
        let v = vol();
        let mut ctx = CleanerCtx::new(0, 4);
        let mut stage = alloc.new_stage();
        // Warm the cache first (inline executor: the round lands
        // synchronously) so the first GET takes the batched fast path
        // instead of the empty-cache stall path, which hands out a
        // single bucket.
        alloc.request_refill();
        let job = CleanJob {
            vol: Arc::clone(&v),
            file: FileId(1),
            buffers: dirty(8),
        };
        clean_job(&alloc, &mut ctx, &mut stage, &job, 16).unwrap();
        let s = alloc.stats();
        assert!(
            s.cache_get_batched >= 2,
            "one GET batch delivered the whole refill round (got {})",
            s.cache_get_batched
        );
        let prefetched = ctx.prefetch.len();
        assert_eq!(prefetched, 2, "bucket in hand + 2 prefetched");
        let len_before = alloc.cache().len();
        ctx.finish(&alloc);
        assert_eq!(
            alloc.cache().len(),
            len_before + prefetched,
            "untouched prefetched buckets requeued"
        );
        alloc.flush_stage(&mut stage);
        alloc.flush_cache();
        alloc.drain();
        alloc.infra().aggmap().verify().unwrap();
        alloc.stats().check_conservation(0).unwrap();
    }

    /// Single-shard allocator for the adaptive-batch transition tests:
    /// every refill round (3 buckets, one per drive) lands in the one
    /// shard, so home-shard depth is exact and deterministic.
    fn mk_alloc_single_shard() -> Arc<Allocator> {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 4096)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        let mut cfg = AllocConfig::with_chunk(64);
        cfg.cache_shards = 1;
        Allocator::new(cfg, aggmap, io, Arc::new(InlineExecutor), topo, 0)
    }

    #[test]
    fn adaptive_batch_grows_when_home_shard_runs_deep() {
        let alloc = mk_alloc_single_shard();
        let ctx = CleanerCtx::new(0, 2);
        // Two inline refill rounds: 6 buckets in the home shard, past
        // 2× the base batch of 2.
        alloc.request_refill();
        alloc.request_refill();
        assert!(alloc.cache().shard_fill(0) >= 4, "setup: deep home shard");
        assert_eq!(
            ctx.adaptive_batch(&alloc),
            4,
            "deep home shard doubles the batch"
        );
        assert!(alloc.stats().cache_batch_grows >= 1);
        alloc.flush_cache();
        alloc.drain();
        alloc.stats().check_conservation(0).unwrap();
    }

    #[test]
    fn adaptive_batch_shrinks_near_low_watermark() {
        let alloc = mk_alloc_single_shard();
        let ctx = CleanerCtx::new(0, 4);
        // One round: 3 buckets — above the watermark (2), below the
        // grow threshold (8) — the base applies.
        alloc.request_refill();
        assert_eq!(
            ctx.adaptive_batch(&alloc),
            4,
            "moderate fill keeps the base batch"
        );
        // Draw the cache down to the low watermark: the batch collapses
        // to 1 so one cleaner cannot strip the last buckets.
        let held = alloc.get_bucket_from(0).unwrap();
        assert!(alloc.cache().len() <= alloc.config().low_watermark);
        assert_eq!(ctx.adaptive_batch(&alloc), 1, "shrink at the watermark");
        assert!(alloc.stats().cache_batch_shrinks >= 1);
        alloc.requeue_bucket(held);
        alloc.flush_cache();
        alloc.drain();
        alloc.stats().check_conservation(0).unwrap();
    }

    #[test]
    fn pool_cleans_items_in_parallel() {
        let alloc = mk_alloc();
        let v = vol();
        let cfg = CleanerConfig {
            threads: 4,
            batching: false,
            ..Default::default()
        };
        let pool = CleanerPool::new(Arc::clone(&alloc), cfg);
        let frozen: Vec<_> = (0..20u64)
            .map(|f| {
                v.create_file(FileId(400 + f));
                (Arc::clone(&v), FileId(400 + f), dirty(16))
            })
            .collect();
        let items = partition_work(frozen, &cfg);
        let results = pool.clean_all(items);
        assert_eq!(results.len(), 20);
        let mut all: Vec<u64> = results
            .iter()
            .flat_map(|r| r.cleaned.iter().map(|c| c.pvbn.0))
            .collect();
        let n = all.len();
        assert_eq!(n, 320);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no pvbn assigned twice");
        pool.shutdown();
        alloc.drain();
    }

    #[test]
    fn reduced_active_limit_still_completes() {
        let alloc = mk_alloc();
        let v = vol();
        let cfg = CleanerConfig {
            threads: 4,
            ..Default::default()
        };
        let pool = CleanerPool::new(Arc::clone(&alloc), cfg);
        pool.set_active_limit(1);
        assert_eq!(pool.active_limit(), 1);
        let items = partition_work(vec![(v, FileId(1), dirty(100))], &cfg);
        let results = pool.clean_all(items);
        let total: usize = results.iter().map(|r| r.cleaned.len()).sum();
        assert_eq!(total, 100);
        pool.set_active_limit(4);
        assert!(pool.items_done() > 0);
    }

    #[test]
    fn pool_metrics_text_reports_every_allocator_counter() {
        let alloc = mk_alloc();
        let v = vol();
        let cfg = CleanerConfig {
            threads: 2,
            ..Default::default()
        };
        let pool = CleanerPool::new(Arc::clone(&alloc), cfg);
        v.create_file(FileId(900));
        let items = partition_work(vec![(v, FileId(900), dirty(32))], &cfg);
        pool.clean_all(items);
        let text = pool.metrics_text();
        // Every allocator counter must appear (the `named()` guarantee),
        // alongside the pool's own counters.
        for name in alligator::StatsSnapshot::NAMES {
            assert!(
                text.contains(&format!("counter {name} ")),
                "missing {name}:\n{text}"
            );
        }
        assert!(text.contains("counter pool_items_done 1\n"), "{text}");
        assert!(text.contains("counter pool_threads 2\n"), "{text}");
        // RAID-layer repair/degraded progress must be visible too
        // (satellite of the scrub work: rebuilds were invisible before).
        for name in [
            "io_reconstructed_reads",
            "io_degraded_stripes",
            "io_degraded_writes",
            "io_drive_retries",
            "io_drive_errors",
            "io_blocks_rebuilt",
        ] {
            assert!(
                text.contains(&format!("counter {name} ")),
                "missing {name}:\n{text}"
            );
        }
        assert!(text.contains("gauge io_drives_offline "), "{text}");
        pool.shutdown();
        alloc.drain();
    }
}
