//! # wafl — a WAFL-like copy-on-write file system substrate
//!
//! The paper's subject is the write allocator, but the allocator only
//! exists inside a file system with WAFL's structure (§II-B/C):
//!
//! * all data and metadata live in **files** represented by **inodes**;
//!   a block of a file is represented in memory by a **buffer**;
//! * multiple **FlexVol volumes** live in a shared **aggregate**; a block
//!   in a volume has both a physical **VBN** and a **Virtual VBN**
//!   (VVBN) — its offset within the volume;
//! * WAFL never writes in place: every incoming write requires write
//!   allocation, and overwrites free the old block;
//! * updates are batched into **consistency points (CPs)**: operations
//!   are logged in nonvolatile RAM for fast reply, dirty state is
//!   atomically identified at CP start (with in-memory COW so client
//!   traffic continues), every dirty buffer is *cleaned* — assigned a
//!   free block, written, old block freed — and finally the superblock is
//!   atomically overwritten. On a crash, the previous CP's image plus an
//!   NVRAM log replay reconstructs acknowledged state.
//!
//! This crate implements that substrate on top of `wafl-blockdev`,
//! `wafl-metafile`, `waffinity`, and the `alligator` allocator:
//!
//! * [`fs::Filesystem`] — the top-level object: aggregate + volumes +
//!   NVLog + CP engine; the public API a downstream user programs against;
//! * [`volume::Volume`], [`inode::Inode`], [`buffer::DirtyBuffer`];
//! * [`vvbn::VvbnSpace`] — chunked Virtual-VBN allocation per volume ("a
//!   version of this infrastructure is reused to write allocate Virtual
//!   VBNs within FlexVol volumes", §IV-D);
//! * [`nvlog::NvLog`] — the nonvolatile op log with CP-aligned halves and
//!   crash replay;
//! * [`cleaner::CleanerPool`] — parallel inode cleaning (multiple cleaner
//!   threads over inodes *and* regions of large inodes, §IV-B1), with
//!   batched cleaning of small inodes (§V-C);
//! * [`tuner::DynamicTuner`] — the 50 ms cleaner-thread count controller
//!   with 90 % / 50 % activation thresholds (§V-B);
//! * [`cp`] — the consistency-point state machine ([`cp::run_cp`]);
//! * [`scrub`] — online parallel scrub/fsck over the Waffinity pool,
//!   with checkpointed cursors and a detect→quarantine→repair→re-verify
//!   state machine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod cleaner;
pub mod config;
pub mod cp;
pub mod fs;
pub mod inode;
pub mod nvlog;
pub mod scrub;
pub mod snapshot;
pub mod system;
pub mod tuner;
pub mod volume;
pub mod vvbn;

pub use buffer::DirtyBuffer;
pub use cleaner::{CleanItem, CleanerConfig, CleanerPool};
pub use config::FsConfig;
pub use cp::{CpReport, CrashPoint, DiskImage, MetafileLocs, SuperblockStore};
pub use fs::{ExecMode, Filesystem};
pub use inode::{FileId, Inode};
pub use nvlog::{NvLog, Op};
pub use scrub::{
    Finding, FindingState, PressureGate, ScrubCheckpoint, ScrubCheckpointStore, ScrubConfig,
    ScrubError, ScrubReport,
};
pub use snapshot::{Snapshot, SnapshotSet};
pub use system::StorageSystem;
pub use tuner::{DynamicTuner, TunerConfig};
pub use volume::{Volume, VolumeId};
pub use vvbn::VvbnSpace;
