//! Dynamic tuning of the cleaner-thread count.
//!
//! "Because no single number of threads is best in all cases, WAFL
//! dynamically tunes the number of cleaner threads in use based on the
//! observed workload patterns. Additional threads are activated when
//! cleaner thread utilization exceeds some threshold and are deactivated
//! below another (e.g., 90% and 50%) … Dynamic optimization occurs every
//! 50ms in order to quickly respond to changes in workload" (§V-B).
//!
//! [`DynamicTuner`] is the pure controller: feed it the measured
//! utilization of the currently active cleaners each interval and it
//! answers with the new target thread count. Both the real
//! [`CleanerPool`](crate::cleaner::CleanerPool) and the discrete-event
//! simulator drive the same controller.

use serde::{Deserialize, Serialize};

/// Controller parameters (§V-B defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Minimum active cleaners (at least one, or cleaning stalls).
    pub min_threads: usize,
    /// Maximum active cleaners.
    pub max_threads: usize,
    /// Activate another thread when utilization exceeds this.
    pub activate_above: f64,
    /// Deactivate a thread when utilization falls below this.
    pub deactivate_below: f64,
    /// Decision interval in nanoseconds (50 ms in the paper).
    pub interval_ns: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            min_threads: 1,
            max_threads: 8,
            activate_above: 0.90,
            deactivate_below: 0.50,
            interval_ns: 50_000_000,
        }
    }
}

/// The dynamic cleaner-thread controller.
///
/// ```
/// use wafl::{DynamicTuner, TunerConfig};
///
/// let mut tuner = DynamicTuner::new(TunerConfig::default(), 1);
/// // Saturated cleaners (>90% busy) add a thread per 50 ms interval…
/// assert_eq!(tuner.decide(0.97), 2);
/// assert_eq!(tuner.decide(0.95), 3);
/// // …and idle ones (<50%) shed threads.
/// assert_eq!(tuner.decide(0.30), 2);
/// // In the hysteresis band nothing changes.
/// assert_eq!(tuner.decide(0.70), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicTuner {
    cfg: TunerConfig,
    active: usize,
    /// Decisions made (reporting).
    activations: u64,
    deactivations: u64,
}

impl DynamicTuner {
    /// Start with `initial` active threads (clamped to the configured
    /// range).
    pub fn new(cfg: TunerConfig, initial: usize) -> Self {
        assert!(cfg.min_threads >= 1);
        assert!(cfg.max_threads >= cfg.min_threads);
        assert!(cfg.deactivate_below < cfg.activate_above);
        Self {
            active: initial.clamp(cfg.min_threads, cfg.max_threads),
            cfg,
            activations: 0,
            deactivations: 0,
        }
    }

    /// Controller parameters.
    #[inline]
    pub fn config(&self) -> &TunerConfig {
        &self.cfg
    }

    /// Current target thread count.
    #[inline]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Lifetime activation decisions.
    #[inline]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Lifetime deactivation decisions.
    #[inline]
    pub fn deactivations(&self) -> u64 {
        self.deactivations
    }

    /// One 50 ms decision: `utilization` is the mean busy fraction of the
    /// currently active cleaner threads over the last interval, in
    /// `[0, 1]`. Returns the (possibly changed) target count.
    pub fn decide(&mut self, utilization: f64) -> usize {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&utilization));
        if utilization > self.cfg.activate_above && self.active < self.cfg.max_threads {
            self.active += 1;
            self.activations += 1;
        } else if utilization < self.cfg.deactivate_below && self.active > self.cfg.min_threads {
            self.active -= 1;
            self.deactivations += 1;
        }
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner(initial: usize) -> DynamicTuner {
        DynamicTuner::new(TunerConfig::default(), initial)
    }

    #[test]
    fn saturated_cleaners_scale_up_one_per_interval() {
        let mut t = tuner(1);
        assert_eq!(t.decide(0.99), 2);
        assert_eq!(t.decide(0.99), 3);
        assert_eq!(t.activations(), 2);
    }

    #[test]
    fn idle_cleaners_scale_down() {
        let mut t = tuner(4);
        assert_eq!(t.decide(0.2), 3);
        assert_eq!(t.decide(0.2), 2);
        assert_eq!(t.decide(0.2), 1);
        assert_eq!(t.decide(0.2), 1, "min bound holds");
    }

    #[test]
    fn hysteresis_band_keeps_count_stable() {
        let mut t = tuner(3);
        for _ in 0..10 {
            assert_eq!(t.decide(0.7), 3, "between 50% and 90% → no change");
        }
        assert_eq!(t.activations() + t.deactivations(), 0);
    }

    #[test]
    fn max_bound_holds() {
        let cfg = TunerConfig {
            max_threads: 2,
            ..Default::default()
        };
        let mut t = DynamicTuner::new(cfg, 2);
        assert_eq!(t.decide(1.0), 2);
    }

    #[test]
    fn initial_clamped_to_range() {
        let cfg = TunerConfig {
            min_threads: 2,
            max_threads: 4,
            ..Default::default()
        };
        assert_eq!(DynamicTuner::new(cfg, 0).active(), 2);
        assert_eq!(DynamicTuner::new(cfg, 99).active(), 4);
    }

    #[test]
    fn oscillating_load_tracks_demand() {
        // Fig 9's narrative: high load → more threads; off-peak → fewer.
        let mut t = tuner(1);
        for _ in 0..4 {
            t.decide(0.95);
        }
        assert_eq!(t.active(), 5);
        for _ in 0..3 {
            t.decide(0.3);
        }
        assert_eq!(t.active(), 2);
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_rejected() {
        let cfg = TunerConfig {
            activate_above: 0.4,
            deactivate_below: 0.6,
            ..Default::default()
        };
        DynamicTuner::new(cfg, 1);
    }
}
