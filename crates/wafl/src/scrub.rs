//! Online parallel scrub/fsck over the Waffinity pool.
//!
//! WAFL's RAID layer scrubs continuously in production: parity is
//! re-verified, the active map is cross-checked against the block trees,
//! and latent media errors are repaired from redundancy *while the file
//! system serves traffic*. This module reproduces that discipline on the
//! simulated substrate: a scrub pass walks every allocation area (AA) of
//! every RAID group as Range-affinity messages on the Waffinity pool —
//! the same §IV-A message hierarchy the allocator's infrastructure work
//! runs in — so scrub parallelism composes with (and is fenced by) the
//! ordinary affinity rules rather than a private lock order.
//!
//! Each scrub **unit** is one `(raid group, AA)` pair. Detection is
//! read-only and runs concurrently, `ScrubConfig::workers` units at a
//! time; repair is serialized on the calling thread inside a CP-quiet
//! window. The pipeline per finding is a small state machine:
//!
//! ```text
//!   detect ──▶ quarantine (re-check in a CP-quiet window,
//!         │     cache flushed — racy sightings die here)
//!         └──▶ repair (reconstruct / bitmap adopt / AA re-credit)
//!               └──▶ re-verify (read back, XOR, bit state)
//! ```
//!
//! Robustness properties:
//!
//! * **Checkpointable**: the cursor (next unit) and the set of already
//!   repaired finding keys are committed to a [`ScrubCheckpointStore`]
//!   after every unit. A scrub interrupted by `crash_and_recover`
//!   resumes from the cursor and suppresses findings it already
//!   repaired instead of re-reporting them.
//! * **Bounded retry**: transiently faulted reads are retried with the
//!   same exponential-backoff shape as [`RetryPolicy`] before a block
//!   is declared unreadable.
//! * **Graceful degradation**: between waves the scrubber samples
//!   cleaner-pool utilization and pauses above
//!   [`ScrubConfig::pause_above`], resuming below
//!   [`ScrubConfig::resume_below`] — the §V-B hysteresis shape, applied
//!   to background work instead of thread counts.
//!
//! Every `scrub_*` counter flows through [`alligator::AllocStats`] into
//! the unified `obs` metrics surface, and each unit scan emits an
//! [`obs::EventKind::Scrub`] trace span.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use alligator::AllocStats;
use parking_lot::Mutex;
use wafl_blockdev::{AaId, BlockStamp, Dbn, IoEngine, IoError, RetryPolicy, Vbn};
use wafl_metafile::{AggregateMap, AllocError};

use crate::fs::Filesystem;

/// How many CP-quiet evaluation rounds quarantine attempts before
/// accepting a best-effort verdict (CPs kept landing mid-evaluation).
const CONFIRM_ROUNDS: u32 = 16;

/// Maximum 500 µs pause ticks per pressure-gate episode, so a saturated
/// cleaner pool can delay but never livelock the scrub.
const MAX_PAUSE_TICKS: u32 = 200;

/// Configuration for one scrub pass.
#[derive(Debug, Clone)]
pub struct ScrubConfig {
    /// Units scanned concurrently per wave (Waffinity messages in
    /// flight). Clamped to at least 1.
    pub workers: usize,
    /// Retry/backoff policy for transiently faulted reads during
    /// detection and re-verification.
    pub retry: RetryPolicy,
    /// Cleaner-pool utilization above which the scrubber pauses
    /// between waves (§V-B activation threshold shape).
    pub pause_above: f64,
    /// Utilization below which a paused scrubber resumes.
    pub resume_below: f64,
    /// Scan at most this many units in this call (the cursor checkpoint
    /// makes the next call resume where this one stopped). `None`
    /// scans to the end of the pass.
    pub unit_budget: Option<usize>,
    /// Bounded spins (200 µs each) waiting for a CP-quiet window before
    /// each quarantine evaluation round.
    pub quiesce_spins: u32,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            workers: 4,
            retry: RetryPolicy::default(),
            pause_above: 0.90,
            resume_below: 0.50,
            unit_budget: None,
            quiesce_spins: 64,
        }
    }
}

/// A typed corruption finding. The variants cover the seeded fault
/// classes of the torture suite: media bit-flips and torn writes
/// (`StampMismatch`, `ParityMismatch`), bitmap corruption
/// (`StaleActiveBit`, `MissingActiveBit`), AA summary skew
/// (`AaCounterSkew`), dead drives, and reads that stay faulted past the
/// retry budget (`UnreadableBlock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubError {
    /// Media stamp at `vbn` differs from the committed reference.
    StampMismatch {
        /// Physical block number.
        vbn: u64,
        /// Stamp the committed tree expects.
        expected: BlockStamp,
        /// Stamp read from media.
        found: BlockStamp,
    },
    /// Stripe parity does not equal the XOR of its data blocks.
    ParityMismatch {
        /// RAID group index.
        rg: u32,
        /// Drive block offset of the stripe.
        dbn: u64,
    },
    /// A committed tree references `vbn` but its active-map bit is
    /// clear (refcount skew toward free).
    MissingActiveBit {
        /// Physical block number.
        vbn: u64,
    },
    /// Active-map bit set for a block no committed tree references
    /// (refcount skew toward used — a leak).
    StaleActiveBit {
        /// Physical block number.
        vbn: u64,
    },
    /// AA summary free count disagrees with the bitmap itself.
    AaCounterSkew {
        /// RAID group index.
        rg: u32,
        /// AA index within the group.
        aa: u32,
        /// Free count the AA summary tracks.
        tracked: u64,
        /// Free count recounted from the bitmap.
        actual: u64,
    },
    /// A drive in the unit's RAID group is offline.
    DeadDrive {
        /// Aggregate-wide drive id.
        drive: u32,
    },
    /// Referenced block unreadable after the bounded retry budget.
    UnreadableBlock {
        /// Physical block number.
        vbn: u64,
    },
}

impl ScrubError {
    /// Stable identity for checkpoint suppression: the same corruption
    /// re-detected after a crash produces the same key. Volatile
    /// payload (found stamps, live counts) is excluded.
    pub fn key(&self) -> String {
        match self {
            ScrubError::StampMismatch { vbn, .. } => format!("stamp:vbn={vbn}"),
            ScrubError::ParityMismatch { rg, dbn } => format!("parity:rg={rg}:dbn={dbn}"),
            ScrubError::MissingActiveBit { vbn } => format!("missbit:vbn={vbn}"),
            ScrubError::StaleActiveBit { vbn } => format!("stalebit:vbn={vbn}"),
            ScrubError::AaCounterSkew { rg, aa, .. } => format!("aaskew:rg={rg}:aa={aa}"),
            ScrubError::DeadDrive { drive } => format!("dead:drive={drive}"),
            ScrubError::UnreadableBlock { vbn } => format!("unread:vbn={vbn}"),
        }
    }

    /// Short class name (for counters and report rollups).
    pub fn kind(&self) -> &'static str {
        match self {
            ScrubError::StampMismatch { .. } => "stamp_mismatch",
            ScrubError::ParityMismatch { .. } => "parity_mismatch",
            ScrubError::MissingActiveBit { .. } => "missing_active_bit",
            ScrubError::StaleActiveBit { .. } => "stale_active_bit",
            ScrubError::AaCounterSkew { .. } => "aa_counter_skew",
            ScrubError::DeadDrive { .. } => "dead_drive",
            ScrubError::UnreadableBlock { .. } => "unreadable_block",
        }
    }
}

impl fmt::Display for ScrubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrubError::StampMismatch {
                vbn,
                expected,
                found,
            } => write!(
                f,
                "stamp mismatch at vbn {vbn}: expected {expected:#x}, found {found:#x}"
            ),
            ScrubError::ParityMismatch { rg, dbn } => {
                write!(f, "parity mismatch in rg {rg} at dbn {dbn}")
            }
            ScrubError::MissingActiveBit { vbn } => {
                write!(f, "referenced vbn {vbn} has a clear active-map bit")
            }
            ScrubError::StaleActiveBit { vbn } => {
                write!(f, "unreferenced vbn {vbn} has a set active-map bit")
            }
            ScrubError::AaCounterSkew {
                rg,
                aa,
                tracked,
                actual,
            } => write!(
                f,
                "AA summary skew in rg {rg} aa {aa}: tracked {tracked} free, bitmap says {actual}"
            ),
            ScrubError::DeadDrive { drive } => write!(f, "drive {drive} is offline"),
            ScrubError::UnreadableBlock { vbn } => {
                write!(f, "vbn {vbn} unreadable after retries")
            }
        }
    }
}

/// Where a confirmed finding ended up in the repair state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingState {
    /// Confirmed but not yet acted on (transient internal state; a
    /// returned report never carries it).
    Detected,
    /// Repaired, but the re-verification read could not run.
    Repaired,
    /// Repaired and re-verified clean (or re-verified clean after a
    /// sibling repair in the same batch fixed the shared root cause).
    Reverified,
    /// Real, but not repairable from available redundancy.
    Unrepairable,
}

/// One confirmed finding with its terminal repair state.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The typed corruption.
    pub error: ScrubError,
    /// Terminal state after repair/re-verify.
    pub state: FindingState,
}

/// Durable scrub cursor: committed after every unit, survives
/// `crash_and_recover` the same way [`crate::cp::SuperblockStore`]
/// does — the caller holds the [`Arc`] across the crash boundary.
#[derive(Debug, Clone)]
pub struct ScrubCheckpoint {
    /// Monotonic pass number (bumped when a pass completes).
    pub pass: u64,
    /// Next unit index to scan (units `0..next_unit` are done).
    pub next_unit: u64,
    /// Unit count the cursor was computed against; a geometry change
    /// invalidates the checkpoint.
    pub total_units: u64,
    /// Keys (see [`ScrubError::key`]) of findings already repaired in
    /// this pass; re-detections are suppressed, not re-reported.
    pub repaired: BTreeSet<String>,
}

/// Shared store for the scrub cursor (the scrubber's "superblock").
#[derive(Debug, Default)]
pub struct ScrubCheckpointStore {
    slot: Mutex<Option<ScrubCheckpoint>>, // lock-rank: scrub.slot 25
}

impl ScrubCheckpointStore {
    /// Empty store (no pass in flight).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Atomically commit a checkpoint, replacing any previous one.
    pub fn commit(&self, cp: ScrubCheckpoint) {
        *self.slot.lock() = Some(cp);
    }

    /// The most recently committed checkpoint, if any.
    pub fn load(&self) -> Option<ScrubCheckpoint> {
        self.slot.lock().clone()
    }

    /// Drop any stored checkpoint (tests; or to force a fresh pass).
    pub fn clear(&self) {
        *self.slot.lock() = None;
    }
}

/// Result of one scrub pass (or one budgeted slice of a pass).
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Total units in the pass (RAID groups × AAs).
    pub units_total: u64,
    /// Units scanned by this call.
    pub units_scanned: u64,
    /// `Some(unit)` when this call resumed a checkpointed pass.
    pub resumed_from: Option<u64>,
    /// Did this call reach the end of the pass?
    pub completed: bool,
    /// Blocks examined (data reads + parity stripes + bitmap bits).
    pub blocks_checked: u64,
    /// Confirmed findings with their terminal repair states.
    pub findings: Vec<Finding>,
    /// Detection-phase candidates that evaporated under quarantine
    /// re-check (races with live allocation, not corruption).
    pub false_alarms: u64,
    /// Confirmed findings suppressed because the checkpoint says they
    /// were already repaired earlier in this pass.
    pub suppressed: u64,
    /// Transient-fault read retries performed during scanning.
    pub retries: u64,
    /// Pressure-gate pause episodes.
    pub pauses: u64,
    /// p50 of per-unit scan time, nanoseconds.
    pub unit_scan_p50_ns: u64,
    /// p99 of per-unit scan time, nanoseconds.
    pub unit_scan_p99_ns: u64,
}

impl ScrubReport {
    /// Confirmed findings reported by this call.
    pub fn detected(&self) -> u64 {
        self.findings.len() as u64
    }

    /// Findings repaired (whether or not re-verified).
    pub fn repaired(&self) -> u64 {
        self.findings
            .iter()
            .filter(|f| matches!(f.state, FindingState::Repaired | FindingState::Reverified))
            .count() as u64
    }

    /// Findings repaired *and* re-verified clean.
    pub fn reverified(&self) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.state == FindingState::Reverified)
            .count() as u64
    }

    /// Findings that could not be repaired from redundancy.
    pub fn unrepairable(&self) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.state == FindingState::Unrepairable)
            .count() as u64
    }

    /// No confirmed findings and nothing suppressed: the scanned slice
    /// is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }
}

/// §V-B-style hysteresis gate: pause when utilization crosses
/// `pause_above`, resume only when it falls below `resume_below`.
/// The dead band prevents flapping under oscillating load.
#[derive(Debug)]
pub struct PressureGate {
    pause_above: f64,
    resume_below: f64,
    paused: bool,
}

impl PressureGate {
    /// Gate with the given thresholds (`resume_below` should be well
    /// under `pause_above`; 0.90/0.50 mirrors the §V-B tuner).
    pub fn new(pause_above: f64, resume_below: f64) -> Self {
        PressureGate {
            pause_above,
            resume_below,
            paused: false,
        }
    }

    /// Feed one utilization sample (0.0..=1.0); returns the post-sample
    /// paused state.
    pub fn observe(&mut self, utilization: f64) -> bool {
        if self.paused {
            if utilization < self.resume_below {
                self.paused = false;
            }
        } else if utilization > self.pause_above {
            self.paused = true;
        }
        self.paused
    }

    /// Currently paused?
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Force the gate open (pause budget exhausted: progress beats
    /// politeness).
    pub fn force_resume(&mut self) {
        self.paused = false;
    }
}

/// Shared, `Send + Sync` context each detection message owns a clone of.
struct ScanCtx {
    io: Arc<IoEngine>,
    aggmap: Arc<AggregateMap>,
    /// vbn → expected stamp (`None` for metafile blocks, whose stamps
    /// the reference tree does not record).
    refs: Arc<BTreeMap<u64, Option<BlockStamp>>>,
    retry: RetryPolicy,
    stats: Arc<AllocStats>,
}

/// What one unit's detection message sends back.
struct UnitScan {
    blocks: u64,
    scan_ns: u64,
    retries: u64,
    cands: Vec<ScrubError>,
}

/// Reference index from the committed disk image only — cheap, stable
/// for a whole pass, used by the concurrent detection phase. Candidates
/// it produces are re-checked against [`build_confirm_refs`] before
/// anything is reported.
fn build_image_refs(fs: &Filesystem) -> BTreeMap<u64, Option<BlockStamp>> {
    let mut refs = BTreeMap::new();
    if let Some(img) = fs.committed_image() {
        for vi in &img.volumes {
            for (_file, blocks) in &vi.files {
                for (_fbn, ptr) in blocks {
                    refs.insert(ptr.pvbn.0, Some(ptr.stamp));
                }
            }
            for snap in &vi.snapshots {
                for (_f, _fbn, ptr) in snap.iter_blocks() {
                    refs.entry(ptr.pvbn.0).or_insert(Some(ptr.stamp));
                }
            }
        }
        for ((_src, _blk), vbn) in &img.metafile_locs {
            refs.insert(vbn.0, None);
        }
    }
    refs
}

/// Reference index for quarantine: the union of the *live* committed
/// block maps (CP apply updates these; a concurrent delete removes its
/// references immediately) and the committed image (which the on-disk
/// superblock still points to). A block is only "unreferenced" — and a
/// set bit only stale — when neither side claims it; a block is only
/// "referenced" when at least one side does. The union is conservative
/// in both directions, so quarantine never repairs away a bit that
/// crash recovery would still need.
fn build_confirm_refs(fs: &Filesystem) -> BTreeMap<u64, Option<BlockStamp>> {
    let mut refs = build_image_refs(fs);
    for v in fs.volumes() {
        for f in v.file_ids() {
            if let Some(ino) = v.inode(f) {
                for ptr in ino.lock().block_map().values() {
                    refs.insert(ptr.pvbn.0, Some(ptr.stamp));
                }
            }
        }
        for snap in v.snapshots().list() {
            for (_f, _fbn, ptr) in snap.iter_blocks() {
                refs.entry(ptr.pvbn.0).or_insert(Some(ptr.stamp));
            }
        }
    }
    refs
}

/// Read `vbn` with the scrub's own bounded retry/backoff on transient
/// faults (the RAID layer's internal policy already ran underneath;
/// this is the scrubber's outer patience budget).
fn read_with_retry(ctx: &ScanCtx, vbn: Vbn, retries: &mut u64) -> Result<BlockStamp, IoError> {
    let mut last = None;
    for attempt in 0..=ctx.retry.max_retries {
        match ctx.io.read_vbn(vbn) {
            Ok(s) => return Ok(s),
            Err(e @ IoError::Transient { .. }) => {
                *retries += 1;
                // ordering: statistics counter; staleness is acceptable.
                ctx.stats.scrub_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_nanos(
                    ctx.retry.backoff_base_ns << attempt.min(10),
                ));
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(IoError::Unrecoverable {
        detail: "retry budget exhausted",
    }))
}

/// Recount an AA's free blocks straight from the bitmap.
fn recount_aa_free(ctx: &ScanCtx, aa: AaId) -> u64 {
    let geo = ctx.io.geometry();
    let group = ctx.io.raid_group(aa.rg);
    let dbns = geo.aa_dbn_range(aa);
    let map = ctx.aggmap.active_map();
    let mut free = 0u64;
    for d in 0..group.data_drives().len() as u32 {
        let base = group.geometry().drive_vbn_range(d).start;
        free += map.count_free_in(base + dbns.start, base + dbns.end);
    }
    free
}

/// Detection phase for one unit: read-only, safe to run concurrently
/// with cleaners and CPs. Everything it flags is a *candidate* — racy
/// sightings are expected and are filtered by quarantine.
fn scan_unit(ctx: &ScanCtx, aa: AaId) -> UnitScan {
    let t0 = Instant::now();
    let mut sp = obs::trace_span!(obs::EventKind::Scrub);
    let geo = Arc::clone(ctx.io.geometry());
    let group = ctx.io.raid_group(aa.rg);
    let dbns = geo.aa_dbn_range(aa);
    let mut cands = Vec::new();
    let mut blocks = 0u64;
    let mut retries = 0u64;

    // Drive health first: a dead drive is itself a finding, and it
    // poisons raw-media checks (stale peeks) for the whole group.
    let offline_data = group.offline_data_drives();
    for d in &offline_data {
        cands.push(ScrubError::DeadDrive {
            drive: group.data_drives()[*d as usize].id().0,
        });
    }
    let mut parity_offline = false;
    for p in group.parity_drives() {
        if p.is_offline() {
            parity_offline = true;
            cands.push(ScrubError::DeadDrive { drive: p.id().0 });
        }
    }
    let degraded = !offline_data.is_empty() || parity_offline;

    // Per-block checks: reference vs media stamp, reference vs bitmap.
    // read_vbn is degraded-transparent, so stamp verification keeps
    // working through a single drive failure.
    for d in 0..group.data_drives().len() as u32 {
        for dbn in dbns.clone() {
            let vbn = geo.vbn_at(aa.rg, d, Dbn(dbn));
            blocks += 1;
            let used = ctx.aggmap.is_used(vbn);
            match ctx.refs.get(&vbn.0) {
                Some(expected) => {
                    if !used {
                        cands.push(ScrubError::MissingActiveBit { vbn: vbn.0 });
                    }
                    match read_with_retry(ctx, vbn, &mut retries) {
                        Ok(found) => {
                            if let Some(exp) = expected {
                                if found != *exp {
                                    cands.push(ScrubError::StampMismatch {
                                        vbn: vbn.0,
                                        expected: *exp,
                                        found,
                                    });
                                }
                            }
                        }
                        Err(IoError::DriveFailed { .. }) => {} // flagged above
                        Err(_) => cands.push(ScrubError::UnreadableBlock { vbn: vbn.0 }),
                    }
                }
                None => {
                    if used {
                        cands.push(ScrubError::StaleActiveBit { vbn: vbn.0 });
                    }
                }
            }
        }
    }

    // Parity XOR check over raw media — only meaningful when every
    // group member is online (offline media is stale by definition).
    if !degraded {
        for dbn in dbns.clone() {
            blocks += 1;
            let xor = group
                .data_drives()
                .iter()
                .fold(0u128, |x, drv| x ^ drv.peek(Dbn(dbn)));
            if xor != group.parity_drives()[0].peek(Dbn(dbn)) {
                cands.push(ScrubError::ParityMismatch { rg: aa.rg.0, dbn });
            }
        }
    }

    // AA summary cross-check. Live allocation makes transient skew
    // normal; require it to hold across an immediate re-read before
    // even flagging a candidate (quarantine still gets the final say).
    let tracked = ctx.aggmap.aa_stats().free_in(aa);
    let actual = recount_aa_free(ctx, aa);
    if tracked != actual {
        let tracked2 = ctx.aggmap.aa_stats().free_in(aa);
        let actual2 = recount_aa_free(ctx, aa);
        if tracked2 != actual2 {
            cands.push(ScrubError::AaCounterSkew {
                rg: aa.rg.0,
                aa: aa.index,
                tracked: tracked2,
                actual: actual2,
            });
        }
    }

    sp.set_arg(blocks);
    UnitScan {
        blocks,
        scan_ns: t0.elapsed().as_nanos() as u64,
        retries,
        cands,
    }
}

/// Spin (bounded) until no CP is in flight.
fn wait_cp_quiet(fs: &Filesystem, spins: u32) {
    for _ in 0..spins {
        if !fs.cp_in_flight() {
            return;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Re-evaluate one candidate against fresh references in a quiet
/// window. `None` means the sighting evaporated (false alarm).
fn recheck(
    fs: &Filesystem,
    ctx: &ScanCtx,
    refs: &BTreeMap<u64, Option<BlockStamp>>,
    cand: &ScrubError,
) -> Option<ScrubError> {
    let mut retries = 0u64;
    match cand {
        ScrubError::StampMismatch { vbn, .. } => {
            let exp = (*refs.get(vbn)?)?;
            match read_with_retry(ctx, Vbn(*vbn), &mut retries) {
                Ok(found) if found != exp => Some(ScrubError::StampMismatch {
                    vbn: *vbn,
                    expected: exp,
                    found,
                }),
                Ok(_) => None,
                Err(IoError::DriveFailed { .. }) => None,
                Err(_) => Some(ScrubError::UnreadableBlock { vbn: *vbn }),
            }
        }
        ScrubError::UnreadableBlock { vbn } => {
            refs.get(vbn)?;
            match read_with_retry(ctx, Vbn(*vbn), &mut retries) {
                Ok(found) => match refs.get(vbn) {
                    Some(Some(exp)) if found != *exp => Some(ScrubError::StampMismatch {
                        vbn: *vbn,
                        expected: *exp,
                        found,
                    }),
                    _ => None,
                },
                Err(IoError::DriveFailed { .. }) => None,
                Err(_) => Some(cand.clone()),
            }
        }
        ScrubError::ParityMismatch { rg, dbn } => {
            let group = ctx.io.raid_group(wafl_blockdev::RaidGroupId(*rg));
            if !group.offline_data_drives().is_empty()
                || group.parity_drives().iter().any(|p| p.is_offline())
            {
                return None; // dead-drive finding owns this stripe
            }
            let xor = group
                .data_drives()
                .iter()
                .fold(0u128, |x, drv| x ^ drv.peek(Dbn(*dbn)));
            (xor != group.parity_drives()[0].peek(Dbn(*dbn))).then(|| cand.clone())
        }
        ScrubError::MissingActiveBit { vbn } => {
            (refs.contains_key(vbn) && !ctx.aggmap.is_used(Vbn(*vbn))).then(|| cand.clone())
        }
        ScrubError::StaleActiveBit { vbn } => {
            (!refs.contains_key(vbn) && ctx.aggmap.is_used(Vbn(*vbn))).then(|| cand.clone())
        }
        ScrubError::AaCounterSkew { rg, aa, .. } => {
            let id = AaId {
                rg: wafl_blockdev::RaidGroupId(*rg),
                index: *aa,
            };
            let tracked = ctx.aggmap.aa_stats().free_in(id);
            let actual = recount_aa_free(ctx, id);
            (tracked != actual).then_some(ScrubError::AaCounterSkew {
                rg: *rg,
                aa: *aa,
                tracked,
                actual,
            })
        }
        ScrubError::DeadDrive { drive } => fs
            .io()
            .offline_drives()
            .iter()
            .any(|d| d.0 == *drive)
            .then(|| cand.clone()),
    }
}

/// Quarantine: re-evaluate candidates inside a CP-quiet window with the
/// allocator's bucket cache flushed (so reserved-but-unreferenced bits
/// do not masquerade as leaks). Retries until an evaluation round sees
/// no CP land mid-flight, bounded by [`CONFIRM_ROUNDS`]. Returns the
/// surviving findings, the false-alarm count, and the reference index
/// of the final round (for the repair phase).
#[allow(clippy::type_complexity)]
fn confirm_unit(
    fs: &Filesystem,
    cfg: &ScrubConfig,
    ctx: &ScanCtx,
    cands: Vec<ScrubError>,
) -> (Vec<ScrubError>, u64, BTreeMap<u64, Option<BlockStamp>>) {
    let mut uniq: BTreeMap<String, ScrubError> = BTreeMap::new();
    for c in cands {
        uniq.entry(c.key()).or_insert(c);
    }
    let needs_flush = uniq.values().any(|e| {
        matches!(
            e,
            ScrubError::StaleActiveBit { .. }
                | ScrubError::MissingActiveBit { .. }
                | ScrubError::AaCounterSkew { .. }
        )
    });
    let mut still: Vec<ScrubError> = Vec::new();
    let mut refs = BTreeMap::new();
    for round in 0..CONFIRM_ROUNDS {
        wait_cp_quiet(fs, cfg.quiesce_spins);
        let cp0 = fs.cp_count();
        if needs_flush {
            // Retire every cached (unheld) bucket and drain pending
            // infrastructure work: outstanding reservations are the one
            // legitimate reason a set bit has no referencing tree.
            fs.allocator().flush_cache();
            fs.allocator().drain();
        }
        refs = build_confirm_refs(fs);
        still = uniq
            .values()
            .filter_map(|e| recheck(fs, ctx, &refs, e))
            .collect();
        let quiet = fs.cp_count() == cp0 && !fs.cp_in_flight();
        if quiet || round + 1 == CONFIRM_ROUNDS {
            break;
        }
    }
    let fa = (uniq.len() as u64).saturating_sub(still.len() as u64);
    (still, fa, refs)
}

/// Reconcile one AA's tracked free count against a recount of its
/// active-map range. Idempotent; used by every bitmap-class repair so
/// the counters always end consistent with the bits.
fn reconcile_aa(ctx: &ScanCtx, id: AaId) {
    let tracked = ctx.aggmap.aa_stats().free_in(id);
    let actual = recount_aa_free(ctx, id);
    if tracked > actual {
        ctx.aggmap.aa_stats().on_reserve(id, tracked - actual);
    } else if actual > tracked {
        ctx.aggmap.aa_stats().on_release(id, actual - tracked);
    }
}

/// Repair ordering: fix known-bad data blocks from redundancy *before*
/// rebuilding a dead drive — a rebuild XORs the survivors, so any
/// surviving corruption would be baked into the reconstructed member
/// (leaving the stripe parity-consistent but wrong). Then rebuild the
/// drive, then the parity that summarizes the data, then the bitmap,
/// then the AA counters that summarize the bitmap.
fn repair_rank(e: &ScrubError) -> u8 {
    match e {
        ScrubError::StampMismatch { .. } => 0,
        ScrubError::UnreadableBlock { .. } => 1,
        ScrubError::DeadDrive { .. } => 2,
        ScrubError::ParityMismatch { .. } => 3,
        ScrubError::MissingActiveBit { .. } => 4,
        ScrubError::StaleActiveBit { .. } => 5,
        ScrubError::AaCounterSkew { .. } => 6,
    }
}

/// Repair one confirmed finding and re-verify. Runs serially in the
/// quiet window; every arm ends with an independent re-check of the
/// invariant it restored.
fn repair_finding(
    fs: &Filesystem,
    ctx: &ScanCtx,
    refs: &BTreeMap<u64, Option<BlockStamp>>,
    err: &ScrubError,
) -> FindingState {
    let geo = Arc::clone(ctx.io.geometry());
    match err {
        ScrubError::StampMismatch { vbn, expected, .. } => {
            let Ok(loc) = geo.locate(Vbn(*vbn)) else {
                return FindingState::Unrepairable;
            };
            let group = ctx.io.raid_group(loc.rg);
            if group.data_drives()[loc.drive_in_rg as usize].peek(loc.dbn) == *expected {
                return FindingState::Reverified; // sibling repair got here first
            }
            if group.reconstruct(loc.drive_in_rg, loc.dbn) == *expected {
                group.repair_data_block(loc.drive_in_rg, loc.dbn);
                let mut retries = 0u64;
                match read_with_retry(ctx, Vbn(*vbn), &mut retries) {
                    Ok(s) if s == *expected => FindingState::Reverified,
                    Ok(_) => FindingState::Unrepairable,
                    Err(_) => FindingState::Repaired,
                }
            } else {
                // Parity cannot vouch for the reference: both the block
                // and its redundancy are gone.
                FindingState::Unrepairable
            }
        }
        ScrubError::UnreadableBlock { vbn } => {
            let mut retries = 0u64;
            if read_with_retry(ctx, Vbn(*vbn), &mut retries).is_ok() {
                return FindingState::Reverified;
            }
            let Some(Some(exp)) = refs.get(vbn) else {
                return FindingState::Unrepairable;
            };
            let Ok(loc) = geo.locate(Vbn(*vbn)) else {
                return FindingState::Unrepairable;
            };
            let group = ctx.io.raid_group(loc.rg);
            if group.reconstruct(loc.drive_in_rg, loc.dbn) == *exp {
                group.repair_data_block(loc.drive_in_rg, loc.dbn);
                FindingState::Repaired
            } else {
                FindingState::Unrepairable
            }
        }
        ScrubError::ParityMismatch { rg, dbn } => {
            let rg_id = wafl_blockdev::RaidGroupId(*rg);
            let group = ctx.io.raid_group(rg_id);
            let xor = group
                .data_drives()
                .iter()
                .fold(0u128, |x, drv| x ^ drv.peek(Dbn(*dbn)));
            if xor == group.parity_drives()[0].peek(Dbn(*dbn)) {
                return FindingState::Reverified; // data repair fixed the stripe
            }
            // Recompute parity from media only if every *referenced*
            // member matches its expected stamp — otherwise we would
            // launder a data corruption into "consistent" parity.
            for d in 0..group.data_drives().len() as u32 {
                let vbn = geo.vbn_at(rg_id, d, Dbn(*dbn));
                if let Some(Some(exp)) = refs.get(&vbn.0) {
                    if group.data_drives()[d as usize].peek(Dbn(*dbn)) != *exp {
                        return FindingState::Unrepairable;
                    }
                }
            }
            group.repair_parity_block(Dbn(*dbn));
            let xor2 = group
                .data_drives()
                .iter()
                .fold(0u128, |x, drv| x ^ drv.peek(Dbn(*dbn)));
            if xor2 == group.parity_drives()[0].peek(Dbn(*dbn)) {
                FindingState::Reverified
            } else {
                FindingState::Repaired
            }
        }
        // Bitmap repairs edit the raw active map only, then reconcile
        // the AA counters from a recount. Going through the counter-
        // consistent `adopt_used`/`free` paths would double-account the
        // skew the corruption already introduced (and can underflow a
        // fully-used AA's free count).
        ScrubError::MissingActiveBit { vbn } => match ctx.aggmap.active_map().reserve(*vbn) {
            Ok(()) | Err(AllocError::AlreadyUsed { .. }) => {
                reconcile_aa(ctx, geo.aa_of(Vbn(*vbn)));
                if ctx.aggmap.is_used(Vbn(*vbn)) {
                    FindingState::Reverified
                } else {
                    FindingState::Repaired
                }
            }
            Err(_) => FindingState::Unrepairable,
        },
        ScrubError::StaleActiveBit { vbn } => match ctx.aggmap.active_map().free(*vbn) {
            Ok(()) | Err(AllocError::AlreadyFree { .. }) => {
                reconcile_aa(ctx, geo.aa_of(Vbn(*vbn)));
                if !ctx.aggmap.is_used(Vbn(*vbn)) {
                    FindingState::Reverified
                } else {
                    FindingState::Repaired
                }
            }
            Err(_) => FindingState::Unrepairable,
        },
        ScrubError::AaCounterSkew { rg, aa, .. } => {
            let id = AaId {
                rg: wafl_blockdev::RaidGroupId(*rg),
                index: *aa,
            };
            reconcile_aa(ctx, id);
            if ctx.aggmap.aa_stats().free_in(id) == recount_aa_free(ctx, id) {
                FindingState::Reverified
            } else {
                FindingState::Repaired
            }
        }
        ScrubError::DeadDrive { drive } => {
            ctx.io.rebuild_offline();
            if fs.io().offline_drives().iter().any(|d| d.0 == *drive) {
                FindingState::Unrepairable
            } else {
                FindingState::Reverified
            }
        }
    }
}

/// Quarantine → repair → re-verify one unit's candidates, maintaining
/// the checkpoint suppression set and the report.
fn process_unit(
    fs: &Filesystem,
    cfg: &ScrubConfig,
    ctx: &ScanCtx,
    cands: Vec<ScrubError>,
    repaired_keys: &mut BTreeSet<String>,
    report: &mut ScrubReport,
) {
    if cands.is_empty() {
        return;
    }
    let (mut confirmed, false_alarms, refs) = confirm_unit(fs, cfg, ctx, cands);
    // ordering: statistics counter; staleness is acceptable.
    ctx.stats
        .scrub_false_alarms
        .fetch_add(false_alarms, Ordering::Relaxed);
    report.false_alarms += false_alarms;
    confirmed.sort_by_key(repair_rank);
    for err in confirmed {
        let key = err.key();
        if repaired_keys.contains(&key) {
            // Already repaired earlier in this pass (the checkpoint
            // outlived a crash that reverted an in-memory repair):
            // repair again silently, but do not re-report.
            report.suppressed += 1;
            repair_finding(fs, ctx, &refs, &err);
            continue;
        }
        // ordering: statistics counter; staleness is acceptable.
        ctx.stats.scrub_findings.fetch_add(1, Ordering::Relaxed);
        // A confirmed on-media error is post-mortem material: arm the
        // flight recorder (lock-free; dumped at next service).
        obs::trigger(obs::Trigger::ScrubFinding, report.findings.len() as u64);
        let state = repair_finding(fs, ctx, &refs, &err);
        if matches!(state, FindingState::Repaired | FindingState::Reverified) {
            repaired_keys.insert(key);
            // ordering: statistics counter; staleness is acceptable.
            ctx.stats.scrub_repairs.fetch_add(1, Ordering::Relaxed);
            if state == FindingState::Reverified {
                // ordering: statistics counter; staleness is acceptable.
                ctx.stats.scrub_reverified.fetch_add(1, Ordering::Relaxed);
            }
        }
        report.findings.push(Finding { error: err, state });
    }
}

/// Cleaner-pool utilization sampler: busy-ns delta over wall delta,
/// normalized by the pool's active-thread limit.
struct UtilSampler {
    last_busy: u64,
    last_at: Instant,
}

impl UtilSampler {
    fn new(fs: &Filesystem) -> Self {
        UtilSampler {
            last_busy: fs.cleaner_pool().busy_ns(),
            last_at: Instant::now(),
        }
    }

    fn sample(&mut self, fs: &Filesystem) -> f64 {
        let busy = fs.cleaner_pool().busy_ns();
        let now = Instant::now();
        let dt = now.duration_since(self.last_at).as_nanos() as f64;
        let db = busy.saturating_sub(self.last_busy) as f64;
        self.last_busy = busy;
        self.last_at = now;
        let lanes = fs.cleaner_pool().active_limit().max(1) as f64;
        if dt <= 0.0 {
            0.0
        } else {
            (db / (dt * lanes)).min(1.0)
        }
    }
}

/// Between waves: sample utilization, pause while the cleaners are
/// saturated, resume on the hysteresis low threshold or when the pause
/// budget runs out.
fn maybe_pause(
    fs: &Filesystem,
    gate: &mut PressureGate,
    sampler: &mut UtilSampler,
    stats: &AllocStats,
    report: &mut ScrubReport,
) {
    let u = sampler.sample(fs);
    if !gate.observe(u) {
        return;
    }
    // ordering: statistics counter; staleness is acceptable.
    stats.scrub_pauses.fetch_add(1, Ordering::Relaxed);
    report.pauses += 1;
    for _ in 0..MAX_PAUSE_TICKS {
        std::thread::sleep(Duration::from_micros(500));
        if !gate.observe(sampler.sample(fs)) {
            break;
        }
    }
    gate.force_resume();
    // ordering: statistics counter; staleness is acceptable.
    stats.scrub_resumes.fetch_add(1, Ordering::Relaxed);
}

/// Run (or resume) one online scrub pass over the whole aggregate.
///
/// Detection messages are scheduled on the Waffinity pool when the
/// file system runs in [`crate::fs::ExecMode::Pool`] (each unit in its
/// AggrVbnRange affinity), and inline otherwise. Repair is serialized
/// on the calling thread. The pass checkpoints into `store` after
/// every unit; see [`ScrubCheckpointStore`].
pub fn run_scrub(fs: &Filesystem, cfg: &ScrubConfig, store: &ScrubCheckpointStore) -> ScrubReport {
    let io = Arc::clone(fs.io());
    let geo = Arc::clone(io.geometry());
    let units: Vec<AaId> = geo
        .rg_ids()
        .flat_map(|rg| (0..geo.aa_count(rg)).map(move |i| AaId { rg, index: i }))
        .collect();
    let total = units.len() as u64;

    let (pass, start, resumed_from, mut repaired_keys) = match store.load() {
        Some(cp) if cp.total_units == total && cp.next_unit > 0 && cp.next_unit < total => (
            cp.pass,
            cp.next_unit as usize,
            Some(cp.next_unit),
            cp.repaired,
        ),
        Some(cp) if cp.total_units == total => (cp.pass.wrapping_add(1), 0, None, BTreeSet::new()),
        _ => (0, 0, None, BTreeSet::new()),
    };

    let ctx = Arc::new(ScanCtx {
        io,
        aggmap: Arc::clone(fs.allocator().infra().aggmap()),
        refs: Arc::new(build_image_refs(fs)),
        retry: cfg.retry,
        stats: Arc::clone(fs.allocator().infra().stats()),
    });

    let mut report = ScrubReport {
        units_total: total,
        resumed_from,
        ..ScrubReport::default()
    };
    let mut gate = PressureGate::new(cfg.pause_above, cfg.resume_below);
    let mut sampler = UtilSampler::new(fs);
    let hist = obs::LogHistogram::new();

    let end = match cfg.unit_budget {
        Some(b) => (start + b).min(units.len()),
        None => units.len(),
    };
    let workers = cfg.workers.max(1);
    let pool = fs.waffinity_pool().cloned();
    let topo = Arc::clone(fs.topology());
    let aggr = fs.allocator().aggr();

    let mut next = start;
    while next < end {
        maybe_pause(fs, &mut gate, &mut sampler, &ctx.stats, &mut report);
        let wave_end = (next + workers).min(end);
        let mut outs: Vec<(usize, UnitScan)> = Vec::with_capacity(wave_end - next);
        match &pool {
            Some(p) => {
                let (tx, rx) = mpsc::channel();
                for (i, aa) in units.iter().enumerate().take(wave_end).skip(next) {
                    let ctx2 = Arc::clone(&ctx);
                    let aa = *aa;
                    let tx = tx.clone();
                    p.send(topo.aggr_range_for(aggr, i as u64), move || {
                        let out = scan_unit(&ctx2, aa);
                        let _ = tx.send((i, out));
                    });
                }
                drop(tx);
                while let Ok(pair) = rx.recv() {
                    outs.push(pair);
                }
            }
            None => {
                for (i, aa) in units.iter().enumerate().take(wave_end).skip(next) {
                    outs.push((i, scan_unit(&ctx, *aa)));
                }
            }
        }
        outs.sort_by_key(|(i, _)| *i);
        for (i, scan) in outs {
            hist.record(scan.scan_ns);
            report.blocks_checked += scan.blocks;
            report.retries += scan.retries;
            // ordering: statistics counters; staleness is acceptable.
            ctx.stats.scrub_units.fetch_add(1, Ordering::Relaxed);
            // ordering: as above.
            ctx.stats
                .scrub_blocks_checked
                .fetch_add(scan.blocks, Ordering::Relaxed);
            process_unit(fs, cfg, &ctx, scan.cands, &mut repaired_keys, &mut report);
            store.commit(ScrubCheckpoint {
                pass,
                next_unit: (i + 1) as u64,
                total_units: total,
                repaired: repaired_keys.clone(),
            });
        }
        next = wave_end;
    }

    report.units_scanned = (next - start) as u64;
    report.completed = next == units.len();
    report.unit_scan_p50_ns = hist.percentile(0.50);
    report.unit_scan_p99_ns = hist.percentile(0.99);
    report
}

impl Filesystem {
    /// Run (or resume) an online scrub pass; see [`run_scrub`].
    pub fn scrub(&self, cfg: &ScrubConfig, store: &ScrubCheckpointStore) -> ScrubReport {
        run_scrub(self, cfg, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_gate_hysteresis() {
        let mut g = PressureGate::new(0.90, 0.50);
        assert!(!g.observe(0.80), "below activation stays open");
        assert!(g.observe(0.95), "crossing the high threshold pauses");
        assert!(g.observe(0.70), "dead band holds the pause");
        assert!(g.observe(0.55), "still above the low threshold");
        assert!(!g.observe(0.40), "dropping below the low threshold resumes");
        assert!(!g.observe(0.80), "and stays open until the high threshold");
        g.observe(0.95);
        assert!(g.is_paused());
        g.force_resume();
        assert!(!g.is_paused());
    }

    #[test]
    fn checkpoint_store_commit_load_clear() {
        let store = ScrubCheckpointStore::new();
        assert!(store.load().is_none());
        let mut repaired = BTreeSet::new();
        repaired.insert("stamp:vbn=7".to_string());
        store.commit(ScrubCheckpoint {
            pass: 2,
            next_unit: 5,
            total_units: 64,
            repaired: repaired.clone(),
        });
        let cp = store.load().expect("committed");
        assert_eq!(cp.pass, 2);
        assert_eq!(cp.next_unit, 5);
        assert_eq!(cp.total_units, 64);
        assert_eq!(cp.repaired, repaired);
        store.clear();
        assert!(store.load().is_none());
    }

    #[test]
    fn finding_keys_are_stable_and_exclude_volatile_payload() {
        let a = ScrubError::StampMismatch {
            vbn: 9,
            expected: 1,
            found: 2,
        };
        let b = ScrubError::StampMismatch {
            vbn: 9,
            expected: 1,
            found: 77,
        };
        assert_eq!(a.key(), b.key(), "found stamp is volatile");
        let c = ScrubError::AaCounterSkew {
            rg: 1,
            aa: 3,
            tracked: 10,
            actual: 12,
        };
        let d = ScrubError::AaCounterSkew {
            rg: 1,
            aa: 3,
            tracked: 11,
            actual: 12,
        };
        assert_eq!(c.key(), d.key(), "counts are volatile");
        assert_ne!(
            ScrubError::StaleActiveBit { vbn: 4 }.key(),
            ScrubError::MissingActiveBit { vbn: 4 }.key(),
            "direction of bitmap skew is part of the identity"
        );
    }

    #[test]
    fn repair_rank_orders_data_before_rebuild_before_summaries() {
        let dead = ScrubError::DeadDrive { drive: 0 };
        let stamp = ScrubError::StampMismatch {
            vbn: 0,
            expected: 0,
            found: 1,
        };
        let parity = ScrubError::ParityMismatch { rg: 0, dbn: 0 };
        let skew = ScrubError::AaCounterSkew {
            rg: 0,
            aa: 0,
            tracked: 0,
            actual: 1,
        };
        // A rebuild XORs the survivors: repairing data blocks first keeps
        // survivor corruption out of the reconstructed member.
        assert!(repair_rank(&stamp) < repair_rank(&dead));
        assert!(repair_rank(&dead) < repair_rank(&parity));
        assert!(repair_rank(&parity) < repair_rank(&skew));
    }
}
