//! Dirty buffers: the in-memory representation of modified file blocks.
//!
//! "A block of a file is represented in memory by a buffer" (§II-B).
//! Payloads are 128-bit stamps (see [`wafl_blockdev::BlockStamp`]); a
//! dirty buffer also remembers the block's *previous* physical and
//! virtual locations, because "an overwrite in WAFL frees the old block"
//! (§III-C) — cleaning stages those frees.

use serde::{Deserialize, Serialize};
use wafl_blockdev::{BlockStamp, Vbn};

/// A modified file block awaiting cleaning in the next CP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyBuffer {
    /// File block number (offset within the file).
    pub fbn: u64,
    /// Payload stamp to persist.
    pub stamp: BlockStamp,
    /// Previous physical location, if the block was allocated before
    /// (`None` for a first write / hole fill).
    pub old_pvbn: Option<Vbn>,
    /// Previous virtual location within the volume.
    pub old_vvbn: Option<u64>,
}

impl DirtyBuffer {
    /// A first-write buffer (no previous location).
    pub fn first_write(fbn: u64, stamp: BlockStamp) -> Self {
        Self {
            fbn,
            stamp,
            old_pvbn: None,
            old_vvbn: None,
        }
    }

    /// An overwrite of a block previously at `(old_vvbn, old_pvbn)`.
    pub fn overwrite(fbn: u64, stamp: BlockStamp, old_vvbn: u64, old_pvbn: Vbn) -> Self {
        Self {
            fbn,
            stamp,
            old_pvbn: Some(old_pvbn),
            old_vvbn: Some(old_vvbn),
        }
    }

    /// Does cleaning this buffer free an old block?
    #[inline]
    pub fn frees_old_block(&self) -> bool {
        self.old_pvbn.is_some()
    }
}

/// Where a cleaned buffer landed: the result record a cleaner produces
/// and the CP engine applies to the file's block map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanedBlock {
    /// File block number.
    pub fbn: u64,
    /// Newly assigned Virtual VBN.
    pub vvbn: u64,
    /// Newly assigned physical VBN.
    pub pvbn: Vbn,
    /// The payload that was written there.
    pub stamp: BlockStamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_has_no_old_location() {
        let b = DirtyBuffer::first_write(7, 0xabc);
        assert!(!b.frees_old_block());
        assert_eq!(b.old_vvbn, None);
    }

    #[test]
    fn overwrite_remembers_old_location() {
        let b = DirtyBuffer::overwrite(7, 0xdef, 42, Vbn(1000));
        assert!(b.frees_old_block());
        assert_eq!(b.old_pvbn, Some(Vbn(1000)));
        assert_eq!(b.old_vvbn, Some(42));
    }
}
