//! Virtual-VBN allocation within a FlexVol volume.
//!
//! "A version of this infrastructure is reused to write allocate Virtual
//! VBNs within FlexVol volumes" (§IV-D). The full bucket machinery is in
//! the `alligator` crate; the VVBN space has no RAID geometry (it is a
//! flat offset space), so this type reuses the two properties that
//! matter:
//!
//! * **chunked reservation** ([`VvbnSpace::alloc_chunk`]): a cleaner
//!   grabs a run of VVBNs at a time, amortizing synchronization exactly
//!   like a bucket;
//! * the backing [`ActiveMap`] tracks *metafile-block dirtying* for VVBN
//!   allocations and frees, which is the volume-side infrastructure load
//!   (the Volume-VBN Range affinities of §IV-B2).

use parking_lot::Mutex;
use std::sync::Arc;
use wafl_metafile::ActiveMap;

/// The VVBN number space of one volume.
///
/// ```
/// use wafl::VvbnSpace;
///
/// let space = VvbnSpace::new(1 << 20);
/// let mut chunk = space.alloc_chunk(64).unwrap();   // bucket-style grab
/// let v = chunk.take().unwrap();
/// space.commit(v);                                  // dirties the metafile
/// space.release_unused(&chunk);                     // unconsumed tail back
/// assert_eq!(space.free_count(), (1 << 20) - 1);
/// ```
pub struct VvbnSpace {
    map: Arc<ActiveMap>,
    /// Next offset to scan for free VVBNs (wraps once).
    cursor: Mutex<u64>, // lock-rank: vvbn.cursor 24
    total: u64,
}

/// A chunk of reserved VVBNs held by one cleaner.
#[derive(Debug)]
pub struct VvbnChunk {
    vvbns: Vec<u64>,
    next: usize,
}

impl VvbnChunk {
    /// Take the next VVBN from the chunk.
    #[inline]
    pub fn take(&mut self) -> Option<u64> {
        let v = *self.vvbns.get(self.next)?;
        self.next += 1;
        Some(v)
    }

    /// VVBNs not yet taken.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.vvbns.len() - self.next
    }

    /// The unconsumed tail (for release at CP end).
    #[inline]
    pub fn unused(&self) -> &[u64] {
        &self.vvbns[self.next..]
    }

    /// The consumed VVBNs.
    #[inline]
    pub fn consumed(&self) -> &[u64] {
        &self.vvbns[..self.next]
    }
}

impl VvbnSpace {
    /// A volume with `total` addressable VVBNs.
    pub fn new(total: u64) -> Self {
        Self {
            map: Arc::new(ActiveMap::new(total)),
            cursor: Mutex::new(0),
            total,
        }
    }

    /// Total VVBNs.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free VVBNs remaining.
    #[inline]
    pub fn free_count(&self) -> u64 {
        self.map.free_count()
    }

    /// The backing map (metafile dirty tracking lives there).
    #[inline]
    pub fn map(&self) -> &Arc<ActiveMap> {
        &self.map
    }

    /// Reserve up to `chunk` VVBNs. Returns `None` when the volume's VVBN
    /// space is exhausted.
    pub fn alloc_chunk(&self, chunk: usize) -> Option<VvbnChunk> {
        let mut cursor = self.cursor.lock();
        let mut got = self.map.reserve_scan(*cursor, self.total, chunk);
        if got.len() < chunk {
            // Wrap: scan from the start for the remainder.
            let more = self.map.reserve_scan(0, *cursor, chunk - got.len());
            got.extend(more);
        }
        if got.is_empty() {
            return None;
        }
        *cursor = (got.last().unwrap() + 1) % self.total.max(1);
        Some(VvbnChunk {
            vvbns: got,
            next: 0,
        })
    }

    /// Commit a consumed VVBN (dirties the covering metafile block).
    pub fn commit(&self, vvbn: u64) {
        self.map
            .commit_used(vvbn)
            .expect("commit of unreserved VVBN");
    }

    /// Release a chunk's unconsumed VVBNs.
    pub fn release_unused(&self, chunk: &VvbnChunk) {
        for &v in chunk.unused() {
            self.map.release(v).expect("release of unreserved VVBN");
        }
    }

    /// Free a previously committed VVBN (overwrite path).
    pub fn free(&self, vvbn: u64) {
        self.map.free(vvbn).expect("double VVBN free");
    }

    /// Adopt a VVBN as used without dirtying metafiles (crash recovery —
    /// see [`wafl_metafile::AggregateMap::adopt_used`]).
    pub fn adopt(&self, vvbn: u64) {
        self.map.reserve(vvbn).expect("adopted VVBN already used");
    }

    /// Drain dirty metafile blocks (CP flush of the volume's maps).
    pub fn take_dirty_blocks(&self) -> Vec<u64> {
        self.map.take_dirty_blocks()
    }
}

/// A [`VvbnChunk`] that releases its unconsumed VVBNs back to the space
/// on drop — the RAII form cleaners use so a job can never leak
/// reservations, even on early exit.
pub struct VvbnChunkGuard<'a> {
    space: &'a VvbnSpace,
    chunk: VvbnChunk,
}

impl<'a> VvbnChunkGuard<'a> {
    /// Reserve a chunk; `None` when the VVBN space is exhausted.
    pub fn new(space: &'a VvbnSpace, n: usize) -> Option<Self> {
        let chunk = space.alloc_chunk(n)?;
        Some(Self { space, chunk })
    }

    /// Take the next VVBN.
    #[inline]
    pub fn take(&mut self) -> Option<u64> {
        self.chunk.take()
    }

    /// VVBNs not yet taken.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.chunk.remaining()
    }
}

impl Drop for VvbnChunkGuard<'_> {
    fn drop(&mut self) {
        self.space.release_unused(&self.chunk);
    }
}

impl std::fmt::Debug for VvbnChunkGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VvbnChunkGuard")
            .field("remaining", &self.chunk.remaining())
            .finish()
    }
}

impl std::fmt::Debug for VvbnSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VvbnSpace")
            .field("total", &self.total)
            .field("free", &self.free_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_allocation_is_contiguous_when_fresh() {
        let s = VvbnSpace::new(1000);
        let mut c = s.alloc_chunk(8).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| c.take()).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(s.free_count(), 992);
    }

    #[test]
    fn cursor_advances_between_chunks() {
        let s = VvbnSpace::new(100);
        let a = s.alloc_chunk(4).unwrap();
        let b = s.alloc_chunk(4).unwrap();
        assert_eq!(a.unused()[0], 0);
        assert_eq!(b.unused()[0], 4);
    }

    #[test]
    fn wraparound_finds_freed_space() {
        let s = VvbnSpace::new(16);
        let mut c = s.alloc_chunk(16).unwrap();
        let all: Vec<u64> = std::iter::from_fn(|| c.take()).collect();
        for &v in &all {
            s.commit(v);
        }
        assert!(s.alloc_chunk(1).is_none(), "space exhausted");
        s.free(3);
        s.free(4);
        let mut again = s.alloc_chunk(4).unwrap();
        let got: Vec<u64> = std::iter::from_fn(|| again.take()).collect();
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn release_unused_returns_space() {
        let s = VvbnSpace::new(64);
        let mut c = s.alloc_chunk(10).unwrap();
        c.take();
        c.take();
        s.commit(c.consumed()[0]);
        s.commit(c.consumed()[1]);
        s.release_unused(&c);
        assert_eq!(s.free_count(), 62);
    }

    #[test]
    fn commits_and_frees_dirty_metafile_blocks() {
        let s = VvbnSpace::new(1000);
        let mut c = s.alloc_chunk(2).unwrap();
        let v = c.take().unwrap();
        assert_eq!(s.map().dirty_block_count(), 0, "reservation is clean");
        s.commit(v);
        assert_eq!(s.map().dirty_block_count(), 1);
        assert_eq!(s.take_dirty_blocks().len(), 1);
        s.free(v);
        assert_eq!(s.map().dirty_block_count(), 1);
    }

    #[test]
    fn concurrent_chunkers_get_disjoint_vvbns() {
        let s = Arc::new(VvbnSpace::new(4096));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut mine = Vec::new();
                while let Some(mut c) = s.alloc_chunk(32) {
                    while let Some(v) = c.take() {
                        mine.push(v);
                    }
                    if mine.len() >= 512 {
                        break;
                    }
                }
                mine
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
