//! Integration of the continuous-telemetry layer (DESIGN.md §16) with
//! the file system: a deterministic blackbox-dump golden test under a
//! seeded drive-death fault, and the sampler thread servicing deferred
//! triggers end to end.

use obs::{Blackbox, BlackboxConfig, RegistrySource, Trigger};
use serde::Value;
use std::path::PathBuf;
use std::sync::Arc;
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, FaultSpec, GeometryBuilder, RetryPolicy};

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("wafl-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    let Value::Map(pairs) = v else {
        panic!("expected object looking up {key}")
    };
    &pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing field {key}"))
        .1
}

fn uint(v: &Value) -> u128 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected uint, got {other:?}"),
    }
}

/// Golden post-mortem: a seeded whole-drive death fires the
/// `drive_offline` trigger; servicing the recorder produces a bundle
/// whose structure and fault accounting are fully determined by the
/// seed.
#[test]
fn drive_death_produces_a_consistent_blackbox_bundle() {
    let dir = tempdir("golden");
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    // Drive 1 dies on its 2nd op (ops are whole write runs, so a small
    // CP only issues a handful per drive): early enough that the
    // workload below deterministically reaches it, tolerated by
    // single-parity RAID.
    let fs = Filesystem::with_faults(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        FaultSpec {
            seed: 0x7e1e,
            fail_drive: Some(1),
            fail_drive_after_ops: 1,
            ..FaultSpec::default()
        },
        RetryPolicy::default(),
        ExecMode::Inline,
    );

    let bb = Arc::new(Blackbox::new(
        RegistrySource::Global,
        BlackboxConfig::new(&dir),
    ));
    // Sections close over the live engine/config — the bundle carries
    // the state *at dump time*, after the death.
    let io = Arc::clone(fs.io());
    bb.add_section(
        "fault_snapshot",
        Box::new(move || {
            let s = serde_json::to_string(&io.fault_snapshot()).unwrap();
            serde_json::from_str(&s).unwrap()
        }),
    );
    bb.add_section(
        "config",
        Box::new(move || {
            let s = serde_json::to_string(&cfg).unwrap();
            serde_json::from_str(&s).unwrap()
        }),
    );

    assert!(
        bb.service().unwrap().is_none(),
        "no trigger fired yet — arming must not retro-dump old fires"
    );

    fs.create_volume(VolumeId(0));
    for file in 0..4u64 {
        fs.create_file(VolumeId(0), FileId(file));
        for fbn in 0..16 {
            fs.write(VolumeId(0), FileId(file), fbn, stamp(file, fbn, 1));
        }
    }
    fs.run_cp();
    let snap = fs.io().fault_snapshot();
    assert_eq!(snap.drives_offline, 1, "seeded death must have happened");

    let path = bb
        .service()
        .unwrap()
        .expect("drive death arms the recorder");
    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();

    assert_eq!(
        *field(&doc, "schema"),
        Value::Str("wafl.blackbox.v1".into())
    );
    assert_eq!(*field(&doc, "reason"), Value::Str("drive_offline".into()));

    // Trigger board: the drive-offline slot fired and names the drive.
    let Value::Seq(board) = field(&doc, "triggers") else {
        panic!("triggers must be an array")
    };
    let slot = board
        .iter()
        .find(|t| *field(t, "name") == Value::Str("drive_offline".into()))
        .unwrap();
    assert!(uint(field(slot, "fires")) >= 1);
    assert_eq!(uint(field(slot, "last_arg")), 1, "arg is the dead drive id");

    // Fault snapshot in the bundle agrees with the engine.
    let fsnap = field(field(&doc, "sections"), "fault_snapshot");
    assert_eq!(uint(field(fsnap, "drives_offline")), 1);
    assert_eq!(
        uint(field(fsnap, "degraded_stripes")) > 0,
        snap.degraded_stripes > 0,
        "bundle and engine agree on degraded-mode activity"
    );
    let conf = field(field(&doc, "sections"), "config");
    assert_eq!(uint(field(conf, "io_queue_depth")), 0);

    // Metrics snapshot is present and self-consistent: the dump counter
    // counted this very dump, and the CP profiler left its series.
    let counters = field(field(&doc, "metrics"), "counters");
    assert!(uint(field(counters, "telemetry_blackbox_dumps")) >= 1);
    assert!(uint(field(counters, "cp_phase_profiled")) >= 1);

    // Thread rings: present exactly when the trace feature is compiled
    // in (CI runs this file both ways).
    let Value::Seq(threads) = field(&doc, "threads") else {
        panic!("threads must be an array")
    };
    if obs::ENABLED {
        assert!(
            !threads.is_empty(),
            "trace build must capture per-thread rings"
        );
        for t in threads {
            let Value::Seq(events) = field(t, "events") else {
                panic!("events must be an array")
            };
            assert!(
                !events.is_empty() || uint(field(t, "dropped")) == 0,
                "a thread with no exported events must not claim drops"
            );
        }
    } else {
        assert!(threads.is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end deferred-trigger path: the sampler thread both ticks the
/// time-series ring and services blackbox triggers between ticks.
#[test]
fn sampler_thread_services_deferred_triggers() {
    let dir = tempdir("svc");
    let reg = Arc::new(obs::Registry::new());
    let sampler = Arc::new(obs::Sampler::new(
        RegistrySource::Shared(Arc::clone(&reg)),
        obs::SamplerConfig {
            interval: std::time::Duration::from_millis(2),
            ..obs::SamplerConfig::default()
        },
    ));
    let bb = Arc::new(Blackbox::new(
        RegistrySource::Shared(Arc::clone(&reg)),
        BlackboxConfig::new(&dir),
    ));
    let mut thread = obs::SamplerThread::spawn(Arc::clone(&sampler), Some(Arc::clone(&bb)));

    obs::trigger(Trigger::Manual, 42);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while bb.dumps() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    thread.stop();
    assert!(bb.dumps() >= 1, "sampler thread must service the trigger");
    assert!(!sampler.ticks().is_empty(), "and keep ticking the ring");
    assert!(
        reg.counter("telemetry_blackbox_dumps").get() >= 1,
        "dump counted on the recorder's own registry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
