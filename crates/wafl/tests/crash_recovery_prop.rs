//! Property test: NVLog replay idempotence under injected mid-CP crashes.
//!
//! For a random sequence of client ops with CPs sprinkled in, crashing the
//! final CP at *any* phase and recovering must yield exactly the logical
//! state of a run that never crashed: the committed image plus an NVRAM
//! log replay reconstructs every acknowledged op (§II-C), and the
//! recovered aggregate passes the full integrity check including the
//! raw-media parity scrub.

use proptest::prelude::*;
use wafl::{CrashPoint, ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{DriveKind, GeometryBuilder};

const FILES: u64 = 4;
const FBNS: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum ClientOp {
    Write { file: u64, fbn: u64 },
    Truncate { file: u64, cut: u64 },
    Delete { file: u64 },
    Cp,
}

fn client_ops() -> impl Strategy<Value = Vec<ClientOp>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u64..FILES, 0u64..FBNS)
                .prop_map(|(file, fbn)| ClientOp::Write { file, fbn }),
            1 => (0u64..FILES, 0u64..FBNS)
                .prop_map(|(file, cut)| ClientOp::Truncate { file, cut }),
            1 => (0u64..FILES).prop_map(|file| ClientOp::Delete { file }),
            1 => Just(ClientOp::Cp),
        ],
        1..80,
    )
}

fn mk_fs() -> Filesystem {
    mk_fs_depth(0)
}

/// `io_queue_depth = 0` is the synchronous engine; any positive depth
/// routes tetris stripes through `blockdev::aio` submission/completion
/// queues, with the CP superblock commit as the only barrier.
fn mk_fs_depth(io_queue_depth: usize) -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        io_queue_depth,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    for f in 0..FILES {
        fs.create_file(VolumeId(0), FileId(f));
    }
    fs
}

/// Apply one op identically on a file system; `seq` disambiguates stamps.
fn apply(fs: &Filesystem, op: ClientOp, seq: u64) {
    let vol = VolumeId(0);
    match op {
        ClientOp::Write { file, fbn } => {
            // A deleted file may be written again: re-create first, as a
            // client would.
            if fs
                .volume(vol)
                .map(|v| !v.has_file(FileId(file)))
                .unwrap_or(false)
            {
                fs.create_file(vol, FileId(file));
            }
            fs.write(
                vol,
                FileId(file),
                fbn,
                wafl_blockdev::stamp(file, fbn, seq + 1),
            );
        }
        ClientOp::Truncate { file, cut } => {
            fs.truncate(vol, FileId(file), cut);
        }
        ClientOp::Delete { file } => {
            fs.delete_file(vol, FileId(file));
        }
        ClientOp::Cp => {
            fs.run_cp();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crashed_cp_recovery_matches_uncrashed_run(
        ops in client_ops(),
        crash_idx in 0usize..4,
    ) {
        let crash_at = CrashPoint::ALL[crash_idx];
        let reference = mk_fs();
        let crashed = mk_fs();
        for (seq, &op) in ops.iter().enumerate() {
            apply(&reference, op, seq as u64);
            apply(&crashed, op, seq as u64);
        }
        // Reference finishes cleanly; the other run crashes mid-CP and
        // reboots.
        reference.run_cp();
        crashed.run_cp_crash_at(crash_at);
        let recovered = crashed.crash_and_recover(ExecMode::Inline);
        recovered.run_cp();

        // Logical state is identical, both in memory and as committed.
        for file in 0..FILES {
            for fbn in 0..FBNS {
                let want = reference.read(VolumeId(0), FileId(file), fbn);
                prop_assert_eq!(
                    recovered.read(VolumeId(0), FileId(file), fbn),
                    want,
                    "logical divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
                prop_assert_eq!(
                    recovered.read_persisted(VolumeId(0), FileId(file), fbn),
                    reference.read_persisted(VolumeId(0), FileId(file), fbn),
                    "committed divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
            }
        }
        // Both aggregates verify end to end (stamps, metafiles, parity).
        reference.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("reference: {e}"))
        })?;
        recovered.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("recovered after {crash_at:?}: {e}"))
        })?;
    }

    /// The same idempotence property with the CP pipelined through the
    /// async engine: a crash point now *drops the in-flight submission
    /// queues* (writes submitted but never serviced are lost outright),
    /// and recovery must still converge to the uncrashed run because
    /// every dropped write was copy-on-write and its logical content is
    /// replayed from the NVRAM log.
    #[test]
    fn crashed_async_cp_recovery_matches_uncrashed_run(
        ops in client_ops(),
        crash_idx in 0usize..4,
    ) {
        let crash_at = CrashPoint::ALL[crash_idx];
        let reference = mk_fs();
        let crashed = mk_fs_depth(8);
        prop_assert!(crashed.aio().is_some());
        for (seq, &op) in ops.iter().enumerate() {
            apply(&reference, op, seq as u64);
            apply(&crashed, op, seq as u64);
        }
        reference.run_cp();
        crashed.run_cp_crash_at(crash_at);
        // crash_and_recover shares the media but re-creates the async
        // engine from cfg — recovery itself also runs pipelined.
        let recovered = crashed.crash_and_recover(ExecMode::Inline);
        prop_assert!(recovered.aio().is_some());
        recovered.run_cp();

        for file in 0..FILES {
            for fbn in 0..FBNS {
                prop_assert_eq!(
                    recovered.read(VolumeId(0), FileId(file), fbn),
                    reference.read(VolumeId(0), FileId(file), fbn),
                    "async logical divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
                prop_assert_eq!(
                    recovered.read_persisted(VolumeId(0), FileId(file), fbn),
                    reference.read_persisted(VolumeId(0), FileId(file), fbn),
                    "async committed divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
            }
        }
        recovered.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("async recovery after {crash_at:?}: {e}"))
        })?;
    }
}

/// Unique tmpdir per torture case (cases run concurrently under
/// proptest's fork-free runner; the counter keeps them disjoint).
fn torture_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    // ordering: test-local unique-id counter.
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("wafl-torture-{}-{}", std::process::id(), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Crash-consistency torture on the **file backend**: the aggregate
    /// mirrors to real files, the mid-CP crash drops the async queues
    /// *and* tears the mirror (a multi-segment stripe racing the crash
    /// persists only a prefix of its segments), and the remount rebuilds
    /// fresh drives from whatever the files hold. NVLog replay must then
    /// reconstruct every acknowledged op, and the remounted aggregate
    /// must verify end to end — stamps, metafiles, and a raw parity
    /// scrub with zero findings.
    #[test]
    fn file_backend_torn_stripe_remount(
        ops in client_ops(),
        crash_idx in 0usize..4,
    ) {
        let crash_at = CrashPoint::ALL[crash_idx];
        let dir = torture_dir();
        let _ = std::fs::remove_dir_all(&dir);
        let reference = mk_fs();
        let crashed = mk_fs_depth(8);
        crashed
            .attach_file_backend(&dir, wafl_blockdev::SyncPolicy::Barrier)
            .expect("file backend opens in a tmpdir");
        for (seq, &op) in ops.iter().enumerate() {
            apply(&reference, op, seq as u64);
            apply(&crashed, op, seq as u64);
        }
        reference.run_cp();
        crashed.run_cp_crash_at(crash_at);
        let remounted = crashed
            .remount_from_files(&dir, ExecMode::Inline)
            .map_err(TestCaseError::fail)?;
        remounted.run_cp();

        for file in 0..FILES {
            for fbn in 0..FBNS {
                prop_assert_eq!(
                    remounted.read(VolumeId(0), FileId(file), fbn),
                    reference.read(VolumeId(0), FileId(file), fbn),
                    "file-backend logical divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
                prop_assert_eq!(
                    remounted.read_persisted(VolumeId(0), FileId(file), fbn),
                    reference.read_persisted(VolumeId(0), FileId(file), fbn),
                    "file-backend committed divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
            }
        }
        let verdict = remounted.verify_integrity();
        let _ = std::fs::remove_dir_all(&dir);
        verdict.map_err(|e| {
            TestCaseError::fail(format!("file-backend remount after {crash_at:?}: {e}"))
        })?;
    }
}
