//! Property test: NVLog replay idempotence under injected mid-CP crashes.
//!
//! For a random sequence of client ops with CPs sprinkled in, crashing the
//! final CP at *any* phase and recovering must yield exactly the logical
//! state of a run that never crashed: the committed image plus an NVRAM
//! log replay reconstructs every acknowledged op (§II-C), and the
//! recovered aggregate passes the full integrity check including the
//! raw-media parity scrub.

use proptest::prelude::*;
use wafl::{CrashPoint, ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{DriveKind, GeometryBuilder};

const FILES: u64 = 4;
const FBNS: u64 = 32;

#[derive(Debug, Clone, Copy)]
enum ClientOp {
    Write { file: u64, fbn: u64 },
    Truncate { file: u64, cut: u64 },
    Delete { file: u64 },
    Cp,
}

fn client_ops() -> impl Strategy<Value = Vec<ClientOp>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u64..FILES, 0u64..FBNS)
                .prop_map(|(file, fbn)| ClientOp::Write { file, fbn }),
            1 => (0u64..FILES, 0u64..FBNS)
                .prop_map(|(file, cut)| ClientOp::Truncate { file, cut }),
            1 => (0u64..FILES).prop_map(|file| ClientOp::Delete { file }),
            1 => Just(ClientOp::Cp),
        ],
        1..80,
    )
}

fn mk_fs() -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    for f in 0..FILES {
        fs.create_file(VolumeId(0), FileId(f));
    }
    fs
}

/// Apply one op identically on a file system; `seq` disambiguates stamps.
fn apply(fs: &Filesystem, op: ClientOp, seq: u64) {
    let vol = VolumeId(0);
    match op {
        ClientOp::Write { file, fbn } => {
            // A deleted file may be written again: re-create first, as a
            // client would.
            if fs
                .volume(vol)
                .map(|v| !v.has_file(FileId(file)))
                .unwrap_or(false)
            {
                fs.create_file(vol, FileId(file));
            }
            fs.write(
                vol,
                FileId(file),
                fbn,
                wafl_blockdev::stamp(file, fbn, seq + 1),
            );
        }
        ClientOp::Truncate { file, cut } => {
            fs.truncate(vol, FileId(file), cut);
        }
        ClientOp::Delete { file } => {
            fs.delete_file(vol, FileId(file));
        }
        ClientOp::Cp => {
            fs.run_cp();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crashed_cp_recovery_matches_uncrashed_run(
        ops in client_ops(),
        crash_idx in 0usize..4,
    ) {
        let crash_at = CrashPoint::ALL[crash_idx];
        let reference = mk_fs();
        let crashed = mk_fs();
        for (seq, &op) in ops.iter().enumerate() {
            apply(&reference, op, seq as u64);
            apply(&crashed, op, seq as u64);
        }
        // Reference finishes cleanly; the other run crashes mid-CP and
        // reboots.
        reference.run_cp();
        crashed.run_cp_crash_at(crash_at);
        let recovered = crashed.crash_and_recover(ExecMode::Inline);
        recovered.run_cp();

        // Logical state is identical, both in memory and as committed.
        for file in 0..FILES {
            for fbn in 0..FBNS {
                let want = reference.read(VolumeId(0), FileId(file), fbn);
                prop_assert_eq!(
                    recovered.read(VolumeId(0), FileId(file), fbn),
                    want,
                    "logical divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
                prop_assert_eq!(
                    recovered.read_persisted(VolumeId(0), FileId(file), fbn),
                    reference.read_persisted(VolumeId(0), FileId(file), fbn),
                    "committed divergence at {:?} file {} fbn {}",
                    crash_at, file, fbn
                );
            }
        }
        // Both aggregates verify end to end (stamps, metafiles, parity).
        reference.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("reference: {e}"))
        })?;
        recovered.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("recovered after {crash_at:?}: {e}"))
        })?;
    }
}
