//! Fault-torture suite for the online scrubber.
//!
//! Seeds every corruption class the scrubber claims to handle — media
//! bit-flips, bad parity, stale/missing active-map bits, AA summary
//! skew, dead drives, transient read faults — and asserts the full
//! detect → quarantine → repair → re-verify pipeline: 100 % detection,
//! repair via redundancy, a clean re-scan afterwards, and zero findings
//! on uncorrupted images. Also exercises the checkpoint cursor across
//! `crash_and_recover` and the scrub running online against an active
//! cleaner pool.

use std::collections::{BTreeMap, BTreeSet};

use wafl::scrub::{FindingState, ScrubCheckpoint, ScrubCheckpointStore, ScrubConfig};
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{
    stamp, BlockStamp, Dbn, DriveKind, FaultSpec, GeometryBuilder, RetryPolicy, Vbn,
};

const FBNS: u64 = 48;

/// Two RAID groups of (3 data + 1 parity) × 1024 blocks, 64-stripe AAs:
/// 16 AAs per group, 32 scrub units.
fn mk_fs(exec: ExecMode) -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        exec,
    );
    fs.create_volume(VolumeId(0));
    fs.create_volume(VolumeId(1));
    fs
}

/// Fill `files` × `FBNS` blocks of `vol` and commit a CP.
fn fill(fs: &Filesystem, vol: VolumeId, files: u64, generation: u64) {
    for f in 0..files {
        fs.create_file(vol, FileId(f));
        for fbn in 0..FBNS {
            fs.write(vol, FileId(f), fbn, stamp(f, fbn, generation));
        }
    }
    fs.run_cp();
}

/// vbn → expected stamp for every file block the committed image
/// references in `vol`.
fn image_refs(fs: &Filesystem, vol: VolumeId) -> BTreeMap<u64, BlockStamp> {
    let img = fs.committed_image().expect("at least one CP committed");
    let mut refs = BTreeMap::new();
    for vi in &img.volumes {
        if vi.id != vol {
            continue;
        }
        for (_f, blocks) in &vi.files {
            for (_fbn, ptr) in blocks {
                refs.insert(ptr.pvbn.0, ptr.stamp);
            }
        }
    }
    refs
}

/// All referenced vbns (any volume) plus metafile blocks.
fn all_refs(fs: &Filesystem) -> BTreeSet<u64> {
    let img = fs.committed_image().expect("at least one CP committed");
    let mut refs = BTreeSet::new();
    for vi in &img.volumes {
        for (_f, blocks) in &vi.files {
            for (_fbn, ptr) in blocks {
                refs.insert(ptr.pvbn.0);
            }
        }
    }
    for ((_src, _blk), vbn) in &img.metafile_locs {
        refs.insert(vbn.0);
    }
    refs
}

/// vbn → expected stamp for every file block of every volume.
fn all_file_refs(fs: &Filesystem) -> BTreeMap<u64, BlockStamp> {
    let img = fs.committed_image().expect("at least one CP committed");
    let mut refs = BTreeMap::new();
    for vi in &img.volumes {
        for (_f, blocks) in &vi.files {
            for (_fbn, ptr) in blocks {
                refs.insert(ptr.pvbn.0, ptr.stamp);
            }
        }
    }
    refs
}

/// Overwrite the media stamp at `vbn` (a seeded bit-flip / torn write).
fn corrupt_stamp(fs: &Filesystem, vbn: u64, bad: BlockStamp) {
    let loc = fs.io().geometry().locate(Vbn(vbn)).expect("valid vbn");
    let group = fs.io().raid_group(loc.rg);
    group.data_drives()[loc.drive_in_rg as usize].repair_write(loc.dbn, &[bad]);
}

/// Find a stripe whose every data block is in `refs` (so a seeded
/// parity corruption cannot be "fixed" by a concurrent full-stripe
/// write), excluding one stripe. Returns `(rg_index, dbn)`.
fn referenced_stripe(
    fs: &Filesystem,
    refs: &BTreeSet<u64>,
    exclude: Option<(u32, u64)>,
) -> (u32, u64) {
    let geo = fs.io().geometry();
    for rg in geo.rg_ids() {
        let group = fs.io().raid_group(rg);
        let drives = group.data_drives().len() as u32;
        let blocks = group.geometry().blocks_per_drive;
        'dbn: for dbn in 0..blocks {
            if exclude == Some((rg.0, dbn)) {
                continue;
            }
            for d in 0..drives {
                if !refs.contains(&geo.vbn_at(rg, d, Dbn(dbn)).0) {
                    continue 'dbn;
                }
            }
            return (rg.0, dbn);
        }
    }
    panic!("no fully referenced stripe anywhere");
}

/// XOR-corrupt the parity block of `(rg, dbn)`.
fn corrupt_parity(fs: &Filesystem, rg_index: u32, dbn: u64) {
    let group = fs.io().raid_group(wafl_blockdev::RaidGroupId(rg_index));
    let cur = group.parity_drives()[0].peek(Dbn(dbn));
    group.parity_drives()[0].repair_write(Dbn(dbn), &[cur ^ 0xBAD_F00D]);
}

/// A free, unreferenced vbn scanned from the top of the address space
/// (the allocator fills from the emptiest AAs, so high free vbns in a
/// mostly-full low region stay untouched).
fn free_unreferenced_vbn(fs: &Filesystem, refs: &BTreeSet<u64>) -> u64 {
    let aggmap = fs.allocator().infra().aggmap();
    let total = fs.io().geometry().total_vbns();
    for vbn in (0..total).rev() {
        if !refs.contains(&vbn) && !aggmap.is_used(Vbn(vbn)) {
            return vbn;
        }
    }
    panic!("no free unreferenced vbn");
}

/// The scrub-unit index (pass cursor position) covering `vbn`.
fn unit_of(fs: &Filesystem, vbn: u64) -> usize {
    let geo = fs.io().geometry();
    let loc = geo.locate(Vbn(vbn)).expect("valid vbn");
    let aa = geo.aa_of(Vbn(vbn));
    let mut idx = 0usize;
    for rg in geo.rg_ids() {
        if rg == loc.rg {
            return idx + aa.index as usize;
        }
        idx += geo.aa_count(rg) as usize;
    }
    unreachable!("vbn located in an unknown raid group");
}

fn finding_keys(report: &wafl::ScrubReport) -> BTreeSet<String> {
    report.findings.iter().map(|f| f.error.key()).collect()
}

fn assert_all_reverified(report: &wafl::ScrubReport) {
    for f in &report.findings {
        assert_eq!(
            f.state,
            FindingState::Reverified,
            "finding not re-verified: {} ({:?})",
            f.error,
            f.state
        );
    }
}

#[test]
fn clean_image_scrub_reports_nothing() {
    let fs = mk_fs(ExecMode::Inline);
    fill(&fs, VolumeId(0), 4, 1);
    fill(&fs, VolumeId(1), 3, 2);
    let store = ScrubCheckpointStore::new();
    let report = fs.scrub(&ScrubConfig::default(), &store);
    assert!(report.completed, "pass ran to the end");
    assert_eq!(report.units_scanned, report.units_total);
    assert!(report.blocks_checked > 0);
    assert!(
        report.is_clean(),
        "clean image produced findings: {:?}",
        report.findings
    );
    assert_eq!(report.false_alarms, 0, "quiesced clean scan saw no races");
}

#[test]
fn scrub_detects_and_repairs_every_seeded_corruption_class() {
    let fs = mk_fs(ExecMode::Inline);
    fill(&fs, VolumeId(0), 4, 1);
    fill(&fs, VolumeId(1), 3, 2);
    let refs1 = image_refs(&fs, VolumeId(1));
    let all = all_refs(&fs);
    let aggmap = fs.allocator().infra().aggmap();

    // Class 1: media bit-flip on a referenced block (also breaks its
    // stripe's parity — the collateral parity finding is real too).
    let (&flip_vbn, &flip_stamp) = refs1.iter().nth(refs1.len() / 2).expect("vol 1 has blocks");
    corrupt_stamp(&fs, flip_vbn, flip_stamp ^ 0xDEAD_BEEF);
    let flip_loc = fs.io().geometry().locate(Vbn(flip_vbn)).unwrap();

    // Class 2: bad parity on a fully referenced stripe (excluding the
    // bit-flip's stripe, whose parity finding is its collateral).
    let vol1_set: BTreeSet<u64> = refs1.keys().copied().collect();
    let (parity_rg, parity_dbn) =
        referenced_stripe(&fs, &vol1_set, Some((flip_loc.rg.0, flip_loc.dbn.0)));
    corrupt_parity(&fs, parity_rg, parity_dbn);

    // Class 3: stale active-map bit (leak) — bit set behind the AA
    // summary's back, so the same unit also has AA counter skew.
    let stale_vbn = free_unreferenced_vbn(&fs, &all);
    aggmap.active_map().reserve(stale_vbn).expect("was free");

    // Class 4: missing active-map bit (refcount skew toward free) on a
    // referenced block, again skewing its AA summary.
    let (&miss_vbn, _) = refs1
        .iter()
        .find(|(v, _)| unit_of(&fs, **v) != unit_of(&fs, stale_vbn) && **v != flip_vbn)
        .expect("a referenced block outside the stale unit");
    aggmap.active_map().free(miss_vbn).expect("was used");

    let store = ScrubCheckpointStore::new();
    let report = fs.scrub(&ScrubConfig::default(), &store);

    let keys = finding_keys(&report);
    let required = [
        format!("stamp:vbn={flip_vbn}"),
        format!("parity:rg={parity_rg}:dbn={parity_dbn}"),
        format!("stalebit:vbn={stale_vbn}"),
        format!("missbit:vbn={miss_vbn}"),
    ];
    for k in &required {
        assert!(
            keys.contains(k),
            "seeded corruption undetected: {k}; got {keys:?}"
        );
    }
    // Everything else reported must be a real collateral of the seeds:
    // the bit-flip's stripe parity, and the AA summary skew of the two
    // bitmap seeds.
    let flip_parity = format!("parity:rg={}:dbn={}", flip_loc.rg.0, flip_loc.dbn.0);
    let geo = fs.io().geometry();
    let stale_aa = geo.aa_of(Vbn(stale_vbn));
    let miss_aa = geo.aa_of(Vbn(miss_vbn));
    let mut allowed: BTreeSet<String> = required.iter().cloned().collect();
    allowed.insert(flip_parity);
    allowed.insert(format!("aaskew:rg={}:aa={}", stale_aa.rg.0, stale_aa.index));
    allowed.insert(format!("aaskew:rg={}:aa={}", miss_aa.rg.0, miss_aa.index));
    for k in &keys {
        assert!(allowed.contains(k), "false positive finding: {k}");
    }

    assert_all_reverified(&report);
    assert!(report.repaired() >= required.len() as u64);

    // Repairs restored every invariant: full integrity check (stamps,
    // bitmap vs trees, AA summaries, raw parity scrub) passes, and a
    // fresh scrub pass is clean.
    fs.verify_integrity().expect("post-repair integrity");
    let second = fs.scrub(&ScrubConfig::default(), &store);
    assert!(
        second.is_clean(),
        "re-scan after repair found: {:?}",
        second.findings
    );
}

#[test]
fn scrub_retries_through_transient_read_faults_without_false_positives() {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    // 2 % transient read-error rate: heavy enough to force retries,
    // far below any chance of exhausting the retry budget.
    let fs = Filesystem::with_faults(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        FaultSpec {
            seed: 0x5eed,
            read_error_ppm: 20_000,
            ..FaultSpec::default()
        },
        RetryPolicy::default(),
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fill(&fs, VolumeId(0), 4, 1);

    let store = ScrubCheckpointStore::new();
    let scfg = ScrubConfig {
        retry: RetryPolicy {
            backoff_base_ns: 1_000, // keep the test fast
            ..RetryPolicy::default()
        },
        ..ScrubConfig::default()
    };
    let retries_before = fs.io().fault_snapshot().io_retries;
    let report = fs.scrub(&scfg, &store);
    assert!(report.completed);
    assert!(
        report.is_clean(),
        "transient faults must not become findings: {:?}",
        report.findings
    );
    // Scrub reads flow through the RAID layer's RetryPolicy; a 2 %
    // fault rate over thousands of block reads must have retried.
    let retries_after = fs.io().fault_snapshot().io_retries;
    assert!(
        retries_after > retries_before,
        "2 % read-fault rate must exercise the bounded retry path"
    );
}

#[test]
fn dead_drive_mid_scrub_is_detected_rebuilt_and_reverified() {
    let fs = mk_fs(ExecMode::Inline);
    fill(&fs, VolumeId(0), 4, 1);
    fill(&fs, VolumeId(1), 3, 2);
    let refs = all_file_refs(&fs);

    // Derive the slice boundary from where the allocator actually put
    // the data: corrupt a stamp in the *last* populated unit so its
    // detection happens while the group is degraded.
    let geo = fs.io().geometry();
    let last_unit = refs
        .keys()
        .map(|v| unit_of(&fs, *v))
        .max()
        .expect("image has file blocks");
    assert!(last_unit > 0, "fill spans more than one scrub unit");
    let (&late_vbn, &late_stamp) = refs
        .iter()
        .find(|(v, _)| unit_of(&fs, **v) == last_unit)
        .expect("a referenced block in the last populated unit");
    corrupt_stamp(&fs, late_vbn, late_stamp ^ 0xF00D);

    // Scan up to (but not into) the corrupted unit, then kill a drive
    // "mid-scrub".
    let store = ScrubCheckpointStore::new();
    let first = fs.scrub(
        &ScrubConfig {
            unit_budget: Some(last_unit),
            ..ScrubConfig::default()
        },
        &store,
    );
    assert!(!first.completed);
    let dead_loc = geo.locate(Vbn(late_vbn)).unwrap();
    let group = fs.io().raid_group(dead_loc.rg);
    // Kill a *different* drive of the same group, so the corrupted
    // block stays directly readable while the group is degraded.
    let dead_in_rg = (dead_loc.drive_in_rg + 1) % group.data_drives().len() as u32;
    let dead_id = group.data_drives()[dead_in_rg as usize].id().0;
    group.data_drives()[dead_in_rg as usize].take_offline();

    // Resume: the scrubber must report the dead drive, rebuild it via
    // the degraded path, and still catch the stamp corruption.
    let second = fs.scrub(&ScrubConfig::default(), &store);
    assert_eq!(second.resumed_from, Some(last_unit as u64));
    assert!(second.completed);
    let keys = finding_keys(&second);
    assert!(
        keys.contains(&format!("dead:drive={dead_id}")),
        "dead drive unreported: {keys:?}"
    );
    assert!(
        keys.contains(&format!("stamp:vbn={late_vbn}")),
        "degraded-mode stamp detection failed: {keys:?}"
    );
    assert_all_reverified(&second);
    assert!(fs.io().offline_drives().is_empty(), "drive rebuilt online");
    assert!(
        fs.io().fault_snapshot().blocks_rebuilt > 0,
        "rebuild progress counter advanced"
    );
    fs.verify_integrity().expect("post-rebuild integrity");
}

#[test]
fn interrupted_scrub_resumes_from_checkpoint_across_crash() {
    let fs = mk_fs(ExecMode::Inline);
    fill(&fs, VolumeId(0), 4, 1);
    fill(&fs, VolumeId(1), 3, 2);
    let refs = all_file_refs(&fs);

    // Derive the slice boundary from where the allocator actually put
    // the data: one corruption in the first populated unit, one in the
    // last, with the checkpoint cursor parked between them.
    let units: BTreeSet<usize> = refs.keys().map(|v| unit_of(&fs, *v)).collect();
    let first_unit = *units.first().expect("image has file blocks");
    let last_unit = *units.last().expect("image has file blocks");
    assert!(
        last_unit > first_unit,
        "fill spans more than one scrub unit"
    );
    let (&early_vbn, &early_stamp) = refs
        .iter()
        .find(|(v, _)| unit_of(&fs, **v) == first_unit)
        .expect("a referenced block in the first populated unit");
    let (&late_vbn, &late_stamp) = refs
        .iter()
        .find(|(v, _)| unit_of(&fs, **v) == last_unit)
        .expect("a referenced block in the last populated unit");
    corrupt_stamp(&fs, early_vbn, early_stamp ^ 0xAAAA);
    corrupt_stamp(&fs, late_vbn, late_stamp ^ 0xBBBB);

    // Slice 1 stops just short of the late unit: finds and repairs the
    // early seed only.
    let store = ScrubCheckpointStore::new();
    let first = fs.scrub(
        &ScrubConfig {
            unit_budget: Some(last_unit),
            ..ScrubConfig::default()
        },
        &store,
    );
    assert!(!first.completed);
    assert_eq!(first.units_scanned, last_unit as u64);
    let first_keys = finding_keys(&first);
    assert!(first_keys.contains(&format!("stamp:vbn={early_vbn}")));
    assert!(!first_keys.contains(&format!("stamp:vbn={late_vbn}")));
    let cp = store.load().expect("cursor committed");
    assert_eq!(cp.next_unit, last_unit as u64);
    assert!(cp.repaired.contains(&format!("stamp:vbn={early_vbn}")));

    // Crash and recover; the checkpoint store survives like the
    // superblock store does (the caller holds the Arc).
    let recovered = fs.crash_and_recover(ExecMode::Inline);

    // Slice 2 resumes at the cursor: scans only the remaining units,
    // reports only the late seed — the already-repaired early finding
    // is not re-reported.
    let second = recovered.scrub(&ScrubConfig::default(), &store);
    assert_eq!(second.resumed_from, Some(last_unit as u64));
    assert!(second.completed);
    assert_eq!(second.units_scanned, second.units_total - last_unit as u64);
    let second_keys = finding_keys(&second);
    assert!(second_keys.contains(&format!("stamp:vbn={late_vbn}")));
    assert!(
        !second_keys.contains(&format!("stamp:vbn={early_vbn}")),
        "repaired finding re-reported after resume"
    );

    recovered.verify_integrity().expect("post-repair integrity");
    let fresh = recovered.scrub(&ScrubConfig::default(), &store);
    assert!(fresh.resumed_from.is_none(), "completed pass starts fresh");
    assert!(fresh.is_clean(), "third pass found: {:?}", fresh.findings);
}

#[test]
fn checkpointed_repairs_are_suppressed_not_rereported() {
    let fs = mk_fs(ExecMode::Inline);
    fill(&fs, VolumeId(0), 4, 1);
    fill(&fs, VolumeId(1), 3, 2);
    let all = all_refs(&fs);
    let aggmap = fs.allocator().infra().aggmap();

    // Seed a stale bit in some unit > 0 (bitmap repairs are in-memory
    // until the next CP persists the metafiles, so this is the class a
    // crash can revert after the checkpoint already recorded it).
    let stale_vbn = free_unreferenced_vbn(&fs, &all);
    let stale_unit = unit_of(&fs, stale_vbn);
    assert!(stale_unit > 0, "free space exists beyond unit 0");
    aggmap.active_map().reserve(stale_vbn).expect("was free");

    // Simulate the post-crash store state: the pass cursor sits before
    // the stale unit, and the repair is already on record.
    let geo = fs.io().geometry();
    let total: u64 = geo.rg_ids().map(|rg| geo.aa_count(rg) as u64).sum();
    let stale_aa = geo.aa_of(Vbn(stale_vbn));
    let mut repaired = BTreeSet::new();
    repaired.insert(format!("stalebit:vbn={stale_vbn}"));
    repaired.insert(format!("aaskew:rg={}:aa={}", stale_aa.rg.0, stale_aa.index));
    let store = ScrubCheckpointStore::new();
    store.commit(ScrubCheckpoint {
        pass: 3,
        next_unit: 1,
        total_units: total,
        repaired,
    });

    let report = fs.scrub(&ScrubConfig::default(), &store);
    assert_eq!(report.resumed_from, Some(1));
    assert!(report.completed);
    assert!(
        report.suppressed >= 1,
        "re-detected repaired finding was not suppressed"
    );
    let keys = finding_keys(&report);
    assert!(
        !keys.contains(&format!("stalebit:vbn={stale_vbn}")),
        "suppressed finding re-reported: {keys:?}"
    );
    // Suppression still repairs: the leak is gone.
    assert!(
        !aggmap.is_used(Vbn(stale_vbn)),
        "suppressed finding left unrepaired"
    );
    fs.verify_integrity().expect("post-repair integrity");
}

#[test]
fn online_scrub_against_active_cleaners_catches_all_seeds() {
    let fs = mk_fs(ExecMode::Pool(4));
    // Volume 1 is the quiescent victim; volume 0 takes foreground churn.
    fill(&fs, VolumeId(1), 4, 7);
    fill(&fs, VolumeId(0), 4, 1);
    let refs1 = image_refs(&fs, VolumeId(1));
    let all = all_refs(&fs);
    let aggmap = fs.allocator().infra().aggmap();

    // Seed three stable-under-load classes: a bit-flip on a quiescent
    // referenced block, bad parity on a fully referenced stripe, and a
    // stale bit on a free block (set bits are never handed out by the
    // allocator, so no cleaner can touch it).
    let (&flip_vbn, &flip_stamp) = refs1.iter().nth(refs1.len() / 3).expect("vol 1 blocks");
    corrupt_stamp(&fs, flip_vbn, flip_stamp ^ 0x0DD_0DD);
    let flip_loc = fs.io().geometry().locate(Vbn(flip_vbn)).unwrap();
    // The parity victim stripe must be referenced entirely by the
    // quiescent volume, so no foreground write can ever rewrite it.
    let vol1_set: BTreeSet<u64> = refs1.keys().copied().collect();
    let (parity_rg, parity_dbn) =
        referenced_stripe(&fs, &vol1_set, Some((flip_loc.rg.0, flip_loc.dbn.0)));
    corrupt_parity(&fs, parity_rg, parity_dbn);
    let stale_vbn = free_unreferenced_vbn(&fs, &all);
    aggmap.active_map().reserve(stale_vbn).expect("was free");

    // Foreground: ≥4 cleaner threads (CleanerConfig default) stay busy
    // with write + CP rounds while the scrub runs on the same pool.
    assert!(fs.config().cleaner.threads >= 4);
    let report = std::thread::scope(|s| {
        s.spawn(|| {
            for round in 0..12u64 {
                for f in 0..4u64 {
                    for fbn in 0..FBNS {
                        fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, 100 + round));
                    }
                }
                fs.run_cp();
            }
        });
        fs.scrub(&ScrubConfig::default(), &ScrubCheckpointStore::new())
    });

    assert!(report.completed);
    let keys = finding_keys(&report);
    let required = [
        format!("stamp:vbn={flip_vbn}"),
        format!("parity:rg={parity_rg}:dbn={parity_dbn}"),
        format!("stalebit:vbn={stale_vbn}"),
    ];
    for k in &required {
        assert!(
            keys.contains(k),
            "online scrub missed a seeded corruption: {k}; got {keys:?}"
        );
    }
    let geo = fs.io().geometry();
    let stale_aa = geo.aa_of(Vbn(stale_vbn));
    let mut allowed: BTreeSet<String> = required.iter().cloned().collect();
    allowed.insert(format!(
        "parity:rg={}:dbn={}",
        flip_loc.rg.0, flip_loc.dbn.0
    ));
    allowed.insert(format!("aaskew:rg={}:aa={}", stale_aa.rg.0, stale_aa.index));
    for k in &keys {
        assert!(
            allowed.contains(k),
            "online scrub confirmed a false positive: {k}"
        );
    }
    for f in &report.findings {
        assert!(
            matches!(f.state, FindingState::Reverified | FindingState::Repaired),
            "online finding unrepaired: {} ({:?})",
            f.error,
            f.state
        );
    }

    // Quiesce, then a fresh pass over the whole pool must be clean.
    fs.run_cp();
    fs.verify_integrity().expect("post-torture integrity");
    let quiet = fs.scrub(&ScrubConfig::default(), &ScrubCheckpointStore::new());
    assert!(
        quiet.is_clean(),
        "post-torture re-scan found: {:?}",
        quiet.findings
    );
}
