//! Property tests: inode COW semantics against an oracle, NVLog replay
//! ordering, and cleaner partitioning totality.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wafl::cleaner::{partition_work, CleanerConfig};
use wafl::{DirtyBuffer, FileId, Inode, NvLog, Op, Volume, VolumeId};
use wafl_blockdev::Vbn;

// ---------------------------------------------------------------------
// Inode: dirty-front/CP-snapshot model vs a plain-map oracle
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum InodeOp {
    Write { fbn: u8, stamp: u16 },
    FreezeAndApply,
}

fn inode_ops() -> impl Strategy<Value = Vec<InodeOp>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u8..32, 1u16..u16::MAX).prop_map(|(fbn, stamp)| InodeOp::Write { fbn, stamp }),
            1 => Just(InodeOp::FreezeAndApply),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inode_reads_match_oracle_through_cp_cycles(ops in inode_ops()) {
        let mut inode = Inode::new(FileId(1));
        let mut oracle: HashMap<u64, u128> = HashMap::new();
        let mut next_loc = 0u64;
        for op in ops {
            match op {
                InodeOp::Write { fbn, stamp } => {
                    inode.write(fbn as u64, stamp as u128);
                    oracle.insert(fbn as u64, stamp as u128);
                }
                InodeOp::FreezeAndApply => {
                    // Simulate a CP: freeze, assign locations, apply.
                    let frozen = inode.freeze_for_cp();
                    let cleaned: Vec<wafl::buffer::CleanedBlock> = frozen
                        .iter()
                        .map(|b| {
                            next_loc += 1;
                            wafl::buffer::CleanedBlock {
                                fbn: b.fbn,
                                vvbn: next_loc,
                                pvbn: Vbn(next_loc),
                                stamp: b.stamp,
                            }
                        })
                        .collect();
                    inode.apply_cleaned(&cleaned);
                }
            }
            for (&fbn, &expect) in &oracle {
                prop_assert_eq!(inode.read(fbn), Some(expect));
            }
            for fbn in 0..32u64 {
                if !oracle.contains_key(&fbn) {
                    prop_assert_eq!(inode.read(fbn), None, "hole stays a hole");
                }
            }
        }
    }

    #[test]
    fn frozen_buffers_capture_each_block_once(
        writes in prop::collection::vec((0u8..16, 1u16..u16::MAX), 1..100),
    ) {
        let mut inode = Inode::new(FileId(1));
        for (fbn, stamp) in &writes {
            inode.write(*fbn as u64, *stamp as u128);
        }
        let frozen = inode.freeze_for_cp();
        let mut fbns: Vec<u64> = frozen.iter().map(|b| b.fbn).collect();
        fbns.sort_unstable();
        let before = fbns.len();
        fbns.dedup();
        prop_assert_eq!(fbns.len(), before, "one dirty buffer per block");
        // The frozen stamp is the last write to that block.
        for b in &frozen {
            let last = writes
                .iter()
                .rev()
                .find(|(fbn, _)| *fbn as u64 == b.fbn)
                .unwrap()
                .1;
            prop_assert_eq!(b.stamp, last as u128);
        }
    }

    #[test]
    fn truncate_matches_oracle(
        writes in prop::collection::vec((0u8..32, 1u16..u16::MAX), 1..60),
        cut in 0u64..32,
    ) {
        let mut inode = Inode::new(FileId(1));
        let mut oracle: HashMap<u64, u128> = HashMap::new();
        for (fbn, stamp) in writes {
            inode.write(fbn as u64, stamp as u128);
            oracle.insert(fbn as u64, stamp as u128);
        }
        inode.truncate(cut);
        oracle.retain(|&fbn, _| fbn < cut);
        for fbn in 0..32u64 {
            prop_assert_eq!(inode.read(fbn), oracle.get(&fbn).copied());
        }
    }
}

// ---------------------------------------------------------------------
// NVLog: replay order and half discipline
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nvlog_replay_preserves_arrival_order(
        fbns in prop::collection::vec(0u64..100, 1..80),
        freeze_at in 0usize..80,
        commit in prop::bool::ANY,
    ) {
        let log = NvLog::new();
        let mut expected = Vec::new();
        for (i, &fbn) in fbns.iter().enumerate() {
            if i == freeze_at {
                log.freeze();
                if commit {
                    log.commit_cp();
                    expected.clear();
                }
            }
            let op = Op::Write {
                vol: VolumeId(0),
                file: FileId(1),
                fbn,
                stamp: fbn as u128 + 1,
            };
            log.log(op);
            expected.push(op);
        }
        prop_assert_eq!(log.replay_ops(), expected);
    }
}

// ---------------------------------------------------------------------
// Cleaner partitioning: totality and bounds
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_work_is_total_and_bounded(
        sizes in prop::collection::vec(1usize..600, 1..40),
        batching in prop::bool::ANY,
        batch_max_inodes in 1usize..16,
        batch_max_buffers in 8usize..256,
        region_size in 8usize..128,
    ) {
        let cfg = CleanerConfig {
            batching,
            batch_max_inodes,
            batch_max_buffers,
            region_split_threshold: 256,
            region_size,
            ..CleanerConfig::default()
        };
        let vol = Volume::new(VolumeId(0), 0, 1 << 20);
        let frozen: Vec<(Arc<Volume>, FileId, Vec<DirtyBuffer>)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let file = FileId(i as u64);
                vol.create_file(file);
                let buffers = (0..n as u64)
                    .map(|fbn| DirtyBuffer::first_write(fbn, fbn as u128 + 1))
                    .collect();
                (Arc::clone(&vol), file, buffers)
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let items = partition_work(frozen, &cfg);
        // Totality: every buffer appears in exactly one job.
        let got: usize = items
            .iter()
            .flat_map(|i| i.jobs.iter())
            .map(|j| j.buffers.len())
            .sum();
        prop_assert_eq!(got, total);
        for item in &items {
            prop_assert!(!item.jobs.is_empty());
            if item.jobs.len() > 1 {
                prop_assert!(batching, "multi-job items only when batching");
                prop_assert!(item.jobs.len() <= batch_max_inodes);
                let bufs: usize = item.jobs.iter().map(|j| j.buffers.len()).sum();
                // The first job may alone exceed the budget; otherwise the
                // budget holds.
                prop_assert!(
                    bufs <= batch_max_buffers
                        || item.jobs[0].buffers.len() > batch_max_buffers,
                    "batch buffer budget respected"
                );
            }
            for job in &item.jobs {
                // Regions never exceed region_size for split inodes.
                if sizes[job.file.0 as usize] > 256 {
                    prop_assert!(job.buffers.len() <= region_size);
                }
            }
        }
    }
}
