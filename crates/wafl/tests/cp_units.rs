//! Focused tests for the CP-support structures: metafile locations, the
//! superblock store, and CP report semantics driven through the public
//! file-system API.

use wafl::cp::MetafileSrc;
use wafl::{
    DiskImage, ExecMode, FileId, Filesystem, FsConfig, MetafileLocs, SuperblockStore, VolumeId,
};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder, Vbn};

#[test]
fn metafile_locs_set_get_and_previous() {
    let m = MetafileLocs::new();
    assert!(m.is_empty());
    assert_eq!(m.get(MetafileSrc::Aggregate, 3), None);
    assert_eq!(m.set(MetafileSrc::Aggregate, 3, Vbn(100)), None);
    assert_eq!(
        m.set(MetafileSrc::Aggregate, 3, Vbn(200)),
        Some(Vbn(100)),
        "returns the old location for freeing"
    );
    assert_eq!(m.get(MetafileSrc::Aggregate, 3), Some(Vbn(200)));
    // Distinct sources do not collide.
    m.set(MetafileSrc::Volume(VolumeId(1)), 3, Vbn(300));
    assert_eq!(m.get(MetafileSrc::Aggregate, 3), Some(Vbn(200)));
    assert_eq!(m.len(), 2);
}

#[test]
fn metafile_locs_snapshot_restore_roundtrip() {
    let m = MetafileLocs::new();
    m.set(MetafileSrc::Aggregate, 0, Vbn(10));
    m.set(MetafileSrc::Volume(VolumeId(2)), 7, Vbn(20));
    let snap = m.snapshot();
    let r = MetafileLocs::restore(&snap);
    assert_eq!(r.get(MetafileSrc::Aggregate, 0), Some(Vbn(10)));
    assert_eq!(r.get(MetafileSrc::Volume(VolumeId(2)), 7), Some(Vbn(20)));
    assert_eq!(r.len(), 2);
}

#[test]
fn superblock_store_is_atomic_replace() {
    let sb = SuperblockStore::new();
    assert!(sb.load().is_none());
    sb.commit(DiskImage {
        cp_id: 1,
        volumes: vec![],
        metafile_locs: vec![],
    });
    assert_eq!(sb.load().unwrap().cp_id, 1);
    sb.commit(DiskImage {
        cp_id: 2,
        volumes: vec![],
        metafile_locs: vec![],
    });
    assert_eq!(sb.load().unwrap().cp_id, 2);
}

fn fs() -> Filesystem {
    Filesystem::new(
        FsConfig::default(),
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 8192)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    )
}

#[test]
fn cp_report_counts_are_consistent() {
    let f = fs();
    f.create_volume(VolumeId(0));
    for file in 0..10u64 {
        f.create_file(VolumeId(0), FileId(file));
        for fbn in 0..7 {
            f.write(VolumeId(0), FileId(file), fbn, stamp(file, fbn, 1));
        }
    }
    let r = f.run_cp();
    assert_eq!(r.cp_id, 1);
    assert_eq!(r.inodes_cleaned, 10);
    assert_eq!(r.buffers_cleaned, 70);
    assert!(r.cleaner_messages >= 1);
    assert!(r.metafile_blocks_written >= 1, "bitmap updates must flush");
    assert!(r.fixpoint_rounds >= 1);
}

#[test]
fn cp_ids_increase_monotonically() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for i in 1..=4u64 {
        f.write(VolumeId(0), FileId(1), 0, stamp(1, 0, i));
        let r = f.run_cp();
        assert_eq!(r.cp_id, i);
    }
}

#[test]
fn metafile_flush_converges_within_bound() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..500 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    let r = f.run_cp();
    assert!(
        r.fixpoint_rounds <= f.config().metafile_fixpoint_max,
        "fix-point respects the bound"
    );
    // The residual dirt dropped at the bound must stay tiny (a handful
    // of self-referential bitmap blocks).
    assert!(
        r.residual_dirty_dropped <= 4,
        "residual dirt bounded: {}",
        r.residual_dirty_dropped
    );
}

#[test]
fn superblock_image_contains_every_committed_file() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_volume(VolumeId(1));
    f.create_file(VolumeId(0), FileId(1));
    f.create_file(VolumeId(1), FileId(9));
    f.write(VolumeId(0), FileId(1), 0, 0xA);
    f.write(VolumeId(1), FileId(9), 0, 0xB);
    f.run_cp();
    // Reach the image through crash recovery (the public path).
    let r = f.crash_and_recover(ExecMode::Inline);
    assert_eq!(r.read_persisted(VolumeId(0), FileId(1), 0), Some(0xA));
    assert_eq!(r.read_persisted(VolumeId(1), FileId(9), 0), Some(0xB));
}

#[test]
fn empty_files_survive_the_image() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(5)); // never written
    f.run_cp();
    let r = f.crash_and_recover(ExecMode::Inline);
    let v = r.volume(VolumeId(0)).unwrap();
    assert!(v.has_file(FileId(5)), "created-but-empty file persists");
}

#[test]
fn cp_profile_attributes_wall_time_to_phases() {
    let f = fs();
    f.create_volume(VolumeId(0));
    for file in 0..4u64 {
        f.create_file(VolumeId(0), FileId(file));
        for fbn in 0..32 {
            f.write(VolumeId(0), FileId(file), fbn, stamp(file, fbn, 1));
        }
    }
    let r = f.run_cp();
    assert!(r.total_ns > 0, "a real CP takes measurable time");
    let attributed: u64 = r.phase_ns().iter().sum();
    assert!(attributed > 0);
    assert!(
        attributed <= r.total_ns,
        "phases nest inside the CP span: {attributed} <= {}",
        r.total_ns
    );
    assert!(
        r.phase_coverage() >= 0.95,
        "inter-phase bookkeeping must stay under 5% ({:.3})",
        r.phase_coverage()
    );
    let binding = r.binding_phase();
    assert_eq!(
        r.phase_ns()[binding],
        *r.phase_ns().iter().max().unwrap(),
        "binding phase is the arg-max"
    );
    // The profile reached the global registry.
    let reg = obs::Registry::global();
    assert!(reg.counter("cp_phase_profiled").get() >= 1);
    let name = wafl::cp::CP_PHASE_NAMES[binding];
    assert!(reg.counter(&format!("cp_phase_binding_{name}")).get() >= 1);
    assert!(reg.histogram("cp_total_ns").count() >= 1);
    for p in wafl::cp::CP_PHASE_NAMES {
        assert!(
            reg.histogram(&format!("cp_phase_{p}_ns")).count() >= 1,
            "phase {p} histogram populated"
        );
    }
}

#[test]
fn binding_phase_ties_go_to_the_earlier_phase() {
    let r = wafl::cp::CpReport {
        clean_ns: 7,
        barrier_ns: 7,
        ..Default::default()
    };
    assert_eq!(wafl::cp::CP_PHASE_NAMES[r.binding_phase()], "clean");
    assert_eq!(
        wafl::cp::CpReport::default().phase_coverage(),
        1.0,
        "an instant CP has no unattributed time"
    );
}
