//! Snapshot semantics: retained CP images share blocks with the active
//! file system, overwrites must not free snapshot-referenced blocks, and
//! snapshot deletion reclaims exactly the exclusively-owned blocks.

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn fs() -> Filesystem {
    Filesystem::new(
        FsConfig::default(),
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 16 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    )
}

#[test]
fn snapshot_preserves_old_data_across_overwrites() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..64 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    assert!(f.create_snapshot(VolumeId(0), "gen1"));
    // Overwrite everything twice.
    for generation in 2..=3u64 {
        for fbn in 0..64 {
            f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, generation));
        }
        f.run_cp();
    }
    // Active sees generation 3; the snapshot still reads generation 1
    // from the shared (never-overwritten-in-place) blocks.
    for fbn in 0..64 {
        assert_eq!(
            f.read_persisted(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 3))
        );
        assert_eq!(
            f.read_snapshot(VolumeId(0), "gen1", FileId(1), fbn),
            Some(stamp(1, fbn, 1)),
            "snapshot data intact at fbn {fbn}"
        );
    }
    f.verify_integrity().unwrap();
}

#[test]
fn snapshot_blocks_are_not_freed_by_overwrites() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..100 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.create_snapshot(VolumeId(0), "s");
    let free_before = f.allocator().infra().aggmap().free_count();
    // Overwrite all 100 blocks: new blocks allocated, old ones RETAINED
    // by the snapshot (not freed).
    for fbn in 0..100 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    f.run_cp();
    let free_after = f.allocator().infra().aggmap().free_count();
    let consumed = free_before - free_after;
    assert!(
        consumed >= 100,
        "overwrite under a snapshot must consume ~100 new blocks (old ones \
         retained): consumed {consumed}"
    );
    f.verify_integrity().unwrap();
}

#[test]
fn delete_snapshot_reclaims_exclusive_blocks_only() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..50 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.create_snapshot(VolumeId(0), "s");
    // Overwrite half: those 25 old blocks become snapshot-exclusive.
    for fbn in 0..25 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    f.run_cp();
    let free_before = f.allocator().infra().aggmap().free_count();
    let reclaimed = f.delete_snapshot(VolumeId(0), "s").unwrap();
    f.allocator().drain();
    assert_eq!(reclaimed, 25, "only the overwritten blocks were exclusive");
    let free_after = f.allocator().infra().aggmap().free_count();
    assert_eq!(free_after, free_before + 25);
    // Active data unaffected.
    assert_eq!(
        f.read_persisted(VolumeId(0), FileId(1), 0),
        Some(stamp(1, 0, 2))
    );
    assert_eq!(
        f.read_persisted(VolumeId(0), FileId(1), 40),
        Some(stamp(1, 40, 1))
    );
    f.run_cp();
    f.verify_integrity().unwrap();
}

#[test]
fn multiple_snapshots_share_blocks_safely() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    f.write(VolumeId(0), FileId(1), 0, 0xA1);
    f.create_snapshot(VolumeId(0), "s1");
    f.create_snapshot(VolumeId(0), "s2"); // same block in both
    f.write(VolumeId(0), FileId(1), 0, 0xA2);
    f.run_cp();
    // Deleting s1 must not free the block: s2 still references it.
    assert_eq!(f.delete_snapshot(VolumeId(0), "s1"), Some(0));
    assert_eq!(
        f.read_snapshot(VolumeId(0), "s2", FileId(1), 0),
        Some(0xA1),
        "s2 still reads the shared block"
    );
    // Deleting s2 reclaims it.
    assert_eq!(f.delete_snapshot(VolumeId(0), "s2"), Some(1));
    f.allocator().drain();
    f.run_cp();
    f.verify_integrity().unwrap();
}

#[test]
fn deleted_file_lives_on_in_snapshot_until_snapshot_dies() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(7));
    for fbn in 0..10 {
        f.write(VolumeId(0), FileId(7), fbn, stamp(7, fbn, 1));
    }
    f.create_snapshot(VolumeId(0), "keep");
    let free_before = f.allocator().infra().aggmap().free_count();
    assert!(f.delete_file(VolumeId(0), FileId(7)));
    f.allocator().drain();
    // Nothing freed: the snapshot holds every block.
    assert_eq!(f.allocator().infra().aggmap().free_count(), free_before);
    assert_eq!(f.read(VolumeId(0), FileId(7), 3), None, "active file gone");
    assert_eq!(
        f.read_snapshot(VolumeId(0), "keep", FileId(7), 3),
        Some(stamp(7, 3, 1)),
        "snapshot still serves the deleted file"
    );
    // Snapshot deletion finally reclaims the space.
    assert_eq!(f.delete_snapshot(VolumeId(0), "keep"), Some(10));
    f.allocator().drain();
    assert_eq!(
        f.allocator().infra().aggmap().free_count(),
        free_before + 10
    );
    f.run_cp();
    f.verify_integrity().unwrap();
}

#[test]
fn snapshots_survive_crash_recovery() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..20 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.create_snapshot(VolumeId(0), "durable");
    for fbn in 0..20 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    f.run_cp();
    let r = f.crash_and_recover(ExecMode::Inline);
    // The snapshot came back with the image…
    assert_eq!(
        r.read_snapshot(VolumeId(0), "durable", FileId(1), 5),
        Some(stamp(1, 5, 1))
    );
    // …and its blocks are protected from post-recovery allocation.
    r.create_file(VolumeId(0), FileId(2));
    for fbn in 0..200 {
        r.write(VolumeId(0), FileId(2), fbn, stamp(2, fbn, 1));
    }
    r.run_cp();
    assert_eq!(
        r.read_snapshot(VolumeId(0), "durable", FileId(1), 5),
        Some(stamp(1, 5, 1)),
        "snapshot blocks never clobbered after recovery"
    );
    r.verify_integrity().unwrap();
}

#[test]
fn duplicate_snapshot_names_rejected() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    f.write(VolumeId(0), FileId(1), 0, 1);
    assert!(f.create_snapshot(VolumeId(0), "x"));
    assert!(!f.create_snapshot(VolumeId(0), "x"));
    assert!(f.delete_snapshot(VolumeId(0), "missing").is_none());
}

#[test]
fn truncate_under_snapshot_retains_blocks() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..30 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.create_snapshot(VolumeId(0), "s");
    let free_before = f.allocator().infra().aggmap().free_count();
    f.truncate(VolumeId(0), FileId(1), 10);
    f.allocator().drain();
    assert_eq!(
        f.allocator().infra().aggmap().free_count(),
        free_before,
        "truncated blocks belong to the snapshot, not the free pool"
    );
    assert_eq!(
        f.read_snapshot(VolumeId(0), "s", FileId(1), 25),
        Some(stamp(1, 25, 1))
    );
    assert_eq!(f.delete_snapshot(VolumeId(0), "s"), Some(20));
    f.run_cp();
    f.verify_integrity().unwrap();
}
