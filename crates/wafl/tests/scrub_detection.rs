//! Detection-power property test for the online scrubber.
//!
//! For every corruption class the scrubber claims to detect — media
//! bit-flips, stale and missing active-bitmap bits, AA refcount skew,
//! bad parity — seed one instance with randomized placement and payload
//! and assert the scrub (a) always reports it, (b) reports nothing
//! outside the seeded fault and its physically entailed collaterals
//! (a flipped data block also breaks its stripe's parity; a bitmap edit
//! also skews its AA's counter), and (c) leaves the aggregate clean on
//! a re-scan. A second property asserts zero false positives on clean
//! images across randomized fill shapes.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use wafl::scrub::{FindingState, ScrubCheckpointStore, ScrubConfig};
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, BlockStamp, Dbn, DriveKind, GeometryBuilder, Vbn};

const FBNS: u64 = 48;

/// Two RAID groups of (3 data + 1 parity) × 1024 blocks, 64-stripe AAs.
fn mk_fs() -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs
}

fn fill(fs: &Filesystem, files: u64, fbns: u64) {
    for f in 0..files {
        fs.create_file(VolumeId(0), FileId(f));
        for fbn in 0..fbns {
            fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, 1));
        }
    }
    fs.run_cp();
}

/// vbn → expected stamp for every committed file block.
fn file_refs(fs: &Filesystem) -> BTreeMap<u64, BlockStamp> {
    let img = fs.committed_image().expect("at least one CP committed");
    let mut refs = BTreeMap::new();
    for vi in &img.volumes {
        for (_f, blocks) in &vi.files {
            for (_fbn, ptr) in blocks {
                refs.insert(ptr.pvbn.0, ptr.stamp);
            }
        }
    }
    refs
}

/// All referenced vbns, including metafile homes.
fn all_refs(fs: &Filesystem) -> BTreeSet<u64> {
    let img = fs.committed_image().expect("at least one CP committed");
    let mut refs: BTreeSet<u64> = file_refs(fs).into_keys().collect();
    for ((_src, _blk), vbn) in &img.metafile_locs {
        refs.insert(vbn.0);
    }
    refs
}

/// The parity-mismatch key for the stripe holding `vbn`.
fn stripe_parity_key(fs: &Filesystem, vbn: u64) -> String {
    let loc = fs.io().geometry().locate(Vbn(vbn)).expect("valid vbn");
    format!("parity:rg={}:dbn={}", loc.rg.0, loc.dbn.0)
}

/// The AA-skew key for the allocation area holding `vbn`.
fn aa_skew_key(fs: &Filesystem, vbn: u64) -> String {
    let aa = fs.io().geometry().aa_of(Vbn(vbn));
    format!("aaskew:rg={}:aa={}", aa.rg.0, aa.index)
}

/// One seeded fault: the class plus randomized placement / payload.
#[derive(Debug, Clone, Copy)]
enum Seed {
    /// XOR a referenced block's media stamp.
    BitFlip { pick: usize, mask: u128 },
    /// Mark a free block used behind the allocator's back.
    StaleBit { pick: usize },
    /// Mark a referenced block free behind the allocator's back.
    MissingBit { pick: usize },
    /// XOR the parity block of a fully referenced stripe.
    BadParity { mask: u128 },
    /// Inflate an AA's tracked free count (refcount skew).
    RefcountSkew { pick: usize, delta: u64 },
}

fn seeds() -> impl Strategy<Value = Seed> {
    prop_oneof![
        (0usize..1 << 20, 1u128..u128::MAX).prop_map(|(pick, mask)| Seed::BitFlip { pick, mask }),
        (0usize..1 << 20).prop_map(|pick| Seed::StaleBit { pick }),
        (0usize..1 << 20).prop_map(|pick| Seed::MissingBit { pick }),
        (1u128..u128::MAX).prop_map(|mask| Seed::BadParity { mask }),
        (0usize..1 << 20, 1u64..4).prop_map(|(pick, delta)| Seed::RefcountSkew { pick, delta }),
    ]
}

/// Plant `seed` and return `(required_key, allowed_keys)`: the finding
/// the scrub MUST report, and the full set it MAY report (the required
/// key plus physically entailed collateral findings).
fn plant(fs: &Filesystem, seed: Seed) -> (String, BTreeSet<String>) {
    let geo = fs.io().geometry();
    let refs = file_refs(fs);
    let aggmap = fs.allocator().infra().aggmap();
    match seed {
        Seed::BitFlip { pick, mask } => {
            let (&vbn, &good) = refs.iter().nth(pick % refs.len()).unwrap();
            let loc = geo.locate(Vbn(vbn)).unwrap();
            let group = fs.io().raid_group(loc.rg);
            group.data_drives()[loc.drive_in_rg as usize].repair_write(loc.dbn, &[good ^ mask]);
            let key = format!("stamp:vbn={vbn}");
            // A flipped data block also breaks its stripe's parity.
            let allowed = BTreeSet::from([key.clone(), stripe_parity_key(fs, vbn)]);
            (key, allowed)
        }
        Seed::StaleBit { pick } => {
            let all = all_refs(fs);
            let free: Vec<u64> = (0..geo.total_vbns())
                .rev()
                .filter(|v| !all.contains(v) && !aggmap.is_used(Vbn(*v)))
                .take(256)
                .collect();
            let vbn = free[pick % free.len()];
            aggmap.active_map().reserve(vbn).expect("was free");
            let key = format!("stalebit:vbn={vbn}");
            // A raw bitmap edit bypasses the AA counters: skew entailed.
            let allowed = BTreeSet::from([key.clone(), aa_skew_key(fs, vbn)]);
            (key, allowed)
        }
        Seed::MissingBit { pick } => {
            let (&vbn, _) = refs.iter().nth(pick % refs.len()).unwrap();
            aggmap.active_map().free(vbn).expect("was used");
            let key = format!("missbit:vbn={vbn}");
            let allowed = BTreeSet::from([key.clone(), aa_skew_key(fs, vbn)]);
            (key, allowed)
        }
        Seed::BadParity { mask } => {
            // Find a stripe whose every data member is referenced, so the
            // parity seed cannot be clobbered by a later full-stripe write.
            let all = all_refs(fs);
            let (rg, dbn) = 'found: {
                for rg in geo.rg_ids() {
                    let group = fs.io().raid_group(rg);
                    let drives = group.data_drives().len() as u32;
                    'dbn: for dbn in 0..group.geometry().blocks_per_drive {
                        for d in 0..drives {
                            if !all.contains(&geo.vbn_at(rg, d, Dbn(dbn)).0) {
                                continue 'dbn;
                            }
                        }
                        break 'found (rg, dbn);
                    }
                }
                panic!("no fully referenced stripe");
            };
            let group = fs.io().raid_group(rg);
            let cur = group.parity_drives()[0].peek(Dbn(dbn));
            group.parity_drives()[0].repair_write(Dbn(dbn), &[cur ^ mask]);
            let key = format!("parity:rg={}:dbn={dbn}", rg.0);
            (key.clone(), BTreeSet::from([key]))
        }
        Seed::RefcountSkew { pick, delta } => {
            let aas: Vec<wafl_blockdev::AaId> = geo
                .rg_ids()
                .flat_map(|rg| {
                    (0..geo.aa_count(rg)).map(move |i| wafl_blockdev::AaId { rg, index: i })
                })
                .collect();
            let aa = aas[pick % aas.len()];
            // on_release only inflates the tracked count: safe for any AA.
            aggmap.aa_stats().on_release(aa, delta);
            let key = format!("aaskew:rg={}:aa={}", aa.rg.0, aa.index);
            (key.clone(), BTreeSet::from([key]))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every seeded corruption is detected (100 % detection), nothing
    /// outside the seed and its entailed collaterals is reported (no
    /// false positives), every finding is repaired and re-verified, and
    /// a second pass comes back clean.
    #[test]
    fn every_corruption_class_is_detected_and_repaired(seed in seeds()) {
        let fs = mk_fs();
        fill(&fs, 4, FBNS);
        let (required, allowed) = plant(&fs, seed);

        let store = ScrubCheckpointStore::new();
        let report = fs.scrub(&ScrubConfig::default(), &store);
        prop_assert!(report.completed);
        let keys: BTreeSet<String> =
            report.findings.iter().map(|f| f.error.key()).collect();
        prop_assert!(
            keys.contains(&required),
            "seed {seed:?} undetected; got {keys:?}"
        );
        for k in &keys {
            prop_assert!(
                allowed.contains(k),
                "false positive {k} for seed {seed:?} (allowed {allowed:?})"
            );
        }
        for f in &report.findings {
            prop_assert!(
                matches!(f.state, FindingState::Repaired | FindingState::Reverified),
                "finding {} not repaired: {:?}", f.error, f.state
            );
        }

        let again = fs.scrub(&ScrubConfig::default(), &store);
        prop_assert!(
            again.is_clean(),
            "re-scan after repair of {seed:?} found {:?}", again.findings
        );
        fs.verify_integrity().map_err(|e| {
            TestCaseError::fail(format!("post-repair integrity: {e}"))
        })?;
    }

    /// A clean image never produces findings, whatever its fill shape.
    #[test]
    fn clean_images_produce_zero_findings(files in 1u64..5, fbns in 8u64..64) {
        let fs = mk_fs();
        fill(&fs, files, fbns);
        let store = ScrubCheckpointStore::new();
        let report = fs.scrub(&ScrubConfig::default(), &store);
        prop_assert!(report.completed);
        prop_assert!(
            report.is_clean(),
            "clean image produced findings: {:?}", report.findings
        );
        prop_assert_eq!(report.false_alarms, 0);
    }
}
