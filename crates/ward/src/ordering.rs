//! Memory-ordering checks: the per-site justification gate (ported from
//! the Python lint) and the new workspace-wide Release/Acquire *pairing*
//! verification.
//!
//! Pairing contract (DESIGN.md §15): every atomic operation that
//! publishes with `Ordering::Release` or `Ordering::AcqRel` must carry a
//! `pairs-with: <label>` token in its attached `// ordering:` comment,
//! and somewhere in the workspace an acquire-side operation must carry
//! the same label. Labels are global; a label with endpoints on only one
//! side means a partner was deleted or weakened — exactly the silent
//! happens-before loss this check turns into a build failure.

use crate::report::Finding;
use crate::scrub::{
    attached_comment, find_word, ident_before, matching, statement_has_tag, Scrubbed,
};
use std::collections::BTreeMap;

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic-access methods whose argument list carries `Ordering` tokens.
const METHODS: [&str; 15] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "fence",
];

/// One atomic operation site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// 1-based line of the method identifier.
    pub line: usize,
    /// Method name (`store`, `fetch_add`, `fence`, …).
    pub method: String,
    /// Receiver field identifier, if recoverable (`self.head.store` → `head`).
    pub receiver: String,
    /// Orderings named in the call's argument list.
    pub orderings: Vec<String>,
    /// `pairs-with:` labels attached to the statement.
    pub labels: Vec<String>,
    /// Publishes (release side): a store/rmw/fence at Release or AcqRel,
    /// or any SeqCst non-load.
    pub rel_side: bool,
    /// Observes (acquire side): a load/rmw/fence at Acquire or AcqRel,
    /// or any SeqCst access.
    pub acq_side: bool,
    /// True when the release side comes from Release/AcqRel specifically
    /// (the tag requirement; SeqCst sites may pair but need not).
    pub must_tag: bool,
}

/// Check 1 (ported): every `Ordering::*` use carries an `// ordering:`
/// justification, attached by the statement rule.
pub fn check_justifications(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) -> usize {
    let lines = src.lines();
    let mut sites = 0;
    let mut flagged_lines = Vec::new();
    for ord in ORDERINGS {
        for pos in find_word(&src.code, ord) {
            // Require the `Ordering::` qualifier so enum defs in the mc
            // shim or a stray ident don't count.
            let pre = &src.code[..pos];
            if !pre.trim_end().ends_with("Ordering::") {
                continue;
            }
            sites += 1;
            let ln = src.line_of(pos);
            if flagged_lines.contains(&ln) {
                continue;
            }
            if !statement_has_tag(&lines, ln - 1, "ordering:") {
                flagged_lines.push(ln);
                findings.push(Finding::new(
                    "ordering",
                    rel,
                    ln,
                    format!(
                        "Ordering::{ord} without an `// ordering:` justification: {}",
                        lines[ln - 1].trim()
                    ),
                    format!("{ord}:{}", lines[ln - 1].trim()),
                ));
            }
        }
    }
    sites
}

/// Extract every atomic-operation call site in a file, with its
/// orderings, side classification, and attached `pairs-with:` labels.
pub fn atomic_sites(src: &Scrubbed) -> Vec<AtomicSite> {
    let lines = src.lines();
    let mut out = Vec::new();
    for method in METHODS {
        for pos in find_word(&src.code, method) {
            let after = pos + method.len();
            let b = src.code.as_bytes();
            let mut j = after;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            // `fetch_update` and friends may be generic-turbofished; we
            // only handle the plain-call shape (the tree has no other).
            if b.get(j) != Some(&b'(') {
                continue;
            }
            let is_fence = method == "fence";
            let mut receiver = String::new();
            if !is_fence {
                // Must be a method call: `.method(`. Walk back over `.`.
                let Some((dot_end, _)) = prev_nonspace(&src.code, pos) else {
                    continue;
                };
                if src.code.as_bytes()[dot_end] != b'.' {
                    continue; // a free fn named `load` etc. — not atomic
                }
                if let Some((_, id)) = ident_before(&src.code, dot_end) {
                    receiver = id;
                } else if src.code.as_bytes().get(dot_end.wrapping_sub(1)) == Some(&b')') {
                    // `self.threads().lock()`-style chains: name the call.
                    if let Some(open) = open_of(&src.code, dot_end - 1) {
                        if let Some((_, id)) = ident_before(&src.code, open) {
                            receiver = id;
                        }
                    }
                }
            }
            let Some(close) = matching(&src.code, j) else {
                continue;
            };
            let args = &src.code[j..close];
            let mut orderings: Vec<String> = Vec::new();
            for ord in ORDERINGS {
                if args
                    .match_indices(ord)
                    .any(|(p, _)| args[..p].trim_end().ends_with("Ordering::"))
                {
                    orderings.push(ord.to_string());
                }
            }
            if orderings.is_empty() {
                continue; // not an atomic call (Vec::swap, io load, …)
            }
            let ln = src.line_of(pos);
            let labels = pair_labels(&attached_comment(&lines, ln - 1, "pairs-with:"));
            let has = |o: &str| orderings.iter().any(|x| x == o);
            let is_load = method == "load";
            let is_store = method == "store";
            let seq = has("SeqCst");
            let rel_side = !is_load && (has("Release") || has("AcqRel") || seq);
            let acq_side = !is_store && (has("Acquire") || has("AcqRel") || seq);
            let must_tag = !is_load && (has("Release") || has("AcqRel"));
            out.push(AtomicSite {
                line: ln,
                method: method.to_string(),
                receiver,
                orderings,
                labels,
                rel_side,
                acq_side,
                must_tag,
            });
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

fn prev_nonspace(code: &str, pos: usize) -> Option<(usize, u8)> {
    let b = code.as_bytes();
    let mut j = pos;
    while j > 0 {
        j -= 1;
        if !b[j].is_ascii_whitespace() {
            return Some((j, b[j]));
        }
    }
    None
}

/// Opening `(` of the group whose `)` sits at `close`.
fn open_of(code: &str, close: usize) -> Option<usize> {
    let b = code.as_bytes();
    let mut depth = 0i64;
    let mut j = close + 1;
    while j > 0 {
        j -= 1;
        match b[j] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse `pairs-with: a, b` labels out of attached comment segments.
/// Labels are `[A-Za-z0-9_.-]+` (trailing punctuation trimmed).
pub fn pair_labels(segments: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for seg in segments {
        let mut rest = seg.as_str();
        while let Some(p) = rest.find("pairs-with:") {
            rest = &rest[p + "pairs-with:".len()..];
            loop {
                let trimmed = rest.trim_start();
                let end = trimmed
                    .find(|c: char| !(c.is_ascii_alphanumeric() || "_.-".contains(c)))
                    .unwrap_or(trimmed.len());
                if end == 0 {
                    break;
                }
                let label = trimmed[..end].trim_end_matches(['.', '-']);
                if !label.is_empty() {
                    out.push(label.to_string());
                }
                rest = &trimmed[end..];
                // A comma continues the label list; anything else ends it.
                if let Some(stripped) = rest.trim_start().strip_prefix(',') {
                    rest = stripped;
                } else {
                    break;
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Per-file half of the pairing check: release-side sites must be
/// tagged; tags must sit on synchronizing sites. Returns this file's
/// label → (rel, acq) contributions for the global join.
pub fn check_pairing_file(
    rel_path: &str,
    src: &Scrubbed,
    findings: &mut Vec<Finding>,
    labels: &mut BTreeMap<String, LabelSides>,
) {
    let lines = src.lines();
    for site in atomic_sites(src) {
        if site.must_tag && site.labels.is_empty() {
            findings.push(Finding::new(
                "pairing",
                rel_path,
                site.line,
                format!(
                    "{} at Ordering::{} has no `pairs-with:` label naming its \
                     acquire partner (add it to the `// ordering:` comment)",
                    site.method,
                    site.orderings.join("/"),
                ),
                format!("untagged:{}:{}", site.receiver, site.method),
            ));
        }
        if !site.labels.is_empty() && !site.rel_side && !site.acq_side {
            findings.push(Finding::new(
                "pairing",
                rel_path,
                site.line,
                format!(
                    "`pairs-with: {}` is attached to a non-synchronizing {} \
                     (orderings: {}) — the partner edge this names does not exist",
                    site.labels.join(", "),
                    site.method,
                    site.orderings.join("/"),
                ),
                format!("weak-tag:{}:{}", site.receiver, site.method),
            ));
        }
        for label in &site.labels {
            let e = labels.entry(label.clone()).or_default();
            if site.rel_side {
                e.rel.push((rel_path.to_string(), site.line));
            }
            if site.acq_side {
                e.acq.push((rel_path.to_string(), site.line));
            }
        }
    }
    // Orphan tags: a `pairs-with:` comment line that no atomic site
    // claims (e.g. the code it annotated was deleted).
    let tagged_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("pairs-with:"))
        .map(|(i, _)| i + 1)
        .collect();
    let claimed: Vec<usize> = atomic_sites(src)
        .iter()
        .filter(|s| !s.labels.is_empty())
        .flat_map(|s| claim_range(&lines, s.line))
        .collect();
    for ln in tagged_lines {
        if !claimed.contains(&ln) {
            findings.push(Finding::new(
                "pairing",
                rel_path,
                ln,
                "`pairs-with:` comment is not attached to any atomic operation \
                 (stale annotation?)",
                format!("orphan:{}", lines[ln - 1].trim()),
            ));
        }
    }
}

/// Lines whose `pairs-with:` comments a site on `line` could claim: the
/// attachment region (site line and up to SCAN_LIMIT lines above).
fn claim_range(lines: &[&str], line: usize) -> Vec<usize> {
    let lo = line.saturating_sub(21).max(1);
    (lo..=line.min(lines.len())).collect()
}

/// Endpoints contributed to one label.
#[derive(Debug, Default, Clone)]
pub struct LabelSides {
    /// Release-side (publishing) sites.
    pub rel: Vec<(String, usize)>,
    /// Acquire-side (observing) sites.
    pub acq: Vec<(String, usize)>,
}

/// Global half of the pairing check: every label needs both sides.
pub fn check_pairing_global(labels: &BTreeMap<String, LabelSides>, findings: &mut Vec<Finding>) {
    for (label, sides) in labels {
        if sides.rel.is_empty() {
            let (f, l) = sides.acq.first().cloned().unwrap_or_default();
            findings.push(Finding::new(
                "pairing",
                f,
                l,
                format!(
                    "label `{label}` has acquire-side sites but no release-side \
                     partner — the publishing store was deleted or weakened"
                ),
                format!("dangling-rel:{label}"),
            ));
        }
        if sides.acq.is_empty() {
            let (f, l) = sides.rel.first().cloned().unwrap_or_default();
            findings.push(Finding::new(
                "pairing",
                f,
                l,
                format!(
                    "label `{label}` has release-side sites but no acquire-side \
                     partner — the observing load was deleted or weakened"
                ),
                format!("dangling-acq:{label}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(textual: &str) -> (Vec<Finding>, BTreeMap<String, LabelSides>) {
        let src = Scrubbed::new(textual);
        let mut findings = Vec::new();
        let mut labels = BTreeMap::new();
        check_pairing_file("t.rs", &src, &mut findings, &mut labels);
        (findings, labels)
    }

    #[test]
    fn tagged_pair_is_clean() {
        let (f, labels) = scan(
            "fn a(x: &AtomicBool) {\n\
             // ordering: Release publish; pairs-with: t.flag.\n\
             x.store(true, Ordering::Release);\n\
             // ordering: Acquire observe; pairs-with: t.flag.\n\
             let _ = x.load(Ordering::Acquire);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let mut out = Vec::new();
        check_pairing_global(&labels, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn untagged_release_store_is_flagged() {
        let (f, _) = scan(
            "fn a(x: &AtomicBool) {\n\
             // ordering: Release publish.\n\
             x.store(true, Ordering::Release);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("pairs-with"));
    }

    #[test]
    fn dangling_label_is_flagged() {
        let (f, labels) = scan(
            "fn a(x: &AtomicBool) {\n\
             // ordering: Release publish; pairs-with: t.flag.\n\
             x.store(true, Ordering::Release);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let mut out = Vec::new();
        check_pairing_global(&labels, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("acquire-side"));
    }

    #[test]
    fn weakened_partner_breaks_the_label() {
        // The load was weakened to Relaxed: its tag no longer counts as
        // an acquire endpoint AND the tag itself is flagged.
        let (f, labels) = scan(
            "fn a(x: &AtomicBool) {\n\
             // ordering: Release publish; pairs-with: t.flag.\n\
             x.store(true, Ordering::Release);\n\
             // ordering: was Acquire; pairs-with: t.flag.\n\
             let _ = x.load(Ordering::Relaxed);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let mut out = Vec::new();
        check_pairing_global(&labels, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn label_lists_parse() {
        assert_eq!(
            pair_labels(&["// ordering: x; pairs-with: a.b, c-d.".to_string()]),
            vec!["a.b".to_string(), "c-d".to_string()]
        );
    }

    #[test]
    fn seqcst_site_may_close_a_pair_without_tagging_requirement() {
        let (f, labels) = scan(
            "fn a(x: &AtomicU64) {\n\
             // ordering: SeqCst epoch protocol; pairs-with: t.epoch.\n\
             x.fetch_add(1, Ordering::SeqCst);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let mut out = Vec::new();
        check_pairing_global(&labels, &mut out);
        assert!(out.is_empty(), "{out:?}"); // SeqCst RMW is both sides
    }

    #[test]
    fn justification_check_fires() {
        let src = Scrubbed::new("fn f(x: &AtomicU64) {\n    x.store(1, Ordering::Relaxed);\n}\n");
        let mut f = Vec::new();
        let n = check_justifications("t.rs", &src, &mut f);
        assert_eq!(n, 1);
        assert_eq!(f.len(), 1);
    }
}
