//! Source scrubbing: a small Rust lexer that blanks comments and
//! string/char-literal *contents* while preserving byte offsets, so every
//! downstream check can scan for tokens without tripping over `"unsafe"`
//! inside a string or `Ordering::Release` inside a doc comment.
//!
//! Unlike the regex lint this replaces, the scrubber understands nested
//! block comments, raw strings (`r#"…"#`), byte strings, char literals,
//! and lifetimes, and it keeps the scrubbed buffer the same length as
//! the original, so positions and line numbers map one-to-one.

/// A source file with both the original text and the scrubbed view.
pub struct Scrubbed {
    /// Original text, untouched (comments readable — the annotation
    /// checks need them).
    pub text: String,
    /// Same length as `text`: comments and literal contents replaced by
    /// spaces (string *delimiters* are kept so statement shapes survive).
    pub code: String,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
}

#[derive(Copy, Clone, PartialEq)]
enum St {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl Scrubbed {
    /// Lex `text` into a scrubbed view.
    pub fn new(text: &str) -> Self {
        let b = text.as_bytes();
        let mut out = b.to_vec();
        let mut st = St::Normal;
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            match st {
                St::Normal => match c {
                    b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                        st = St::LineComment;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 1;
                    }
                    b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                        st = St::BlockComment(1);
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 1;
                    }
                    b'"' => st = St::Str,
                    b'r' | b'b' if !prev_is_ident(b, i) => {
                        // Possible raw/byte string prefix: r"…", r#"…"#,
                        // b"…", br#"…"#.
                        let mut j = i + 1;
                        if c == b'b' && j < b.len() && b[j] == b'r' {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' && (c != b'b' || j > i + 1 || hashes > 0) {
                            st = St::RawStr(hashes);
                            i = j; // leave prefix + opening quote visible
                        } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
                            st = St::Str;
                            i += 1;
                        }
                    }
                    b'\'' => {
                        // Char literal or lifetime. `'\…'` and `'x'` are
                        // literals; `'ident` (no closing quote) is a
                        // lifetime and is left alone.
                        if i + 1 < b.len() && b[i + 1] == b'\\' {
                            st = St::Char;
                        } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                            out[i + 1] = b' ';
                            i += 2; // skip over `x'`
                        }
                    }
                    _ => {}
                },
                St::LineComment => {
                    if c == b'\n' {
                        st = St::Normal;
                    } else {
                        out[i] = b' ';
                    }
                }
                St::BlockComment(d) => {
                    if c == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 1;
                        st = if d == 1 {
                            St::Normal
                        } else {
                            St::BlockComment(d - 1)
                        };
                    } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 1;
                        st = St::BlockComment(d + 1);
                    } else if c != b'\n' {
                        out[i] = b' ';
                    }
                }
                St::Str => {
                    if c == b'\\' && i + 1 < b.len() {
                        out[i] = b' ';
                        if b[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 1;
                    } else if c == b'"' {
                        st = St::Normal;
                    } else if c != b'\n' {
                        out[i] = b' ';
                    }
                }
                St::RawStr(hashes) => {
                    if c == b'"' {
                        // Close iff followed by `hashes` hash marks.
                        let mut j = i + 1;
                        let mut h = 0u32;
                        while j < b.len() && b[j] == b'#' && h < hashes {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            i = j - 1; // keep quote + hashes visible
                            st = St::Normal;
                        } else if c != b'\n' {
                            out[i] = b' ';
                        }
                    } else if c != b'\n' {
                        out[i] = b' ';
                    }
                }
                St::Char => {
                    if c == b'\\' && i + 1 < b.len() {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 1;
                    } else if c == b'\'' {
                        st = St::Normal;
                    } else {
                        out[i] = b' ';
                    }
                }
            }
            i += 1;
        }
        let mut line_starts = vec![0usize];
        for (k, &ch) in b.iter().enumerate() {
            if ch == b'\n' {
                line_starts.push(k + 1);
            }
        }
        Scrubbed {
            text: text.to_string(),
            code: String::from_utf8_lossy(&out).into_owned(),
            line_starts,
        }
    }

    /// 1-based line number of byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Original lines (without trailing newlines).
    pub fn lines(&self) -> Vec<&str> {
        self.text.lines().collect()
    }
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// Is `c` an identifier byte?
pub fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Every occurrence of identifier `word` in `code` (whole-token matches).
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(word) {
        let at = from + off;
        let pre_ok = at == 0 || !is_ident(b[at - 1]);
        let post = at + w.len();
        let post_ok = post >= b.len() || !is_ident(b[post]);
        if pre_ok && post_ok {
            out.push(at);
        }
        from = at + w.len().max(1);
    }
    out
}

/// The identifier ending just before byte `end` (exclusive), if any.
pub fn ident_before(code: &str, end: usize) -> Option<(usize, String)> {
    let b = code.as_bytes();
    let mut j = end;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let stop = j;
    while j > 0 && is_ident(b[j - 1]) {
        j -= 1;
    }
    if j == stop {
        return None;
    }
    Some((j, code[j..stop].to_string()))
}

/// The identifier starting at or after byte `from`, skipping whitespace.
pub fn ident_after(code: &str, from: usize) -> Option<(usize, String)> {
    let b = code.as_bytes();
    let mut j = from;
    while j < b.len() && b[j].is_ascii_whitespace() {
        j += 1;
    }
    let start = j;
    while j < b.len() && is_ident(b[j]) {
        j += 1;
    }
    if j == start {
        return None;
    }
    Some((start, code[start..j].to_string()))
}

/// Byte offset of the delimiter matching the opener at `open` (one of
/// `(`, `[`, `{`), scanning the scrubbed view.
pub fn matching(code: &str, open: usize) -> Option<usize> {
    let b = code.as_bytes();
    let (o, c) = match b.get(open)? {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (k, &ch) in b.iter().enumerate().skip(open) {
        if ch == o {
            depth += 1;
        } else if ch == c {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Comment attachment: the rule the Python lint established, kept
// compatible so every existing `// ordering:` / `// SAFETY:` comment in
// the tree still attaches to its statement.
// ---------------------------------------------------------------------------

/// How far upward the statement scan may walk before giving up.
const SCAN_LIMIT: usize = 20;

fn comment_part(line: &str) -> Option<&str> {
    line.find("//").map(|i| &line[i..])
}

fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does the statement containing line `idx` (0-based) carry `tag` in an
/// attached comment? Attachment: the tag counts on the line itself, on a
/// continuation line of the same statement, or in the contiguous comment
/// block immediately above the statement.
pub fn statement_has_tag(lines: &[&str], idx: usize, tag: &str) -> bool {
    !attached_comment(lines, idx, tag).is_empty()
}

/// The attached comment text for line `idx` filtered to segments
/// containing `tag` (pass `""` to collect the whole attached block).
/// Returned segments are ordered top-down.
pub fn attached_comment(lines: &[&str], idx: usize, tag: &str) -> Vec<String> {
    let mut hits = Vec::new();
    if let Some(c) = comment_part(lines[idx]) {
        if c.contains(tag) {
            hits.push(c.to_string());
        }
    }
    let mut above = Vec::new();
    for off in 1..=SCAN_LIMIT {
        let Some(j) = idx.checked_sub(off) else { break };
        let prev = lines[j];
        if is_comment_line(prev) {
            if prev.contains(tag) {
                above.push(prev.trim_start().to_string());
            }
            continue; // comment block: keep climbing
        }
        let stripped = prev.trim();
        if stripped.is_empty() {
            break; // blank line: left the statement
        }
        if let Some(c) = comment_part(prev) {
            if c.contains(tag) {
                above.push(c.to_string());
            }
        }
        let code = code_part(prev).trim_end();
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            break; // previous statement: stop
        }
        // Continuation line (ends with ',', '(', operator, …): keep going.
    }
    above.reverse();
    above.append(&mut hits);
    above
}

/// Full comment block attached to line `idx`, starting at the segment
/// that contains `tag` and continuing through the rest of that comment
/// run (the fix for the audit generator's first-line-only truncation:
/// a multi-line `// SAFETY: …` argument is captured whole).
pub fn attached_block_from_tag(lines: &[&str], idx: usize, tag: &str) -> Option<String> {
    // Same-line comment: take the rest of the line from the tag.
    if let Some(c) = comment_part(lines[idx]) {
        if let Some(p) = c.find(tag) {
            return Some(clean_comment(&c[p + tag.len()..]));
        }
    }
    // Upward scan to find the tagged segment, then read downward through
    // the contiguous comment run it opens.
    for off in 1..=SCAN_LIMIT {
        let j = idx.checked_sub(off)?;
        let prev = lines[j];
        let is_comment = is_comment_line(prev);
        if let Some(c) = comment_part(prev) {
            if let Some(p) = c.find(tag) {
                let mut parts = vec![clean_comment(&c[p + tag.len()..])];
                for cont in lines.iter().take(idx).skip(j + 1) {
                    if !is_comment_line(cont) {
                        break;
                    }
                    parts.push(clean_comment(comment_part(cont).unwrap_or("")));
                }
                let joined = parts.join(" ");
                return Some(joined.split_whitespace().collect::<Vec<_>>().join(" "));
            }
        }
        if is_comment {
            continue;
        }
        let stripped = prev.trim();
        if stripped.is_empty() {
            return None;
        }
        let code = code_part(prev).trim_end();
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return None;
        }
    }
    None
}

fn clean_comment(s: &str) -> String {
    s.trim_start_matches('/').trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let s = Scrubbed::new("let x = \"unsafe // not\"; // unsafe\nlet y = 1;");
        assert!(!s.code.contains("unsafe"));
        assert!(s.code.contains("let x = \""));
        assert_eq!(s.code.len(), s.text.len());
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let s = Scrubbed::new("let r = r#\"Ordering::Release\"#; let c = '}'; let l: &'a u8 = x;");
        assert!(!s.code.contains("Ordering"));
        assert!(!s.code.contains('}'));
        assert!(s.code.contains("&'a u8"));
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let s = Scrubbed::new("/* a /* b */ still comment */ fn f() {}");
        assert!(!s.code.contains("still"));
        assert!(s.code.contains("fn f"));
    }

    #[test]
    fn full_block_capture() {
        let lines = vec![
            "// SAFETY: the pointer is valid until the",
            "// epoch advances twice, by the grace rule.",
            "unsafe { work() };",
        ];
        let got = attached_block_from_tag(&lines, 2, "SAFETY:").unwrap();
        assert_eq!(
            got,
            "the pointer is valid until the epoch advances twice, by the grace rule."
        );
    }

    #[test]
    fn matching_brackets() {
        let code = "f(a, (b), c) d";
        assert_eq!(matching(code, 1), Some(11));
    }
}
