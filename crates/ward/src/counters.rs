//! Counter-plumbing completeness: every counter declared in
//! `alloc_counters!` and every `FaultSnapshot` field must reach the
//! reporting surfaces — `StatsSnapshot`/`named()` (macro legs),
//! `CleanerPool::metrics_text`, and for the DES mirror every integer
//! field of `SimResult` must be listed in `named_counters` (which
//! `SimResult::metrics_text` must import). The per-crate serde-walk
//! tests check this at run time; ward makes it a build-time gate and,
//! crucially, checks it *across* crates.

use crate::report::Finding;
use crate::scrub::{find_word, matching, Scrubbed};

/// The four sources the check reads (paths fixed in the workspace scan,
/// parameterized here so fixtures can exercise the detection power).
pub struct CounterSources<'a> {
    /// `crates/alligator/src/stats.rs`
    pub stats: &'a Scrubbed,
    /// `crates/simsrv/src/engine.rs`
    pub engine: &'a Scrubbed,
    /// `crates/wafl/src/cleaner.rs`
    pub cleaner: &'a Scrubbed,
    /// `crates/blockdev/src/io.rs`
    pub io: &'a Scrubbed,
}

/// Paths used in findings (mirror the real tree even for fixtures).
pub const STATS_PATH: &str = "crates/alligator/src/stats.rs";
const ENGINE_PATH: &str = "crates/simsrv/src/engine.rs";
const CLEANER_PATH: &str = "crates/wafl/src/cleaner.rs";
const IO_PATH: &str = "crates/blockdev/src/io.rs";

/// Run the completeness check. Returns the number of counters traced.
pub fn check_counters(srcs: &CounterSources<'_>, findings: &mut Vec<Finding>) -> usize {
    let mut traced = 0;

    // --- AllocStats counters, from the alloc_counters! invocation. ---
    let counters = macro_section_idents(&srcs.stats.code, "counters");
    let gauges = macro_section_idents(&srcs.stats.code, "gauges");
    if counters.is_empty() {
        findings.push(Finding::new(
            "counters",
            STATS_PATH,
            0,
            "could not locate the `alloc_counters! { counters { … } }` \
             declaration — the plumbing check has nothing to trace",
            "no-counters",
        ));
        return 0;
    }
    traced += counters.len() + gauges.len();

    // Macro legs: the single declaration must still expand into the
    // snapshot struct, the copy loop, and the named exporter. If the
    // macro is rewritten, each leg must keep plumbing `$cname`.
    let stats_code = &srcs.stats.code;
    for (leg, marker) in [
        ("StatsSnapshot field list", "pub struct StatsSnapshot"),
        ("snapshot() copy loop", "fn snapshot"),
        ("NAMES exporter", "NAMES"),
        ("named() exporter", "fn named"),
    ] {
        if !stats_code.contains(marker) {
            findings.push(Finding::new(
                "counters",
                STATS_PATH,
                0,
                format!(
                    "the {leg} (`{marker}`) is gone from stats.rs — a counter \
                     can now be collected without reaching the snapshot/report \
                     path"
                ),
                format!("leg:{marker}"),
            ));
        }
    }
    if stats_code.contains("macro_rules") {
        for marker in ["$cname", "stringify"] {
            if !stats_code.contains(marker) {
                findings.push(Finding::new(
                    "counters",
                    STATS_PATH,
                    0,
                    format!(
                        "alloc_counters! no longer plumbs `{marker}` through its \
                         expansion — generated legs have lost the counter list"
                    ),
                    format!("macro-leg:{marker}"),
                ));
            }
        }
    } else {
        // Hand-expanded fallback: every counter must appear by name in
        // the snapshot struct.
        for c in &counters {
            if !word_in(stats_code, c) {
                findings.push(Finding::new(
                    "counters",
                    STATS_PATH,
                    0,
                    format!("counter `{c}` does not reach StatsSnapshot"),
                    format!("snapshot:{c}"),
                ));
            }
        }
    }

    // --- CleanerPool::metrics_text must export every counter. ---
    let cleaner_body = fn_body_named(&srcs.cleaner.code, "metrics_text");
    match cleaner_body {
        Some(body) => {
            // `.named()` imports the whole StatsSnapshot at once; absent
            // that wildcard, each counter must be exported by name.
            if !body.contains(".named()") && !body.contains("named()") {
                for c in &counters {
                    if !word_in(&body, c) {
                        findings.push(Finding::new(
                            "counters",
                            CLEANER_PATH,
                            0,
                            format!(
                                "counter `{c}` is collected in AllocStats but never \
                                 reaches CleanerPool::metrics_text (no `.named()` \
                                 wildcard import and no by-name export)"
                            ),
                            format!("metrics_text:{c}"),
                        ));
                    }
                }
            }
            // FaultSnapshot fields are hand-plumbed — each must appear.
            let fault_fields = struct_fields(&srcs.io.code, "FaultSnapshot");
            if fault_fields.is_empty() {
                findings.push(Finding::new(
                    "counters",
                    IO_PATH,
                    0,
                    "could not locate `struct FaultSnapshot` fields",
                    "no-faultsnapshot",
                ));
            }
            traced += fault_fields.len();
            for f in &fault_fields {
                if !word_in(&body, f) {
                    findings.push(Finding::new(
                        "counters",
                        CLEANER_PATH,
                        0,
                        format!(
                            "FaultSnapshot field `{f}` is collected by the RAID \
                             layer but never reaches CleanerPool::metrics_text"
                        ),
                        format!("fault:{f}"),
                    ));
                }
            }
            // Gauges are levels kept on AllocStats only; metrics_text is
            // expected to surface them (as gauges) too.
            for g in &gauges {
                if !word_in(&body, g) && !word_in(&srcs.cleaner.code, g) {
                    findings.push(Finding::new(
                        "counters",
                        CLEANER_PATH,
                        0,
                        format!(
                            "gauge `{g}` is maintained on AllocStats but never \
                             surfaced by the cleaner pool's reporting"
                        ),
                        format!("gauge:{g}"),
                    ));
                }
            }
        }
        None => findings.push(Finding::new(
            "counters",
            CLEANER_PATH,
            0,
            "CleanerPool::metrics_text not found — allocator counters have \
             no pool-level reporting surface",
            "no-metrics-text",
        )),
    }

    // --- SimResult: every u64 field must be listed in named_counters,
    //     and metrics_text must import that list. ---
    let sim_fields = struct_fields_typed(&srcs.engine.code, "SimResult", "u64");
    traced += sim_fields.len();
    match fn_body_named(&srcs.engine.code, "named_counters") {
        Some(body) => {
            for f in &sim_fields {
                let self_ref = format!("self.{f}");
                if !body.contains(&self_ref) {
                    findings.push(Finding::new(
                        "counters",
                        ENGINE_PATH,
                        0,
                        format!(
                            "SimResult counter `{f}` is missing from \
                             named_counters() — the DES run collects it but no \
                             report will ever show it"
                        ),
                        format!("named_counters:{f}"),
                    ));
                }
            }
        }
        None => findings.push(Finding::new(
            "counters",
            ENGINE_PATH,
            0,
            "SimResult::named_counters not found",
            "no-named-counters",
        )),
    }
    if let Some(body) = fn_body_named_in_impl(&srcs.engine.code, "metrics_text") {
        if !body.contains("named_counters") {
            findings.push(Finding::new(
                "counters",
                ENGINE_PATH,
                0,
                "SimResult::metrics_text no longer imports named_counters() — \
                 counters and the text export can drift apart",
                "metrics-text-import",
            ));
        }
    } else {
        findings.push(Finding::new(
            "counters",
            ENGINE_PATH,
            0,
            "SimResult::metrics_text not found",
            "no-sim-metrics-text",
        ));
    }

    // --- Cross-layer naming: a SimResult counter that mirrors an
    //     AllocStats counter must use the identical name, so the two
    //     reports stay joinable. ---
    for f in &sim_fields {
        if f.starts_with("cache_") || f.starts_with("arena_") || f.starts_with("io_") {
            let known = counters.iter().chain(gauges.iter()).any(|c| c == f);
            if !known {
                findings.push(Finding::new(
                    "counters",
                    ENGINE_PATH,
                    0,
                    format!(
                        "SimResult field `{f}` looks like a DES mirror of an \
                         allocator counter but no AllocStats counter/gauge of \
                         that name exists — the mirror and the real counter \
                         have drifted apart"
                    ),
                    format!("mirror:{f}"),
                ));
            }
        }
    }
    traced
}

/// The telemetry-layer sources (ISSUE 10): the sampler/blackbox
/// self-counters and the CP critical-path profiler.
pub struct TelemetrySources<'a> {
    /// `crates/obs/src/sampler.rs`
    pub sampler: &'a Scrubbed,
    /// `crates/obs/src/blackbox.rs`
    pub blackbox: &'a Scrubbed,
    /// `crates/wafl/src/cp.rs`
    pub cp: &'a Scrubbed,
}

/// Path used in telemetry findings.
pub const SAMPLER_PATH: &str = "crates/obs/src/sampler.rs";
const CP_PATH: &str = "crates/wafl/src/cp.rs";

/// Telemetry plumbing: every counter declared in `TELEMETRY_COUNTERS`
/// must actually be maintained somewhere in the sampler/blackbox pair,
/// and every CP phase named in `CP_PHASE_NAMES` must have a
/// `<phase>_ns` report field that `phase_ns()` exports and
/// `record_profile()` publishes as a `cp_phase_*` series. Counter names
/// live inside string literals, which the scrubber blanks, so this
/// check reads the raw `.text` (same byte offsets).
pub fn check_telemetry(srcs: &TelemetrySources<'_>, findings: &mut Vec<Finding>) -> usize {
    let mut traced = 0;

    // --- telemetry_* self-counters. ---
    let names = str_array(&srcs.sampler.text, "TELEMETRY_COUNTERS");
    if names.is_empty() {
        findings.push(Finding::new(
            "counters",
            SAMPLER_PATH,
            0,
            "could not locate the `TELEMETRY_COUNTERS` declaration — the \
             telemetry plumbing check has nothing to trace",
            "no-telemetry-counters",
        ));
    }
    traced += names.len();
    for n in &names {
        // One quoted occurrence is the declaration itself; a second is
        // the maintenance site (`registry.counter("…").inc()`).
        let quoted = format!("\"{n}\"");
        let uses = srcs.sampler.text.matches(&quoted).count()
            + srcs.blackbox.text.matches(&quoted).count();
        if uses < 2 {
            findings.push(Finding::new(
                "counters",
                SAMPLER_PATH,
                0,
                format!(
                    "telemetry counter `{n}` is declared in TELEMETRY_COUNTERS \
                     but never maintained by the sampler or the blackbox — \
                     it will report 0 forever"
                ),
                format!("telemetry:{n}"),
            ));
        }
    }

    // --- CP critical-path profiler. ---
    let phases = str_array(&srcs.cp.text, "CP_PHASE_NAMES");
    if phases.is_empty() {
        findings.push(Finding::new(
            "counters",
            CP_PATH,
            0,
            "could not locate the `CP_PHASE_NAMES` declaration — the CP \
             profiler check has nothing to trace",
            "no-cp-phases",
        ));
        return traced;
    }
    traced += phases.len();
    let report_fields = struct_fields(&srcs.cp.code, "CpReport");
    let phase_ns = fn_body_named(&srcs.cp.code, "phase_ns").unwrap_or_default();
    for p in &phases {
        let field = format!("{p}_ns");
        if !report_fields.contains(&field) {
            findings.push(Finding::new(
                "counters",
                CP_PATH,
                0,
                format!(
                    "CP phase `{p}` is named in CP_PHASE_NAMES but CpReport \
                     has no `{field}` field — its wall time is never measured"
                ),
                format!("cp-phase-field:{field}"),
            ));
        }
        if !word_in(&phase_ns, &field) {
            findings.push(Finding::new(
                "counters",
                CP_PATH,
                0,
                format!(
                    "CpReport field `{field}` is not exported by phase_ns() — \
                     the profiler and binding-phase attribution will miss it"
                ),
                format!("cp-phase-export:{field}"),
            ));
        }
    }
    // record_profile must publish the histogram/counter series; its
    // body holds the names inside format strings, so slice the raw
    // text by the scrubbed body's offsets.
    match fn_span_named(&srcs.cp.code, "record_profile") {
        Some((open, close)) => {
            let body = &srcs.cp.text[open..=close];
            for marker in ["cp_phase_", "cp_phase_binding_", "cp_phase_profiled"] {
                if !body.contains(marker) {
                    findings.push(Finding::new(
                        "counters",
                        CP_PATH,
                        0,
                        format!(
                            "record_profile() no longer publishes the `{marker}*` \
                             series — the phase histograms/counters have lost \
                             their only producer"
                        ),
                        format!("cp-profile-leg:{marker}"),
                    ));
                }
            }
            if find_word(&srcs.cp.code, "record_profile").len() < 2 {
                findings.push(Finding::new(
                    "counters",
                    CP_PATH,
                    0,
                    "record_profile() is defined but never called — no CP \
                     will ever publish its critical-path profile",
                    "cp-profile-uncalled",
                ));
            }
        }
        None => findings.push(Finding::new(
            "counters",
            CP_PATH,
            0,
            "CpReport::record_profile not found — the CP profiler has no \
             publication path",
            "no-record-profile",
        )),
    }
    traced
}

/// String literals inside `<name>: [...] = [ "...", ... ]` — reads raw
/// text because the scrubber blanks literal contents.
fn str_array(text: &str, name: &str) -> Vec<String> {
    // Anchor on the `const <name>` declaration — doc comments elsewhere
    // mention the name too.
    let Some(p) = find_word(text, name)
        .into_iter()
        .find(|&p| text[..p].trim_end().ends_with("const"))
    else {
        return Vec::new();
    };
    let Some(open) = text[p..].find('[').map(|i| p + i) else {
        return Vec::new();
    };
    // The declared type may itself be an array (`[&str; 4]`): take the
    // bracket group after `=`.
    let open = match text[p..open].contains('=') {
        true => open,
        false => {
            let Some(close) = matching(text, open) else {
                return Vec::new();
            };
            let Some(next) = text[close..].find('[').map(|i| close + i) else {
                return Vec::new();
            };
            next
        }
    };
    let Some(close) = matching(text, open) else {
        return Vec::new();
    };
    let body = &text[open + 1..close];
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(q0) = rest.find('"') {
        let Some(q1) = rest[q0 + 1..].find('"').map(|i| q0 + 1 + i) else {
            break;
        };
        out.push(rest[q0 + 1..q1].to_string());
        rest = &rest[q1 + 1..];
    }
    out
}

/// Byte span `(open, close)` of the first `fn <name>` body in `code`.
fn fn_span_named(code: &str, name: &str) -> Option<(usize, usize)> {
    for p in find_word(code, name) {
        let pre = code[..p].trim_end();
        if !pre.ends_with("fn") {
            continue;
        }
        let open = code[p..].find('{').map(|i| p + i)?;
        let close = matching(code, open)?;
        return Some((open, close));
    }
    None
}

/// Identifiers declared in `alloc_counters! { <section> { … } }`.
fn macro_section_idents(code: &str, section: &str) -> Vec<String> {
    let Some(mac) = code.find("alloc_counters!") else {
        return Vec::new();
    };
    let Some(open) = code[mac..].find('{').map(|i| mac + i) else {
        return Vec::new();
    };
    let Some(close) = matching(code, open) else {
        return Vec::new();
    };
    let body = &code[open..=close];
    let Some(sec) = find_word(body, section)
        .into_iter()
        .find(|&p| body[p + section.len()..].trim_start().starts_with('{'))
    else {
        return Vec::new();
    };
    let Some(sopen) = body[sec..].find('{').map(|i| sec + i) else {
        return Vec::new();
    };
    let Some(sclose) = matching(body, sopen) else {
        return Vec::new();
    };
    body[sopen + 1..sclose]
        .split(',')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .map(|s| s.to_string())
        .collect()
}

/// Field names of `struct <name> { … }`.
fn struct_fields(code: &str, name: &str) -> Vec<String> {
    struct_fields_inner(code, name, None)
}

/// Field names of `struct <name>` whose type starts with `ty`.
fn struct_fields_typed(code: &str, name: &str, ty: &str) -> Vec<String> {
    struct_fields_inner(code, name, Some(ty))
}

fn struct_fields_inner(code: &str, name: &str, ty: Option<&str>) -> Vec<String> {
    let mut out = Vec::new();
    for p in find_word(code, name) {
        let pre = code[..p].trim_end();
        if !pre.ends_with("struct") {
            continue;
        }
        let Some(open) = code[p..].find('{').map(|i| p + i) else {
            continue;
        };
        let Some(close) = matching(code, open) else {
            continue;
        };
        let body = &code[open + 1..close];
        // Split on commas at depth 0 (field types may nest generics).
        let mut depth = 0i64;
        let mut start = 0usize;
        let bytes = body.as_bytes();
        for (i, &c) in bytes.iter().enumerate().chain([(body.len(), &b',')]) {
            match c {
                b'<' | b'(' | b'[' | b'{' => depth += 1,
                b'>' | b')' | b']' | b'}' => depth -= 1,
                b',' if depth <= 0 => {
                    let field = body[start..i.min(body.len())].trim();
                    start = i + 1;
                    let Some((fname, fty)) = field.rsplit_once(':') else {
                        continue;
                    };
                    let fname = fname
                        .trim()
                        .trim_start_matches("pub")
                        .trim()
                        .trim_start_matches("(crate)")
                        .trim();
                    if fname.is_empty()
                        || !fname.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    {
                        continue;
                    }
                    if let Some(want) = ty {
                        if fty.trim() != want {
                            continue;
                        }
                    }
                    out.push(fname.to_string());
                }
                _ => {}
            }
        }
        break;
    }
    out
}

/// Body of the first `fn <name>` in `code`.
fn fn_body_named(code: &str, name: &str) -> Option<String> {
    for p in find_word(code, name) {
        let pre = code[..p].trim_end();
        if !pre.ends_with("fn") {
            continue;
        }
        let open = code[p..].find('{').map(|i| p + i)?;
        let close = matching(code, open)?;
        return Some(code[open..=close].to_string());
    }
    None
}

fn fn_body_named_in_impl(code: &str, name: &str) -> Option<String> {
    fn_body_named(code, name)
}

fn word_in(haystack: &str, word: &str) -> bool {
    !find_word(haystack, word).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: &str = "macro_rules! alloc_counters { (..) => { \
        pub struct StatsSnapshot { } \
        impl AllocStats { pub fn snapshot(&self) {} } \
        impl StatsSnapshot { pub const NAMES: u8 = 0; pub fn named(&self) {} } } } \
        alloc_counters! { counters { gets, cache_get_fast, } gauges { io_inflight, } } \
        fn plumb() { let _ = ($cname, stringify!(x)); }";
    const ENGINE: &str = "pub struct SimResult { pub ops: u64, pub cache_get_fast: u64, } \
        impl SimResult { pub fn named_counters(&self) { (self.ops, self.cache_get_fast); } \
        pub fn metrics_text(&self) { self.named_counters(); } }";
    const CLEANER: &str =
        "impl CleanerPool { pub fn metrics_text(&self) { reg.import(self.stats().named()); \
         f.reconstructed_reads; io_inflight; } }";
    const IO: &str = "pub struct FaultSnapshot { pub reconstructed_reads: u64, }";

    fn run(stats: &str, engine: &str, cleaner: &str, io: &str) -> Vec<Finding> {
        let (s, e, c, i) = (
            Scrubbed::new(stats),
            Scrubbed::new(engine),
            Scrubbed::new(cleaner),
            Scrubbed::new(io),
        );
        let mut f = Vec::new();
        check_counters(
            &CounterSources {
                stats: &s,
                engine: &e,
                cleaner: &c,
                io: &i,
            },
            &mut f,
        );
        f
    }

    #[test]
    fn clean_plumbing_passes() {
        let f = run(STATS, ENGINE, CLEANER, IO);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unplumbed_sim_counter_is_flagged() {
        let engine = "pub struct SimResult { pub ops: u64, pub cache_get_fast: u64, } \
            impl SimResult { pub fn named_counters(&self) { (self.ops,); } \
            pub fn metrics_text(&self) { self.named_counters(); } }";
        let f = run(STATS, engine, CLEANER, IO);
        assert!(
            f.iter().any(|x| x.message.contains("cache_get_fast")),
            "{f:?}"
        );
    }

    #[test]
    fn missing_fault_field_is_flagged() {
        let cleaner = "impl CleanerPool { pub fn metrics_text(&self) { \
                       reg.import(self.stats().named()); io_inflight; } }";
        let f = run(STATS, ENGINE, cleaner, IO);
        assert!(
            f.iter().any(|x| x.message.contains("reconstructed_reads")),
            "{f:?}"
        );
    }

    #[test]
    fn drifted_mirror_is_flagged() {
        let engine = "pub struct SimResult { pub cache_get_fastest: u64, } \
            impl SimResult { pub fn named_counters(&self) { (self.cache_get_fastest,); } \
            pub fn metrics_text(&self) { self.named_counters(); } }";
        let f = run(STATS, engine, CLEANER, IO);
        assert!(f.iter().any(|x| x.key.contains("mirror")), "{f:?}");
    }

    #[test]
    fn macro_leg_removal_is_flagged() {
        let stats = STATS.replace("pub fn named(&self) {}", "");
        let f = run(&stats, ENGINE, CLEANER, IO);
        assert!(f.iter().any(|x| x.message.contains("named()")), "{f:?}");
    }

    const SAMPLER: &str = "pub const TELEMETRY_COUNTERS: [&str; 2] = \
        [\"telemetry_ticks\", \"telemetry_dumps\"]; \
        fn sample(&self) { self.registry().counter(\"telemetry_ticks\").inc(); }";
    const BLACKBOX: &str =
        "fn write_bundle(&self) { self.registry().counter(\"telemetry_dumps\").inc(); }";
    const CP: &str = "pub const CP_PHASE_NAMES: [&str; 2] = [\"freeze\", \"clean\"]; \
        pub struct CpReport { pub freeze_ns: u64, pub clean_ns: u64, } \
        impl CpReport { \
        pub fn phase_ns(&self) -> [u64; 2] { [self.freeze_ns, self.clean_ns] } \
        pub fn record_profile(&self) { \
        reg.histogram(&format!(\"cp_phase_{n}_ns\")); \
        reg.counter(&format!(\"cp_phase_binding_{n}\")); \
        reg.counter(\"cp_phase_profiled\"); } } \
        fn run_cp_inner() { report.record_profile(); }";

    fn run_telemetry(sampler: &str, blackbox: &str, cp: &str) -> Vec<Finding> {
        let (s, b, c) = (
            Scrubbed::new(sampler),
            Scrubbed::new(blackbox),
            Scrubbed::new(cp),
        );
        let mut f = Vec::new();
        check_telemetry(
            &TelemetrySources {
                sampler: &s,
                blackbox: &b,
                cp: &c,
            },
            &mut f,
        );
        f
    }

    #[test]
    fn clean_telemetry_plumbing_passes() {
        let f = run_telemetry(SAMPLER, BLACKBOX, CP);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unmaintained_telemetry_counter_is_flagged() {
        // Declared in the array, incremented nowhere.
        let blackbox = "fn write_bundle(&self) {}";
        let f = run_telemetry(SAMPLER, blackbox, CP);
        assert!(
            f.iter().any(|x| x.key == "telemetry:telemetry_dumps"),
            "{f:?}"
        );
    }

    #[test]
    fn unmeasured_cp_phase_is_flagged() {
        let cp = CP
            .replace("pub clean_ns: u64, ", "")
            .replace("[self.freeze_ns, self.clean_ns]", "[self.freeze_ns, 0]");
        let f = run_telemetry(SAMPLER, BLACKBOX, &cp);
        assert!(
            f.iter().any(|x| x.key == "cp-phase-field:clean_ns"),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.key == "cp-phase-export:clean_ns"),
            "{f:?}"
        );
    }

    #[test]
    fn uncalled_record_profile_is_flagged() {
        let cp = CP.replace("fn run_cp_inner() { report.record_profile(); }", "");
        let f = run_telemetry(SAMPLER, BLACKBOX, &cp);
        assert!(f.iter().any(|x| x.key == "cp-profile-uncalled"), "{f:?}");
    }

    #[test]
    fn lost_profile_publication_leg_is_flagged() {
        let cp = CP.replace("reg.counter(\"cp_phase_profiled\"); ", "");
        let f = run_telemetry(SAMPLER, BLACKBOX, &cp);
        assert!(
            f.iter()
                .any(|x| x.key == "cp-profile-leg:cp_phase_profiled"),
            "{f:?}"
        );
    }
}
