//! Ports of the module-specific gates the Python lint carried: arena
//! exhaustion-abort / epoch-SeqCst / layering rules and the
//! workspace-wide `IoTicket` minting rule.

use crate::report::Finding;
use crate::scrub::{find_word, matching, Scrubbed};

/// Gate: capacity exhaustion must surface as typed `ArenaFull`
/// backpressure, never as an `assert!`/`panic!` abort (the bug class the
/// bounded arena replaced). Applies to `arena.rs` and `treiber.rs`.
pub fn check_no_exhaustion_aborts(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) {
    for word in ["assert", "debug_assert", "panic", "assert_eq", "assert_ne"] {
        for pos in find_word(&src.code, word) {
            let after = pos + word.len();
            let b = src.code.as_bytes();
            if b.get(after) != Some(&b'!') {
                continue;
            }
            let Some(open) = src.code[after..].find(['(', '[']).map(|i| after + i) else {
                continue;
            };
            let Some(close) = matching(&src.code, open) else {
                continue;
            };
            // The message lives in a string literal, which the scrubbed
            // view blanks — search the original text in the same span.
            let region = &src.text[open..=close.min(src.text.len() - 1)];
            if region.to_ascii_lowercase().contains("exhaust") {
                let ln = src.line_of(pos);
                findings.push(Finding::new(
                    "arena-abort",
                    rel,
                    ln,
                    format!(
                        "capacity-exhaustion abort reintroduced — return the \
                         typed ArenaFull error instead: {}",
                        src.lines()[ln - 1].trim()
                    ),
                    format!("abort:{}", src.lines()[ln - 1].trim()),
                ));
            }
        }
    }
}

const EPOCH_FIELDS: [&str; 3] = ["epoch", "pin_state", "overflow_pins"];
const WEAK: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// Gate: the arena's epoch-protocol atomics (`epoch`, `pin_state`,
/// `overflow_pins`) are SeqCst-only — the advance/pin race is reasoned
/// in a single total order; a weakened access silently re-opens the
/// reclamation race.
pub fn check_epoch_seqcst(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) {
    let b = src.code.as_bytes();
    for field in EPOCH_FIELDS {
        for pos in find_word(&src.code, field) {
            // field . method (
            let mut j = pos + field.len();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) != Some(&b'.') {
                continue;
            }
            let Some((mstart, method)) = crate::scrub::ident_after(&src.code, j + 1) else {
                continue;
            };
            let atomicish = matches!(
                method.as_str(),
                "load" | "store" | "swap" | "compare_exchange" | "compare_exchange_weak"
            ) || method.starts_with("fetch_");
            if !atomicish {
                continue;
            }
            let mut k = mstart + method.len();
            while k < b.len() && b[k].is_ascii_whitespace() {
                k += 1;
            }
            if b.get(k) != Some(&b'(') {
                continue;
            }
            let Some(close) = matching(&src.code, k) else {
                continue;
            };
            let args = &src.code[k..close];
            for weak in WEAK {
                if args
                    .match_indices(weak)
                    .any(|(p, _)| args[..p].trim_end().ends_with("Ordering::"))
                {
                    let ln = src.line_of(pos);
                    findings.push(Finding::new(
                        "epoch-seqcst",
                        rel,
                        ln,
                        format!(
                            "`{field}` accessed with Ordering::{weak} — the epoch \
                             protocol is reasoned in a single total order and \
                             must use SeqCst exclusively"
                        ),
                        format!("weak:{field}:{method}:{weak}"),
                    ));
                }
            }
        }
    }
}

/// Gate: the arena sits *below* the cache locks — it must never reach
/// up into `lock_shard`/`lock_publish` (its limbo mutex is a leaf,
/// which is what makes calling `maintain()` under `publish`
/// deadlock-free).
pub fn check_arena_layering(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) {
    for needle in ["lock_shard", "lock_publish"] {
        if let Some(pos) = find_word(&src.code, needle).first() {
            let ln = src.line_of(*pos);
            findings.push(Finding::new(
                "arena-layering",
                rel,
                ln,
                format!(
                    "arena references the cache lock `{needle}` — the arena's \
                     limbo mutex must stay a leaf (maintain() runs under \
                     `publish`)"
                ),
                format!("layer:{needle}"),
            ));
        }
    }
}

/// Where `IoTicket(` construction is legal.
pub const TICKET_HOME: &str = "crates/blockdev/src/aio.rs";

/// Gate: completion tickets are minted only by the aio engine. A forged
/// ticket would unbalance the submitted/completed accounting `drain`
/// and the crash path rely on.
pub fn check_ticket_construction(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) {
    if rel == TICKET_HOME {
        return;
    }
    let b = src.code.as_bytes();
    for pos in find_word(&src.code, "IoTicket") {
        let mut j = pos + "IoTicket".len();
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b'(') {
            continue;
        }
        // `IoTicket` used as a tuple-struct pattern or type mention is
        // fine; a call is construction. Patterns appear after `let`/
        // `Some(`/match arms — but the engine's API never exposes the
        // payload, so any `IoTicket(` outside aio.rs is construction.
        let ln = src.line_of(pos);
        findings.push(Finding::new(
            "ticket",
            rel,
            ln,
            format!(
                "`IoTicket(` constructed outside {TICKET_HOME} — tickets are \
                 minted only by `AioEngine::submit`; a forged ticket unbalances \
                 the submitted/completed accounting"
            ),
            format!("forge:{}", src.lines()[ln - 1].trim()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::Scrubbed;

    #[test]
    fn exhaustion_abort_fires_and_backpressure_text_does_not() {
        let bad = Scrubbed::new(
            "fn mint(&self) { assert!(idx < cap, \"TreiberStack arena exhausted\"); }",
        );
        let mut f = Vec::new();
        check_no_exhaustion_aborts("arena.rs", &bad, &mut f);
        assert_eq!(f.len(), 1, "{f:?}");

        let ok = Scrubbed::new(
            "fn push(&self) { self.try_push().expect(\"arena at capacity \
             (use try_push_keyed for backpressure)\"); }",
        );
        let mut f = Vec::new();
        check_no_exhaustion_aborts("arena.rs", &ok, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn weak_epoch_access_fires_twice() {
        let src = Scrubbed::new(
            "fn pin(&self) {\n\
             let e = self.epoch.load(Ordering::Acquire);\n\
             slot.pin_state\n\
                 .compare_exchange(0, e, Ordering::SeqCst, Ordering::Acquire);\n\
             }",
        );
        let mut f = Vec::new();
        check_epoch_seqcst("arena.rs", &src, &mut f);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn seqcst_epoch_and_non_protocol_fields_pass() {
        let src = Scrubbed::new(
            "fn pin(&self) {\n\
             let e = self.epoch.load(Ordering::SeqCst);\n\
             let r = self.limbo_retire_epoch.load(Ordering::Acquire);\n\
             self.overflow_pins.fetch_add(1, Ordering::SeqCst);\n\
             }",
        );
        let mut f = Vec::new();
        check_epoch_seqcst("arena.rs", &src, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn layering_gate() {
        let bad = Scrubbed::new("fn maintain(&self) { let _g = self.cache.lock_shard(0); }");
        let mut f = Vec::new();
        check_arena_layering("arena.rs", &bad, &mut f);
        assert_eq!(f.len(), 1);
        let ok = Scrubbed::new("fn maintain(&self) { self.limbo.lock(); }");
        let mut f = Vec::new();
        check_arena_layering("arena.rs", &ok, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn ticket_gate() {
        let forged = Scrubbed::new("fn f() { let t = IoTicket(7); }");
        let mut f = Vec::new();
        check_ticket_construction("crates/wafl/src/cp.rs", &forged, &mut f);
        assert_eq!(f.len(), 1);
        let mut f = Vec::new();
        check_ticket_construction(TICKET_HOME, &forged, &mut f);
        assert!(f.is_empty());
        let mention = Scrubbed::new("fn f(t: IoTicket) -> u64 { t.id() }");
        let mut f = Vec::new();
        check_ticket_construction("crates/wafl/src/cp.rs", &mention, &mut f);
        assert!(f.is_empty());
    }
}
