//! `ward` — the workspace concurrency analyzer.
//!
//! A dependency-free static-analysis pass over the whole Rust tree
//! (token-level lexer, no `syn`), run from CI as
//! `cargo run -p ward -- --check`. It replaces and extends the old
//! `scripts/lint_concurrency.py` regex gates with *cross-site* checks:
//!
//! 1. **Lock-order graph** ([`locks`]): every `Mutex`/`RwLock`
//!    declaration carries `// lock-rank: <name> <n>`; nested
//!    acquisitions must strictly ascend in rank, workspace-wide.
//! 2. **Release/Acquire pairing** ([`ordering`]): every
//!    `Ordering::Release`/`AcqRel` publish names its acquire partner via
//!    `pairs-with: <label>`; a deleted or weakened partner fails the
//!    build instead of silently dropping a happens-before edge.
//! 3. **Counter plumbing** ([`counters`]): every `AllocStats` counter
//!    and `FaultSnapshot` field must reach the reporting surfaces, and
//!    every `SimResult` integer must be listed in `named_counters`.
//! 4. **Ported gates** ([`gates`], [`unsafety`]): ordering
//!    justifications, the unsafe audit (full-comment capture), the
//!    arena exhaustion/epoch/layering rules, cache ascending-shard
//!    order, and `IoTicket` minting.
//!
//! Findings carry stable content-derived IDs; `baseline.txt` suppresses
//! known accepted findings; `results/ward.json` is the machine-readable
//! report (`wafl.ward.v1`). See DESIGN.md §15 for the annotation
//! contract.

#![warn(missing_docs)]

pub mod counters;
pub mod gates;
pub mod locks;
pub mod ordering;
pub mod report;
pub mod scrub;
pub mod selftest;
pub mod unsafety;

pub use unsafety::render_audit;

use crate::counters::{CounterSources, TelemetrySources};
use crate::locks::{LockEdge, LockRegistry};
use crate::report::{Finding, ScanStats};
use crate::scrub::Scrubbed;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Path components excluded from every scan.
const EXCLUDE: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Everything one full scan produces.
pub struct Scan {
    /// All findings (unsuppressed; baseline application happens later).
    pub findings: Vec<Finding>,
    /// The unsafe inventory, for audit rendering.
    pub inventory: Vec<unsafety::UnsafeSite>,
    /// Observed nested-acquisition edges (the lock-order graph).
    pub edges: Vec<LockEdge>,
    /// Scan statistics for the report.
    pub stats: ScanStats,
}

/// Locate the workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// cargo, else walk up from the current directory to a `[workspace]`
/// manifest.
pub fn workspace_root() -> PathBuf {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&md);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Every Rust file under `root`, sorted, minus excluded trees.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let p = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if p.is_dir() {
                if !EXCLUDE.contains(&name.as_str()) {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Is `rel` in scope for the lock-rank graph? Library sources only —
/// the model checker defines its own `Mutex` shim (not a lock
/// instance), and test-local mutexes are single-purpose.
fn lock_rank_scope(rel: &str) -> bool {
    rel.starts_with("crates/")
        && rel.contains("/src/")
        && !rel.starts_with("crates/mc/")
        && !rel.starts_with("crates/ward/")
}

/// Run the full analyzer over the workspace at `root`.
pub fn scan_workspace(root: &Path) -> Scan {
    let files = rust_files(root);
    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    let mut stats = ScanStats {
        files: files.len(),
        ..Default::default()
    };
    let mut sources: Vec<(String, Scrubbed)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The analyzer's own sources and fixtures talk about the
        // annotation tokens constantly (doc comments, test strings) —
        // scanning them would be all self-noise.
        if rel.starts_with("crates/ward/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        sources.push((rel, Scrubbed::new(&text)));
    }

    // Pass 1: per-file checks + lock declarations.
    let mut registry = LockRegistry::default();
    let mut labels: BTreeMap<String, ordering::LabelSides> = BTreeMap::new();
    for (rel, src) in &sources {
        stats.ordering_sites += ordering::check_justifications(rel, src, &mut findings);
        ordering::check_pairing_file(rel, src, &mut findings, &mut labels);
        inventory.extend(unsafety::check_unsafe(rel, src, &mut findings));
        gates::check_ticket_construction(rel, src, &mut findings);
        if lock_rank_scope(rel) {
            let decls = locks::collect_decls(rel, src, &mut findings);
            registry.add(decls, &mut findings);
        }
    }
    stats.unsafe_sites = inventory.len();
    stats.lock_decls = registry.decls.len();
    stats.pair_labels = labels.len();
    ordering::check_pairing_global(&labels, &mut findings);

    // Pass 2: acquisition edges against the completed registry.
    let mut edges = Vec::new();
    for (rel, src) in &sources {
        if lock_rank_scope(rel) {
            edges.extend(locks::check_file_edges(rel, src, &registry, &mut findings));
        }
    }
    edges.sort();
    edges.dedup();
    stats.lock_edges = edges.len();

    // Module-specific gates.
    let by_rel = |want: &str| sources.iter().find(|(r, _)| r == want).map(|(_, s)| s);
    if let Some(src) = by_rel("crates/alligator/src/cache.rs") {
        locks::check_cache_ascending("crates/alligator/src/cache.rs", src, &mut findings);
    } else {
        findings.push(Finding::new(
            "cache-order",
            "crates/alligator/src/cache.rs",
            0,
            "cache.rs missing — lock-order check skipped",
            "missing",
        ));
    }
    for rel in [
        "crates/alligator/src/arena.rs",
        "crates/alligator/src/treiber.rs",
    ] {
        match by_rel(rel) {
            Some(src) => {
                gates::check_no_exhaustion_aborts(rel, src, &mut findings);
                if rel.ends_with("arena.rs") {
                    gates::check_epoch_seqcst(rel, src, &mut findings);
                    gates::check_arena_layering(rel, src, &mut findings);
                }
            }
            None => findings.push(Finding::new(
                "arena-abort",
                rel,
                0,
                format!("{rel} missing — arena gates skipped"),
                "missing",
            )),
        }
    }

    // Counter plumbing across the four surfaces.
    let need = [
        "crates/alligator/src/stats.rs",
        "crates/simsrv/src/engine.rs",
        "crates/wafl/src/cleaner.rs",
        "crates/blockdev/src/io.rs",
    ];
    match (
        by_rel(need[0]),
        by_rel(need[1]),
        by_rel(need[2]),
        by_rel(need[3]),
    ) {
        (Some(stats_src), Some(engine), Some(cleaner), Some(io)) => {
            stats.counters = counters::check_counters(
                &CounterSources {
                    stats: stats_src,
                    engine,
                    cleaner,
                    io,
                },
                &mut findings,
            );
        }
        _ => findings.push(Finding::new(
            "counters",
            counters::STATS_PATH,
            0,
            "one of the counter-plumbing source files is missing",
            "missing-sources",
        )),
    }

    // Telemetry plumbing: the sampler's counter roster and the CP
    // profiler's phase exports.
    match (
        by_rel("crates/obs/src/sampler.rs"),
        by_rel("crates/obs/src/blackbox.rs"),
        by_rel("crates/wafl/src/cp.rs"),
    ) {
        (Some(sampler), Some(blackbox), Some(cp)) => {
            stats.counters += counters::check_telemetry(
                &TelemetrySources {
                    sampler,
                    blackbox,
                    cp,
                },
                &mut findings,
            );
        }
        _ => findings.push(Finding::new(
            "counters",
            counters::SAMPLER_PATH,
            0,
            "one of the telemetry source files is missing",
            "missing-sources",
        )),
    }

    Scan {
        findings,
        inventory,
        edges,
        stats,
    }
}

/// Split findings into `(unsuppressed, suppressed, stale_baseline_ids)`
/// given baseline IDs.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[String],
) -> (Vec<Finding>, Vec<(String, Finding)>, Vec<String>) {
    let mut unsuppressed = Vec::new();
    let mut suppressed = Vec::new();
    let mut used: Vec<&String> = Vec::new();
    for f in findings {
        let id = f.id();
        if let Some(b) = baseline.iter().find(|b| **b == id) {
            used.push(b);
            suppressed.push((id, f));
        } else {
            unsuppressed.push(f);
        }
    }
    let stale = baseline
        .iter()
        .filter(|b| !used.contains(b))
        .cloned()
        .collect();
    (unsuppressed, suppressed, stale)
}
