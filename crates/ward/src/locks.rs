//! Lock-order graph: every `Mutex`/`RwLock` declaration carries a
//! `// lock-rank: <name> <n> [via <alias>,…]` annotation; ward extracts
//! nested-acquisition edges per function and fails on any rank
//! inversion, unranked declaration, or duplicate rank name.
//!
//! The rule: while a guard of rank *r* is live, only locks of rank
//! strictly greater than *r* may be acquired. Re-acquiring the *same*
//! named lock (the cache's per-shard mutexes) is allowed at equal rank —
//! the ascending-index discipline for that case is enforced separately
//! by the ported cache gate (`check_cache_ascending`).
//!
//! The analysis is intra-procedural and lexical: a guard bound with
//! `let g = …lock()` lives to the end of its block (or an explicit
//! `drop(g)`); an unbound `…lock()` temporary dies at its statement's
//! `;`. Cross-function holds are covered by the layering gates (e.g.
//! the arena-below-cache rule), not the graph.

use crate::report::Finding;
use crate::scrub::{
    attached_comment, find_word, ident_after, ident_before, is_ident, matching, Scrubbed,
};

/// One ranked lock declaration.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Global rank name (`cache.publish`).
    pub name: String,
    /// Rank number; smaller acquires first.
    pub rank: u32,
    /// Field/static identifier at the declaration.
    pub field: String,
    /// Extra acquisition identifiers that resolve to this lock
    /// (wrapper methods like `lock_shard`).
    pub aliases: Vec<String>,
    /// Repo-relative declaring file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// A nested-acquisition edge: `held` was live when `acquired` was taken.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Rank name of the lock already held.
    pub held: String,
    /// Rank name of the lock acquired under it.
    pub acquired: String,
    /// Where the nested acquisition happens.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function name.
    pub func: String,
}

/// Find `Mutex<`/`RwLock<` declarations in a file and their
/// `lock-rank:` annotations. Returns decls; pushes findings for
/// unranked or malformed declarations.
pub fn collect_decls(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) -> Vec<LockDecl> {
    let lines = src.lines();
    let mut out = Vec::new();
    for ty in ["Mutex", "RwLock"] {
        for pos in find_word(&src.code, ty) {
            let after = pos + ty.len();
            if src.code.as_bytes().get(after) != Some(&b'<') {
                continue; // `Mutex::new`, `impl<T> Mutex<T>` handled below
            }
            let ln = src.line_of(pos);
            let code_line = line_code(src, ln);
            let t = code_line.trim_start();
            // Skip type definitions, impls, and function signatures — a
            // rank belongs to a *lock instance* (field or static), not
            // to the `Mutex` type itself or a type that merely mentions
            // it in a signature.
            if t.starts_with("struct ")
                || t.starts_with("pub struct ")
                || t.starts_with("impl")
                || t.starts_with("unsafe impl")
                || t.starts_with("type ")
                || t.starts_with("pub type ")
                || t.contains("fn ")
            {
                continue;
            }
            // Field or static: `name: …Mutex<…>` / `static NAME: Mutex<…>`.
            let Some(colon) = code_line[..pos - line_start(src, ln)].rfind(':') else {
                continue;
            };
            let abs_colon = line_start(src, ln) + colon;
            // `::` is a path separator, not a field declaration…
            if src.code.as_bytes().get(abs_colon.wrapping_sub(1)) == Some(&b':')
                || src.code.as_bytes().get(abs_colon + 1) == Some(&b':')
            {
                // …unless an earlier single `:` on the line declares the
                // field (e.g. `q: parking_lot::Mutex<…>`).
                let Some(field_colon) = first_decl_colon(code_line) else {
                    continue;
                };
                let abs = line_start(src, ln) + field_colon;
                push_decl(rel, src, &lines, ln, abs, findings, &mut out);
                continue;
            }
            push_decl(rel, src, &lines, ln, abs_colon, findings, &mut out);
        }
    }
    out
}

/// First `:` on the line that is not part of a `::`.
fn first_decl_colon(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b':' {
            if b.get(i + 1) == Some(&b':') {
                i += 2;
                continue;
            }
            return Some(i);
        }
        i += 1;
    }
    None
}

fn push_decl(
    rel: &str,
    src: &Scrubbed,
    lines: &[&str],
    ln: usize,
    abs_colon: usize,
    findings: &mut Vec<Finding>,
    out: &mut Vec<LockDecl>,
) {
    let Some((_, field)) = ident_before(&src.code, abs_colon) else {
        return;
    };
    if out.iter().any(|d: &LockDecl| d.line == ln)
        || findings
            .iter()
            .any(|f| f.check == "lock-rank" && f.file == rel && f.line == ln)
    {
        return; // one decl per line (nested `Mutex<…RwLock<…>>` counts once)
    }
    let attached = attached_comment(lines, ln - 1, "lock-rank:");
    // Nearest segment wins: struct fields end with `,`, which the
    // attachment rule treats as a continuation, so the upward scan can
    // climb past a sibling field and see *its* rank comment too.
    let Some(parsed) = attached.iter().rev().find_map(|s| parse_rank(s)) else {
        findings.push(Finding::new(
            "lock-rank",
            rel,
            ln,
            format!(
                "lock declaration `{field}` has no `// lock-rank: <name> <n>` \
                 annotation — every lock must state its place in the global \
                 acquisition order"
            ),
            format!("unranked:{field}"),
        ));
        return;
    };
    let (name, rank, aliases) = parsed;
    out.push(LockDecl {
        name,
        rank,
        field: field.clone(),
        aliases,
        file: rel.to_string(),
        line: ln,
    });
}

/// Parse `lock-rank: <name> <n> [via a,b]` from a comment segment.
fn parse_rank(seg: &str) -> Option<(String, u32, Vec<String>)> {
    let rest = &seg[seg.find("lock-rank:")? + "lock-rank:".len()..];
    let mut it = rest.split_whitespace();
    let name = it.next()?.trim_end_matches(['.', ',']).to_string();
    let rank: u32 = it.next()?.trim_end_matches(['.', ',']).parse().ok()?;
    let mut aliases = Vec::new();
    if it.next() == Some("via") {
        for a in it.flat_map(|t| t.split(',')) {
            let a = a.trim().trim_end_matches('.');
            if !a.is_empty() {
                aliases.push(a.to_string());
            }
        }
    }
    Some((name, rank, aliases))
}

/// Registry of declared locks across the workspace.
#[derive(Debug, Default)]
pub struct LockRegistry {
    /// All declarations.
    pub decls: Vec<LockDecl>,
}

impl LockRegistry {
    /// Add a file's declarations, flagging duplicate rank names.
    pub fn add(&mut self, decls: Vec<LockDecl>, findings: &mut Vec<Finding>) {
        for d in decls {
            if let Some(prev) = self.decls.iter().find(|p| p.name == d.name) {
                findings.push(Finding::new(
                    "lock-rank",
                    d.file.clone(),
                    d.line,
                    format!(
                        "rank name `{}` already declared at {}:{} — rank names \
                         are global and must be unique",
                        d.name, prev.file, prev.line
                    ),
                    format!("dup:{}", d.name),
                ));
                continue;
            }
            self.decls.push(d);
        }
    }

    /// Resolve an acquisition receiver identifier within `file`:
    /// same-file field/alias match wins, then a unique global match.
    pub fn resolve(&self, file: &str, ident: &str) -> Option<&LockDecl> {
        let hit = |d: &&LockDecl| d.field == ident || d.aliases.iter().any(|a| a == ident);
        if let Some(d) = self.decls.iter().filter(|d| d.file == file).find(hit) {
            return Some(d);
        }
        let mut global = self.decls.iter().filter(hit);
        let first = global.next()?;
        if global.next().is_some() {
            return None; // ambiguous across files: don't guess
        }
        Some(first)
    }
}

fn line_start(src: &Scrubbed, ln: usize) -> usize {
    // Reconstruct from line_of by scanning — cheap enough at our sizes.
    let mut start = 0;
    for (i, l) in src.code.lines().enumerate() {
        if i + 1 == ln {
            return start;
        }
        start += l.len() + 1;
    }
    start
}

fn line_code(src: &Scrubbed, ln: usize) -> &str {
    src.code.lines().nth(ln - 1).unwrap_or("")
}

/// A live guard during the function walk.
struct Guard {
    lock: String,
    rank: u32,
    var: Option<String>,
    depth: u32,
    /// Temporaries die at the next `;` at or below their depth.
    temp: bool,
}

/// Walk every function in `src`, extract nested-acquisition edges, and
/// flag rank inversions against the registry.
pub fn check_file_edges(
    rel: &str,
    src: &Scrubbed,
    reg: &LockRegistry,
    findings: &mut Vec<Finding>,
) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    let code = &src.code;
    let b = code.as_bytes();
    for fpos in find_word(code, "fn") {
        let Some((_, fname)) = ident_after(code, fpos + 2) else {
            continue;
        };
        // Body = first `{` after the parameter list closes.
        let Some(paren) = code[fpos..].find('(').map(|i| fpos + i) else {
            continue;
        };
        let Some(paren_close) = matching(code, paren) else {
            continue;
        };
        let Some(body_open) = code[paren_close..].find('{').map(|i| paren_close + i) else {
            continue;
        };
        // A `;` before the `{` means a trait-method declaration.
        if code[paren_close..body_open].contains(';') {
            continue;
        }
        let Some(body_close) = matching(code, body_open) else {
            continue;
        };
        walk_body(
            rel, src, reg, &fname, b, body_open, body_close, findings, &mut edges,
        );
    }
    edges
}

#[allow(clippy::too_many_arguments)]
fn walk_body(
    rel: &str,
    src: &Scrubbed,
    reg: &LockRegistry,
    fname: &str,
    b: &[u8],
    open: usize,
    close: usize,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let code = std::str::from_utf8(b).unwrap_or_default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = open;
    while i <= close {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            b';' => guards.retain(|g| !(g.temp && g.depth >= depth)),
            c if is_ident(c) => {
                let start = i;
                while i < close && i + 1 < b.len() && is_ident(b[i + 1]) {
                    i += 1;
                }
                let word = &code[start..=i];
                let next = next_nonspace(b, i + 1);
                if word == "drop" && next == Some(b'(') {
                    if let Some((_, victim)) =
                        ident_after(code, code[i..].find('(').map(|p| i + p + 1).unwrap_or(i))
                    {
                        guards.retain(|g| g.var.as_deref() != Some(victim.as_str()));
                    }
                } else if is_acquisition(word) && next == Some(b'(') {
                    let decl = resolve_acquisition(code, start, word, rel, reg);
                    if let Some(decl) = decl {
                        let ln = src.line_of(start);
                        for g in &guards {
                            if g.lock == decl.name {
                                continue; // same lock: ascending gate's job
                            }
                            edges.push(LockEdge {
                                held: g.lock.clone(),
                                acquired: decl.name.clone(),
                                file: rel.to_string(),
                                line: ln,
                                func: fname.to_string(),
                            });
                            if decl.rank <= g.rank {
                                findings.push(Finding::new(
                                    "lock-rank",
                                    rel,
                                    ln,
                                    format!(
                                        "fn {fname}: acquires `{}` (rank {}) while \
                                         holding `{}` (rank {}) — rank order says \
                                         {} must be taken first; this edge inverts \
                                         the global acquisition order",
                                        decl.name, decl.rank, g.lock, g.rank, decl.name
                                    ),
                                    format!("inversion:{fname}:{}<{}", decl.name, g.lock),
                                ));
                            }
                        }
                        let (var, temp) = binding_of(code, start);
                        guards.push(Guard {
                            lock: decl.name.clone(),
                            rank: decl.rank,
                            var,
                            depth,
                            temp,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn next_nonspace(b: &[u8], mut i: usize) -> Option<u8> {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    b.get(i).copied()
}

fn is_acquisition(word: &str) -> bool {
    matches!(word, "lock" | "try_lock" | "read" | "write") || word.starts_with("lock_")
}

/// Resolve the lock a call acquires: for `.lock()`/`.read()`/`.write()`
/// the receiver field identifier; for `lock_*` wrappers the wrapper name
/// itself (declared as a `via` alias).
fn resolve_acquisition<'r>(
    code: &str,
    start: usize,
    word: &str,
    file: &str,
    reg: &'r LockRegistry,
) -> Option<&'r LockDecl> {
    if word.starts_with("lock_") {
        return reg.resolve(file, word);
    }
    // Must be a method call `.word(`; free `read(`/`write(` are I/O.
    let b = code.as_bytes();
    let mut j = start;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j == 0 || b[j - 1] != b'.' {
        return None;
    }
    let (_, recv) = ident_before(code, j - 1)?;
    let decl = reg.resolve(file, &recv)?;
    // `.read()`/`.write()` only count against RwLocks; a `.lock()` on a
    // resolved decl always counts.
    Some(decl)
}

/// How the acquisition's guard is bound: `(Some(name), false)` for
/// `let name = …`, `(None, true)` for a temporary.
fn binding_of(code: &str, site: usize) -> (Option<String>, bool) {
    let b = code.as_bytes();
    // Scan back to the statement opener.
    let mut j = site;
    while j > 0 && !matches!(b[j - 1], b';' | b'{' | b'}') {
        j -= 1;
    }
    let stmt = &code[j..site];
    if let Some(p) = stmt.rfind("let ") {
        let after = &stmt[p + 4..];
        let after = after.trim_start().trim_start_matches("mut ").trim_start();
        let end = after
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(after.len());
        let name = &after[..end];
        if name == "_" || name.is_empty() {
            return (None, true);
        }
        return (Some(name.to_string()), false);
    }
    (None, true)
}

/// Ported cache gate: any function in `cache.rs` that accumulates
/// multiple shard-lock guards must acquire them in ascending shard
/// order (an `.enumerate()`/ascending-range iteration with no `.rev()`).
pub fn check_cache_ascending(rel: &str, src: &Scrubbed, findings: &mut Vec<Finding>) {
    let code = &src.code;
    let mut seen_multi = false;
    for (name, body) in fn_bodies(code) {
        if !body.contains("lock_shard") || !body.contains("guards.push") {
            continue;
        }
        seen_multi = true;
        if body.contains(".rev()") {
            findings.push(Finding::new(
                "cache-order",
                rel,
                0,
                format!(
                    "fn {name}: multi-shard locking iterates with .rev() — shard \
                     locks must be acquired in ascending order"
                ),
                format!("rev:{name}"),
            ));
        }
        if !body.contains(".enumerate()") && !has_ascending_range(&body) {
            findings.push(Finding::new(
                "cache-order",
                rel,
                0,
                format!(
                    "fn {name}: cannot prove ascending shard-lock order (expected \
                     an .enumerate() or `for s in 0..` iteration)"
                ),
                format!("order:{name}"),
            ));
        }
    }
    if !seen_multi && code.contains("guards") {
        findings.push(Finding::new(
            "cache-order",
            rel,
            0,
            "lock-order check found no multi-lock function to verify",
            "missing-multilock",
        ));
    }
}

fn has_ascending_range(body: &str) -> bool {
    // `for s in 0..` with arbitrary whitespace.
    let mut rest = body;
    while let Some(p) = rest.find("for ") {
        let tail = &rest[p + 4..];
        if let Some(inpos) = tail.find(" in ") {
            let expr = tail[inpos + 4..].trim_start();
            if expr.starts_with("0..") {
                return true;
            }
        }
        rest = &rest[p + 4..];
    }
    false
}

/// `(name, body)` of every `fn` in scrubbed code, by brace matching.
pub fn fn_bodies(code: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for fpos in find_word(code, "fn") {
        let Some((_, name)) = ident_after(code, fpos + 2) else {
            continue;
        };
        let Some(brace) = code[fpos..].find('{').map(|i| fpos + i) else {
            continue;
        };
        if let Some(end) = matching(code, brace) {
            out.push((name, code[brace..=end].to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(textual: &str) -> (Vec<Finding>, Vec<LockEdge>) {
        let src = Scrubbed::new(textual);
        let mut findings = Vec::new();
        let decls = collect_decls("t.rs", &src, &mut findings);
        let mut reg = LockRegistry::default();
        reg.add(decls, &mut findings);
        let edges = check_file_edges("t.rs", &src, &reg, &mut findings);
        (findings, edges)
    }

    const DECLS: &str = "struct S {\n\
        // lock-rank: t.outer 10\n\
        outer: Mutex<u32>,\n\
        // lock-rank: t.inner 20\n\
        inner: Mutex<u32>,\n\
        }\n";

    #[test]
    fn correct_nesting_produces_edge_no_finding() {
        let text = format!(
            "{DECLS}impl S {{\nfn ok(&self) {{\n\
             let g = self.outer.lock();\n\
             let h = self.inner.lock();\n\
             drop(h); drop(g);\n}}\n}}\n"
        );
        let (f, e) = run(&text);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].held, "t.outer");
        assert_eq!(e[0].acquired, "t.inner");
    }

    #[test]
    fn inversion_is_flagged() {
        let text = format!(
            "{DECLS}impl S {{\nfn bad(&self) {{\n\
             let g = self.inner.lock();\n\
             let h = self.outer.lock();\n\
             drop(h); drop(g);\n}}\n}}\n"
        );
        let (f, _) = run(&text);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inverts"));
    }

    #[test]
    fn unranked_decl_is_flagged() {
        let (f, _) = run("struct S {\n    naked: Mutex<u32>,\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock-rank"));
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let text = format!(
            "{DECLS}impl S {{\nfn ok(&self) {{\n\
             self.inner.lock().checked_add(1);\n\
             let g = self.outer.lock();\n\
             drop(g);\n}}\n}}\n"
        );
        let (f, e) = run(&text);
        assert!(f.is_empty(), "{f:?}");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn scope_exit_releases_guards() {
        let text = format!(
            "{DECLS}impl S {{\nfn ok(&self) {{\n\
             {{ let g = self.inner.lock(); drop(g); }}\n\
             let h = self.outer.lock();\n\
             drop(h);\n}}\n}}\n"
        );
        let (f, _) = run(&text);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wrapper_alias_resolves() {
        let text = "struct C {\n\
             // lock-rank: t.publish 10 via lock_publish\n\
             publish: Mutex<()>,\n\
             // lock-rank: t.shard 20 via lock_shard\n\
             q: Mutex<u32>,\n\
             }\n\
             impl C {\n\
             fn insert(&self) {\n\
             let p = self.lock_publish();\n\
             let s = self.lock_shard(0);\n\
             drop(s); drop(p);\n}\n}\n";
        let (f, e) = run(text);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].acquired, "t.shard");
    }

    #[test]
    fn same_lock_reacquisition_is_not_an_inversion() {
        let text = "struct C {\n\
             // lock-rank: t.shard 20 via lock_shard\n\
             q: Mutex<u32>,\n\
             }\n\
             impl C {\n\
             fn insert_all(&self) {\n\
             let mut guards = Vec::new();\n\
             for (s, _) in self.shards.iter().enumerate() {\n\
             guards.push(self.lock_shard(s));\n\
             }\n}\n}\n";
        let (f, e) = run(text);
        assert!(f.is_empty(), "{f:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn ascending_gate_ports() {
        let bad = "impl C { fn insert_all_mutex(&self) { \
                   for (s, b) in shards.iter().enumerate().rev() { \
                   let g = self.lock_shard(s); guards.push(g); } } }";
        let src = Scrubbed::new(bad);
        let mut f = Vec::new();
        check_cache_ascending("cache.rs", &src, &mut f);
        assert!(f.iter().any(|x| x.message.contains(".rev()")), "{f:?}");
    }
}
