//! Findings, stable IDs, the machine-readable report, the suppression
//! baseline, and a minimal JSON reader for `--validate` — all
//! dependency-free (ward must build when nothing else does).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Check slug (`lock-rank`, `pairing`, `ordering`, …).
    pub check: &'static str,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line (0 = whole-file/cross-file finding).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Content key the stable ID is derived from — deliberately
    /// line-number-free so IDs survive unrelated edits above the site.
    pub key: String,
}

impl Finding {
    /// New finding; `key` should name the construct, not its position.
    pub fn new(
        check: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
        key: impl Into<String>,
    ) -> Self {
        Finding {
            check,
            file: file.into(),
            line,
            message: message.into(),
            key: key.into(),
        }
    }

    /// Stable finding ID: check + file + content key, FNV-1a hashed.
    pub fn id(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .check
            .bytes()
            .chain(self.file.bytes())
            .chain([0u8])
            .chain(self.key.bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("W-{}-{:016x}", self.check.to_uppercase(), h)
    }
}

/// Scan-wide statistics surfaced in the report.
#[derive(Debug, Default, Clone)]
pub struct ScanStats {
    /// Files scanned.
    pub files: usize,
    /// `Ordering::*` sites seen.
    pub ordering_sites: usize,
    /// `unsafe` sites inventoried.
    pub unsafe_sites: usize,
    /// Ranked lock declarations.
    pub lock_decls: usize,
    /// Nested lock-acquisition edges observed.
    pub lock_edges: usize,
    /// Distinct `pairs-with` labels.
    pub pair_labels: usize,
    /// Counters traced through the plumbing check.
    pub counters: usize,
}

/// Report schema identifier (bump on breaking shape changes).
pub const SCHEMA: &str = "wafl.ward.v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the `results/ward.json` report. `suppressed` lists baseline
/// IDs that matched a finding this run; findings passed here are the
/// *unsuppressed* remainder. Deterministic: everything is sorted.
pub fn render_report(
    findings: &[Finding],
    suppressed: &[(String, Finding)],
    stats: &ScanStats,
) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.check).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", stats.files);
    let _ = writeln!(out, "  \"ordering_sites\": {},", stats.ordering_sites);
    let _ = writeln!(out, "  \"unsafe_sites\": {},", stats.unsafe_sites);
    let _ = writeln!(out, "  \"lock_decls\": {},", stats.lock_decls);
    let _ = writeln!(out, "  \"lock_edges\": {},", stats.lock_edges);
    let _ = writeln!(out, "  \"pair_labels\": {},", stats.pair_labels);
    let _ = writeln!(out, "  \"counters\": {},", stats.counters);
    out.push_str("  \"counts\": {");
    let mut first = true;
    for (k, v) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", esc(k), v);
    }
    out.push_str(if counts.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"findings\": [");
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.check).cmp(&(&b.file, b.line, b.check)));
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"check\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(&f.id()),
            esc(f.check),
            esc(&f.file),
            f.line,
            esc(&f.message)
        );
    }
    out.push_str(if sorted.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"suppressed\": [");
    let mut sup: Vec<&(String, Finding)> = suppressed.iter().collect();
    sup.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (id, f)) in sup.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": \"{}\", \"check\": \"{}\", \"file\": \"{}\"}}",
            esc(id),
            esc(f.check),
            esc(&f.file)
        );
    }
    out.push_str(if sup.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Parse the suppression baseline: one finding ID per line, `#` starts a
/// comment (a reason is expected but not enforced). Returns IDs in file
/// order.
pub fn parse_baseline(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.to_string())
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate a ward report's shape
// without pulling in a parser crate.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (kept as f64; ward only writes integers).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object (insertion order kept)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for validation purposes).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(kv));
            }
            loop {
                skip_ws(b, pos);
                let Json::Str(k) = parse_value(b, pos)? else {
                    return Err(format!("object key is not a string at {pos}"));
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                let v = parse_value(b, pos)?;
                kv.push((k, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    b'"' => return Ok(Json::Str(s)),
                    b'\\' => {
                        let e = *b.get(*pos).ok_or("eof in escape")?;
                        *pos += 1;
                        match e {
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'u' => {
                                let hex =
                                    std::str::from_utf8(b.get(*pos..*pos + 4).ok_or("eof in \\u")?)
                                        .map_err(|e| e.to_string())?;
                                let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                s.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            c => s.push(c as char),
                        }
                    }
                    c => s.push(c as char),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while let Some(&c) = b.get(*pos) {
                if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at {start}"))
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        _ => Err(format!("unexpected byte at {pos}")),
    }
}

/// Validate a ward report document against the `wafl.ward.v1` shape.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    for key in [
        "files_scanned",
        "ordering_sites",
        "unsafe_sites",
        "lock_decls",
        "lock_edges",
        "pair_labels",
        "counters",
    ] {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
    }
    doc.get("counts").ok_or("missing \"counts\"")?;
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing \"findings\" array")?;
    for f in findings {
        for key in ["id", "check", "file", "message"] {
            f.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("finding missing string \"{key}\""))?;
        }
        f.get("line")
            .and_then(Json::as_num)
            .ok_or("finding missing numeric \"line\"")?;
        let id = f.get("id").and_then(Json::as_str).unwrap_or("");
        if !id.starts_with("W-") {
            return Err(format!("finding id {id:?} lacks the W- prefix"));
        }
    }
    doc.get("suppressed")
        .and_then(Json::as_arr)
        .ok_or("missing \"suppressed\" array")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_line_free() {
        let a = Finding::new("pairing", "a.rs", 10, "msg", "label:foo");
        let b = Finding::new("pairing", "a.rs", 99, "other msg", "label:foo");
        assert_eq!(a.id(), b.id());
        let c = Finding::new("pairing", "a.rs", 10, "msg", "label:bar");
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn report_roundtrips_through_validator() {
        let f = vec![Finding::new("lock-rank", "x.rs", 3, "boom \"q\"", "k")];
        let s = render_report(&f, &[], &ScanStats::default());
        validate_report(&s).unwrap();
        let empty = render_report(&[], &[], &ScanStats::default());
        validate_report(&empty).unwrap();
    }

    #[test]
    fn baseline_parses_comments() {
        let ids = parse_baseline("# header\nW-X-1 # reason\n\nW-Y-2\n");
        assert_eq!(ids, vec!["W-X-1", "W-Y-2"]);
    }

    #[test]
    fn validator_rejects_wrong_schema() {
        let bad = "{\"schema\": \"other\", \"findings\": [], \"suppressed\": []}";
        assert!(validate_report(bad).is_err());
    }
}
