//! Detection-power self-test: every check must still fire on its seeded
//! fixture violation, and the clean fixture must produce zero findings.
//! Mirrors the model checker's detection-power discipline — a gate that
//! cannot catch its target bug class is worse than no gate, because it
//! launders confidence.

use crate::counters::{CounterSources, TelemetrySources};
use crate::locks::LockRegistry;
use crate::report::Finding;
use crate::scrub::Scrubbed;
use crate::{gates, locks, ordering, unsafety};
use std::collections::BTreeMap;
use std::path::Path;

/// One self-test case outcome.
pub struct CaseResult {
    /// Case name (fixture stem).
    pub name: &'static str,
    /// Pass/fail.
    pub ok: bool,
    /// What went wrong, if anything.
    pub detail: String,
}

fn load(fixtures: &Path, name: &str) -> Result<Scrubbed, String> {
    let p = fixtures.join(name);
    std::fs::read_to_string(&p)
        .map(|t| Scrubbed::new(&t))
        .map_err(|e| format!("cannot read {}: {e}", p.display()))
}

fn case(
    name: &'static str,
    expect_check: &str,
    min: usize,
    res: Result<Vec<Finding>, String>,
) -> CaseResult {
    match res {
        Ok(findings) => {
            let hits = findings.iter().filter(|f| f.check == expect_check).count();
            if hits >= min {
                CaseResult {
                    name,
                    ok: true,
                    detail: format!("{hits} finding(s)"),
                }
            } else {
                CaseResult {
                    name,
                    ok: false,
                    detail: format!(
                        "expected ≥{min} `{expect_check}` finding(s), got {hits}: {findings:?}"
                    ),
                }
            }
        }
        Err(e) => CaseResult {
            name,
            ok: false,
            detail: e,
        },
    }
}

/// Run the whole detection-power suite against `fixtures` (the
/// `crates/ward/fixtures` directory). Returns per-case results.
pub fn run(fixtures: &Path) -> Vec<CaseResult> {
    let mut out = Vec::new();

    // 1. Unjustified ordering.
    out.push(case(
        "unjustified_ordering",
        "ordering",
        1,
        load(fixtures, "unjustified_ordering.rs").map(|src| {
            let mut f = Vec::new();
            ordering::check_justifications("fixture.rs", &src, &mut f);
            f
        }),
    ));

    // 2. Dangling pairs-with: a Release publish whose acquire partner
    // was weakened to Relaxed.
    out.push(case(
        "dangling_pairs_with",
        "pairing",
        2, // the weakened tag AND the dangling label
        load(fixtures, "dangling_pairs_with.rs").map(|src| {
            let mut f = Vec::new();
            let mut labels = BTreeMap::new();
            ordering::check_pairing_file("fixture.rs", &src, &mut f, &mut labels);
            ordering::check_pairing_global(&labels, &mut f);
            f
        }),
    ));

    // 3. Rank inversion.
    out.push(case(
        "rank_inversion",
        "lock-rank",
        1,
        load(fixtures, "rank_inversion.rs").map(|src| {
            let mut f = Vec::new();
            let decls = locks::collect_decls("fixture.rs", &src, &mut f);
            let mut reg = LockRegistry::default();
            reg.add(decls, &mut f);
            locks::check_file_edges("fixture.rs", &src, &reg, &mut f);
            f
        }),
    ));

    // 4. Undeclared (unranked) lock.
    out.push(case(
        "missing_lock_rank",
        "lock-rank",
        1,
        load(fixtures, "missing_lock_rank.rs").map(|src| {
            let mut f = Vec::new();
            locks::collect_decls("fixture.rs", &src, &mut f);
            f
        }),
    ));

    // 5. Unplumbed counter (four-source corpus).
    out.push(case(
        "unplumbed_counter",
        "counters",
        1,
        (|| {
            let stats = load(fixtures, "counters/stats.rs")?;
            let engine = load(fixtures, "counters/engine_bad.rs")?;
            let cleaner = load(fixtures, "counters/cleaner.rs")?;
            let io = load(fixtures, "counters/io.rs")?;
            let mut f = Vec::new();
            crate::counters::check_counters(
                &CounterSources {
                    stats: &stats,
                    engine: &engine,
                    cleaner: &cleaner,
                    io: &io,
                },
                &mut f,
            );
            Ok(f)
        })(),
    ));

    // 5b. Unmaintained telemetry counter + gutted CP profiler.
    out.push(case(
        "unplumbed_telemetry",
        "counters",
        3, // the flatlined counter, the lost phase field, a lost profile leg
        (|| {
            let sampler = load(fixtures, "telemetry/sampler.rs")?;
            let blackbox = load(fixtures, "telemetry/blackbox_bad.rs")?;
            let cp = load(fixtures, "telemetry/cp_bad.rs")?;
            let mut f = Vec::new();
            crate::counters::check_telemetry(
                &TelemetrySources {
                    sampler: &sampler,
                    blackbox: &blackbox,
                    cp: &cp,
                },
                &mut f,
            );
            Ok(f)
        })(),
    ));

    // 6. Missing SAFETY comment.
    out.push(case(
        "missing_safety",
        "unsafe",
        1,
        load(fixtures, "missing_safety.rs").map(|src| {
            let mut f = Vec::new();
            unsafety::check_unsafe("fixture.rs", &src, &mut f);
            f
        }),
    ));

    // 7. Forged IoTicket.
    out.push(case(
        "forged_ticket",
        "ticket",
        1,
        load(fixtures, "forged_ticket.rs").map(|src| {
            let mut f = Vec::new();
            gates::check_ticket_construction("crates/wafl/src/cp.rs", &src, &mut f);
            f
        }),
    ));

    // 8. Exhaustion abort.
    out.push(case(
        "exhaustion_abort",
        "arena-abort",
        1,
        load(fixtures, "exhaustion_abort.rs").map(|src| {
            let mut f = Vec::new();
            gates::check_no_exhaustion_aborts("crates/alligator/src/arena.rs", &src, &mut f);
            f
        }),
    ));

    // 9. Weakened epoch-protocol atomic.
    out.push(case(
        "weak_epoch",
        "epoch-seqcst",
        1,
        load(fixtures, "weak_epoch.rs").map(|src| {
            let mut f = Vec::new();
            gates::check_epoch_seqcst("crates/alligator/src/arena.rs", &src, &mut f);
            f
        }),
    ));

    // 10. Ascending-shard proof lost.
    out.push(case(
        "cache_order",
        "cache-order",
        1,
        load(fixtures, "cache_order.rs").map(|src| {
            let mut f = Vec::new();
            locks::check_cache_ascending("crates/alligator/src/cache.rs", &src, &mut f);
            f
        }),
    ));

    // Clean fixture: the full per-file battery must stay silent.
    let clean = (|| {
        let src = load(fixtures, "clean.rs")?;
        let mut f = Vec::new();
        let mut labels = BTreeMap::new();
        ordering::check_justifications("fixture.rs", &src, &mut f);
        ordering::check_pairing_file("fixture.rs", &src, &mut f, &mut labels);
        ordering::check_pairing_global(&labels, &mut f);
        unsafety::check_unsafe("fixture.rs", &src, &mut f);
        gates::check_ticket_construction("fixture.rs", &src, &mut f);
        let decls = locks::collect_decls("fixture.rs", &src, &mut f);
        let mut reg = LockRegistry::default();
        reg.add(decls, &mut f);
        locks::check_file_edges("fixture.rs", &src, &reg, &mut f);
        Ok::<_, String>(f)
    })();
    out.push(match clean {
        Ok(f) if f.is_empty() => CaseResult {
            name: "clean_fixture",
            ok: true,
            detail: "0 findings".into(),
        },
        Ok(f) => CaseResult {
            name: "clean_fixture",
            ok: false,
            detail: format!("clean fixture produced findings: {f:?}"),
        },
        Err(e) => CaseResult {
            name: "clean_fixture",
            ok: false,
            detail: e,
        },
    });

    // Clean counters corpus: the good engine variant stays silent.
    let clean_counters = (|| {
        let stats = load(fixtures, "counters/stats.rs")?;
        let engine = load(fixtures, "counters/engine_good.rs")?;
        let cleaner = load(fixtures, "counters/cleaner.rs")?;
        let io = load(fixtures, "counters/io.rs")?;
        let mut f = Vec::new();
        crate::counters::check_counters(
            &CounterSources {
                stats: &stats,
                engine: &engine,
                cleaner: &cleaner,
                io: &io,
            },
            &mut f,
        );
        Ok::<_, String>(f)
    })();
    out.push(match clean_counters {
        Ok(f) if f.is_empty() => CaseResult {
            name: "clean_counters",
            ok: true,
            detail: "0 findings".into(),
        },
        Ok(f) => CaseResult {
            name: "clean_counters",
            ok: false,
            detail: format!("clean counters corpus produced findings: {f:?}"),
        },
        Err(e) => CaseResult {
            name: "clean_counters",
            ok: false,
            detail: e,
        },
    });

    // Clean telemetry corpus: the maintained trio stays silent.
    let clean_telemetry = (|| {
        let sampler = load(fixtures, "telemetry/sampler.rs")?;
        let blackbox = load(fixtures, "telemetry/blackbox.rs")?;
        let cp = load(fixtures, "telemetry/cp.rs")?;
        let mut f = Vec::new();
        crate::counters::check_telemetry(
            &TelemetrySources {
                sampler: &sampler,
                blackbox: &blackbox,
                cp: &cp,
            },
            &mut f,
        );
        Ok::<_, String>(f)
    })();
    out.push(match clean_telemetry {
        Ok(f) if f.is_empty() => CaseResult {
            name: "clean_telemetry",
            ok: true,
            detail: "0 findings".into(),
        },
        Ok(f) => CaseResult {
            name: "clean_telemetry",
            ok: false,
            detail: format!("clean telemetry corpus produced findings: {f:?}"),
        },
        Err(e) => CaseResult {
            name: "clean_telemetry",
            ok: false,
            detail: e,
        },
    });

    out
}
