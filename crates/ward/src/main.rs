//! `ward` CLI — see crate docs and DESIGN.md §15.
//!
//! ```text
//! cargo run -p ward                 scan + regenerate UNSAFE_AUDIT.md + report
//! cargo run -p ward -- --check      scan + verify audit freshness (CI gate)
//! cargo run -p ward -- --self-test  detection-power fixtures
//! cargo run -p ward -- --validate <report.json>
//! cargo run -p ward -- --graph     print the observed lock-order edges
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use ward::report::{parse_baseline, render_report, validate_report};
use ward::{apply_baseline, render_audit, scan_workspace, selftest, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut self_test = false;
    let mut graph = false;
    let mut validate: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--self-test" => self_test = true,
            "--graph" => graph = true,
            "--validate" => match it.next() {
                Some(p) => validate = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ward: --validate needs a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ward: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("ward: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| validate_report(&t))
        {
            Ok(()) => {
                println!(
                    "ward: {} validates against {}",
                    path.display(),
                    ward::report::SCHEMA
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ward: {} is invalid: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    if self_test {
        let fixtures = root.join("crates/ward/fixtures");
        let results = selftest::run(&fixtures);
        let mut failures = 0;
        for r in &results {
            if r.ok {
                println!("ward self-test: {:<24} OK ({})", r.name, r.detail);
            } else {
                failures += 1;
                eprintln!("ward self-test: {:<24} FAIL — {}", r.name, r.detail);
            }
        }
        println!(
            "ward self-test: {} — {}/{} checks detect their fixture violation",
            if failures == 0 { "OK" } else { "FAIL" },
            results.len() - failures,
            results.len()
        );
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let scan = scan_workspace(&root);

    if graph {
        println!("# lock-order graph: held -> acquired (file:line, fn)");
        for e in &scan.edges {
            println!(
                "{} -> {}    {}:{} (fn {})",
                e.held, e.acquired, e.file, e.line, e.func
            );
        }
    }

    // Baseline.
    let baseline_path = root.join("crates/ward/baseline.txt");
    let baseline = std::fs::read_to_string(&baseline_path)
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    let (mut findings, suppressed, stale) = apply_baseline(scan.findings, &baseline);
    for id in &stale {
        findings.push(ward::report::Finding::new(
            "baseline",
            "crates/ward/baseline.txt",
            0,
            format!("baseline entry {id} matches no current finding — remove it"),
            format!("stale:{id}"),
        ));
    }

    // Audit: regenerate, or verify freshness under --check.
    let audit = render_audit(&scan.inventory);
    let audit_path = root.join("UNSAFE_AUDIT.md");
    if check {
        let current = std::fs::read_to_string(&audit_path).unwrap_or_default();
        if current != audit {
            findings.push(ward::report::Finding::new(
                "audit",
                "UNSAFE_AUDIT.md",
                0,
                "UNSAFE_AUDIT.md is stale — regenerate with `cargo run -p ward`",
                "stale-audit",
            ));
        }
    } else if std::fs::write(&audit_path, &audit).is_err() {
        eprintln!("ward: cannot write {}", audit_path.display());
        return ExitCode::FAILURE;
    }

    // Machine-readable report.
    let report = render_report(&findings, &suppressed, &scan.stats);
    let report_path = json_out.unwrap_or_else(|| root.join("results/ward.json"));
    if let Some(parent) = report_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if std::fs::write(&report_path, &report).is_err() {
        eprintln!("ward: cannot write {}", report_path.display());
        return ExitCode::FAILURE;
    }

    for f in &findings {
        eprintln!(
            "ward: [{}] {}:{}: {} ({})",
            f.check,
            f.file,
            f.line,
            f.message,
            f.id()
        );
    }
    println!(
        "ward: {} — {} files, {} ordering sites, {} unsafe sites, {} ranked locks, \
         {} lock edges, {} pair labels, {} counters traced; {} finding(s), {} suppressed",
        if findings.is_empty() { "OK" } else { "FAIL" },
        scan.stats.files,
        scan.stats.ordering_sites,
        scan.stats.unsafe_sites,
        scan.stats.lock_decls,
        scan.stats.lock_edges,
        scan.stats.pair_labels,
        scan.stats.counters,
        findings.len(),
        suppressed.len(),
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
