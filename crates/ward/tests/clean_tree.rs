//! The live tree must scan clean: `cargo test -p ward` fails the same
//! way `cargo run -p ward -- --check` would, so the gate binds even for
//! contributors who only run the test suite. Also pins coverage floors
//! so a scoping bug that silently skips most of the tree reads as a
//! failure, not as a suspiciously green scan.

use ward::report::parse_baseline;
use ward::{apply_baseline, scan_workspace, workspace_root};

#[test]
fn workspace_scan_is_clean_after_baseline() {
    let root = workspace_root();
    assert!(
        root.join("crates/ward/Cargo.toml").exists(),
        "workspace root misresolved: {}",
        root.display()
    );
    let scan = scan_workspace(&root);
    let baseline = std::fs::read_to_string(root.join("crates/ward/baseline.txt"))
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    let (unsuppressed, _suppressed, stale) = apply_baseline(scan.findings, &baseline);
    let rendered: Vec<String> = unsuppressed
        .iter()
        .map(|f| {
            format!(
                "[{}] {}:{}: {} ({})",
                f.check,
                f.file,
                f.line,
                f.message,
                f.id()
            )
        })
        .collect();
    assert!(
        rendered.is_empty(),
        "the tree has unsuppressed ward findings:\n{}",
        rendered.join("\n")
    );
    assert!(stale.is_empty(), "stale baseline entries: {stale:?}");
}

#[test]
fn scan_coverage_floors_hold() {
    let scan = scan_workspace(&workspace_root());
    let s = &scan.stats;
    assert!(s.files >= 50, "only {} files scanned", s.files);
    assert!(
        s.ordering_sites >= 200,
        "only {} ordering sites",
        s.ordering_sites
    );
    assert!(s.unsafe_sites >= 10, "only {} unsafe sites", s.unsafe_sites);
    assert!(s.lock_decls >= 20, "only {} ranked locks", s.lock_decls);
    assert!(s.lock_edges >= 1, "no nested-acquisition edges observed");
    assert!(s.pair_labels >= 20, "only {} pair labels", s.pair_labels);
    assert!(s.counters >= 40, "only {} counters traced", s.counters);
}
