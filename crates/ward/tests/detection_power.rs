//! Detection-power integration tests: the analyzer must catch every
//! seeded fixture violation, and — the acceptance criterion for the
//! whole gate — *mutating a clean source* (weakening a pairs-with
//! partner, swapping two lock ranks) must flip the verdict from silent
//! to failing. A checker that stays green under its target mutations is
//! laundering confidence, not providing it.

use std::collections::BTreeMap;
use std::path::Path;
use ward::locks::LockRegistry;
use ward::report::Finding;
use ward::scrub::Scrubbed;
use ward::{locks, ordering, selftest};

fn fixtures() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

/// Every `--self-test` case passes: each of the ten seeded violations
/// is detected and both clean corpora stay silent.
#[test]
fn selftest_suite_is_all_green() {
    let results = selftest::run(fixtures());
    assert!(results.len() >= 12, "suite shrank: {} cases", results.len());
    let failures: Vec<String> = results
        .iter()
        .filter(|c| !c.ok)
        .map(|c| format!("{}: {}", c.name, c.detail))
        .collect();
    assert!(failures.is_empty(), "self-test failures: {failures:?}");
}

/// Run the pairing battery (per-file + global) over one in-memory source.
fn pairing_findings(text: &str) -> Vec<Finding> {
    let src = Scrubbed::new(text);
    let mut findings = Vec::new();
    let mut labels = BTreeMap::new();
    ordering::check_pairing_file("mutant.rs", &src, &mut findings, &mut labels);
    ordering::check_pairing_global(&labels, &mut findings);
    findings
}

/// A minimal, fully annotated Release/Acquire hand-off. The base form
/// must be silent; the mutations below must each produce a `pairing`
/// finding.
const PAIRED: &str = r#"
struct S {
    flag: AtomicBool,
}
impl S {
    fn publish(&self) {
        // ordering: Release publishes readiness; pairs-with: demo.flag.
        self.flag.store(true, Ordering::Release);
    }
    fn observe(&self) -> bool {
        // ordering: Acquire side of the readiness hand-off;
        // pairs-with: demo.flag.
        self.flag.load(Ordering::Acquire)
    }
}
"#;

#[test]
fn intact_pair_is_silent() {
    let findings = pairing_findings(PAIRED);
    assert!(findings.is_empty(), "clean pair flagged: {findings:?}");
}

/// Weakening the acquire partner to `Relaxed` — the exact regression
/// the check exists for (a happens-before edge silently dropped) —
/// must fail the scan even though the release side is untouched.
#[test]
fn weakened_acquire_partner_is_detected() {
    let mutant = PAIRED.replace("Ordering::Acquire", "Ordering::Relaxed");
    assert_ne!(mutant, PAIRED, "mutation did not apply");
    let findings = pairing_findings(&mutant);
    assert!(
        findings.iter().any(|f| f.check == "pairing"),
        "weakened acquire partner went undetected: {findings:?}"
    );
}

/// Deleting the acquire site outright must dangle the label.
#[test]
fn deleted_acquire_partner_is_detected() {
    let cut = PAIRED.find("fn observe").expect("observe in fixture");
    let mutant = format!("{}}}\n", &PAIRED[..cut]);
    let findings = pairing_findings(&mutant);
    assert!(
        findings.iter().any(|f| f.check == "pairing"),
        "deleted acquire partner went undetected: {findings:?}"
    );
}

/// Weakening the *release* side while its tag still claims a pair must
/// also fail (tag on a non-publishing site).
#[test]
fn weakened_release_side_is_detected() {
    let mutant = PAIRED.replace("Ordering::Release", "Ordering::Relaxed");
    assert_ne!(mutant, PAIRED, "mutation did not apply");
    let findings = pairing_findings(&mutant);
    assert!(
        findings.iter().any(|f| f.check == "pairing"),
        "weakened release side went undetected: {findings:?}"
    );
}

/// Run the lock battery (decls + edges) over one in-memory source.
fn lock_findings(text: &str) -> Vec<Finding> {
    let src = Scrubbed::new(text);
    let mut findings = Vec::new();
    let decls = locks::collect_decls("mutant.rs", &src, &mut findings);
    let mut reg = LockRegistry::default();
    reg.add(decls, &mut findings);
    locks::check_file_edges("mutant.rs", &src, &reg, &mut findings);
    findings
}

/// Two ranked locks nested in rank order. Silent as written; swapping
/// the two rank numbers (so the nesting becomes descending) must fail.
const RANKED: &str = r#"
struct A {
    outer: Mutex<u32>, // lock-rank: demo.outer 10
    inner: Mutex<u32>, // lock-rank: demo.inner 20
}
impl A {
    fn both(&self) -> u32 {
        let a = self.outer.lock().unwrap();
        let b = self.inner.lock().unwrap();
        *a + *b
    }
}
"#;

#[test]
fn ascending_nesting_is_silent() {
    let findings = lock_findings(RANKED);
    assert!(findings.is_empty(), "clean nesting flagged: {findings:?}");
}

/// Swapping the declared ranks turns the same nesting into an
/// inversion; the graph check must catch it without any code change at
/// the acquisition site.
#[test]
fn swapped_ranks_are_detected() {
    let mutant = RANKED
        .replace("demo.outer 10", "demo.outer 99")
        .replace("demo.inner 20", "demo.inner 1");
    assert_ne!(mutant, RANKED, "mutation did not apply");
    let findings = lock_findings(&mutant);
    assert!(
        findings.iter().any(|f| f.check == "lock-rank"),
        "rank inversion went undetected: {findings:?}"
    );
}

/// Stripping a declaration's rank annotation must be flagged even when
/// the lock is never nested anywhere.
#[test]
fn stripped_rank_annotation_is_detected() {
    let mutant = RANKED.replace(" // lock-rank: demo.inner 20", "");
    assert_ne!(mutant, RANKED, "mutation did not apply");
    let findings = lock_findings(&mutant);
    assert!(
        findings.iter().any(|f| f.check == "lock-rank"),
        "unranked declaration went undetected: {findings:?}"
    );
}

/// Finding IDs are content-derived: re-running the same battery yields
/// the same IDs (baseline stability), and the ID does not move when the
/// site's line number does.
#[test]
fn finding_ids_are_stable_across_line_shifts() {
    let mutant = RANKED.replace(" // lock-rank: demo.inner 20", "");
    let a = lock_findings(&mutant);
    let shifted = format!("\n\n\n{mutant}");
    let b = lock_findings(&shifted);
    let ids = |v: &[Finding]| v.iter().map(|f| f.id()).collect::<Vec<_>>();
    assert_eq!(ids(&a), ids(&b), "IDs moved with line numbers");
    assert_ne!(a[0].line, b[0].line, "shift fixture did not shift lines");
}
