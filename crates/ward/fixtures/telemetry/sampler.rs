//! Telemetry fixture (clean): a miniature sampler that declares its
//! counter roster and maintains its own legs.

/// Counters the sampler subsystem maintains about itself.
pub const TELEMETRY_COUNTERS: [&str; 3] = [
    "telemetry_ticks",
    "telemetry_slo_breaches",
    "telemetry_blackbox_dumps",
];

pub struct Sampler {
    reg: Registry,
}

impl Sampler {
    pub fn sample(&self) {
        self.reg.counter("telemetry_ticks").inc();
        if self.burn_rate() > 1.0 {
            self.reg.counter("telemetry_slo_breaches").inc();
        }
    }

    fn burn_rate(&self) -> f64 {
        0.0
    }
}
