//! Telemetry fixture (clean): a miniature CP profiler with every phase
//! measured, exported, and published.

/// CP phase names in pipeline order.
pub const CP_PHASE_NAMES: [&str; 3] = ["freeze", "clean", "commit"];

pub struct CpReport {
    pub freeze_ns: u64,
    pub clean_ns: u64,
    pub commit_ns: u64,
}

impl CpReport {
    pub fn phase_ns(&self) -> [u64; 3] {
        [self.freeze_ns, self.clean_ns, self.commit_ns]
    }

    pub fn record_profile(&self) {
        let reg = Registry::global();
        for (name, ns) in CP_PHASE_NAMES.iter().zip(self.phase_ns()) {
            reg.histogram(&format!("cp_phase_{name}_ns")).record(ns);
        }
        reg.counter(&format!("cp_phase_binding_{}", CP_PHASE_NAMES[0]))
            .inc();
        reg.counter("cp_phase_profiled").inc();
    }
}

fn run_cp_inner(report: &CpReport) {
    report.record_profile();
}
