//! Telemetry fixture (seeded violation): the dump counter declared in
//! the sampler's roster is never incremented anywhere — a dashboard
//! panel that silently flatlines.

pub struct Blackbox {
    reg: Registry,
}

impl Blackbox {
    fn write_bundle(&self) {
        // Forgot: self.reg.counter("telemetry_blackbox_dumps").inc();
    }
}
