//! Telemetry fixture (clean): the flight recorder maintains the dump
//! counter the sampler's roster declares.

pub struct Blackbox {
    reg: Registry,
}

impl Blackbox {
    fn write_bundle(&self) {
        self.reg.counter("telemetry_blackbox_dumps").inc();
    }
}
