//! Telemetry fixture (seeded violation): a phase named in the roster
//! has no `_ns` field and no export leg, and `record_profile` lost its
//! publication legs — the profiler claims coverage it doesn't have.

pub const CP_PHASE_NAMES: [&str; 3] = ["freeze", "clean", "commit"];

pub struct CpReport {
    pub freeze_ns: u64,
    pub clean_ns: u64,
    // commit_ns went missing in a refactor.
}

impl CpReport {
    pub fn phase_ns(&self) -> [u64; 3] {
        [self.freeze_ns, self.clean_ns, 0]
    }

    pub fn record_profile(&self) {
        // Gutted: nothing reaches the registry any more.
    }
}

fn run_cp_inner(report: &CpReport) {
    report.record_profile();
}
