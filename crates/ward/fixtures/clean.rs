// Fixture: a file every per-file check must pass untouched — correctly
// justified orderings, a closed pairs-with label, ranked locks acquired
// in order, and an audited unsafe block.
struct Seed {
    // lock-rank: fixture-clean.outer 10
    outer: std::sync::Mutex<u32>,
    // lock-rank: fixture-clean.inner 20
    inner: std::sync::Mutex<u32>,
    flag: std::sync::atomic::AtomicBool,
}

impl Seed {
    fn publish(&self) {
        use std::sync::atomic::Ordering;
        // ordering: Release publish of the ready flag; the consumer's
        // Acquire load below completes the edge. pairs-with: fixture-clean.ready.
        self.flag.store(true, Ordering::Release);
    }

    fn consume(&self) -> bool {
        use std::sync::atomic::Ordering;
        // ordering: Acquire observe; pairs-with: fixture-clean.ready.
        self.flag.load(Ordering::Acquire)
    }

    fn nested(&self) {
        let outer = self.outer.lock().unwrap();
        let inner = self.inner.lock().unwrap();
        drop(inner);
        drop(outer);
    }

    fn raw(&self, p: *mut u8) {
        // SAFETY: p is valid for writes by the caller's contract, and no
        // other reference aliases it while this block runs.
        unsafe { *p = 0 };
    }
}
