// Fixture: an IoTicket constructed outside the aio engine.
// The ticket gate must flag the forgery.
fn seed() -> IoTicket {
    IoTicket(7)
}
