// Fixture: a multi-shard-lock function that iterates descending.
// The cache-order gate must flag the .rev() acquisition loop.
impl Cache {
    fn insert_all_mutex(&self) {
        let mut guards = Vec::new();
        for (s, _b) in self.shards.iter().enumerate().rev() {
            let g = self.lock_shard(s);
            guards.push(g);
        }
    }
}
