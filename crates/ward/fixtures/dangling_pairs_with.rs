// Fixture: a Release publish whose acquire partner was weakened to
// Relaxed. The pairing gate must flag both the weakened tag site and
// the now-dangling label.
fn seed(flag: &std::sync::atomic::AtomicBool) {
    use std::sync::atomic::Ordering;
    // ordering: Release publish of the ready flag; pairs-with: fixture.ready.
    flag.store(true, Ordering::Release);
    // ordering: was Acquire, weakened in a refactor; pairs-with: fixture.ready.
    let _ = flag.load(Ordering::Relaxed);
}
