// Fixture: an epoch-protocol atomic accessed with a weakened ordering.
// The epoch-seqcst gate must flag the Acquire load.
struct Seed {
    epoch: std::sync::atomic::AtomicU64,
}

impl Seed {
    fn pin(&self) -> u64 {
        use std::sync::atomic::Ordering;
        // ordering: weakened from SeqCst in a refactor.
        self.epoch.load(Ordering::Acquire)
    }
}
