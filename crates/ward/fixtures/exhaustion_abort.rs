// Fixture: a capacity-exhaustion abort in arena code.
// The arena-abort gate must flag the assert.
fn seed(idx: usize, cap: usize) {
    assert!(idx < cap, "TreiberStack arena exhausted");
}
