// Fixture: an unsafe block with no `// SAFETY:` comment.
// The unsafe gate must flag line 4.
fn seed(p: *mut u8) {
    unsafe { *p = 0 };
}
