// Fixture: an Ordering use with no `// ordering:` justification.
// The justification gate must flag line 5.
fn seed(flag: &std::sync::atomic::AtomicBool) {
    use std::sync::atomic::Ordering;
    flag.store(true, Ordering::Relaxed);
}
