// Fixture: two ranked locks acquired against their declared order.
// The lock-rank gate must flag the inversion in `bad`.
struct Seed {
    // lock-rank: fixture.outer 10
    outer: std::sync::Mutex<u32>,
    // lock-rank: fixture.inner 20
    inner: std::sync::Mutex<u32>,
}

impl Seed {
    fn bad(&self) {
        let inner = self.inner.lock().unwrap();
        let outer = self.outer.lock().unwrap();
        drop(outer);
        drop(inner);
    }
}
