// Fixture: a Mutex declaration with no `// lock-rank:` annotation.
// The lock-rank gate must flag the undeclared lock.
struct Seed {
    naked: std::sync::Mutex<u32>,
}
