// Fixture replica of crates/alligator/src/stats.rs (shape only).
macro_rules! alloc_counters {
    (
        counters { $( $cname:ident, )* }
        gauges { $( $gname:ident, )* }
    ) => {
        pub struct AllocStats {
            $( pub $cname: AtomicU64, )*
            $( pub $gname: AtomicU64, )*
        }
        pub struct StatsSnapshot {
            $( pub $cname: u64, )*
        }
        impl AllocStats {
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $cname: self.$cname.load(Ordering::Relaxed), )*
                }
            }
        }
        impl StatsSnapshot {
            pub const NAMES: &'static [&'static str] = &[ $( stringify!($cname), )* ];
            pub fn named(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($cname), self.$cname), )* ]
            }
        }
    };
}

alloc_counters! {
    counters {
        gets,
        cache_get_fast,
        io_queue_depth_peak,
    }
    gauges {
        io_inflight,
    }
}
