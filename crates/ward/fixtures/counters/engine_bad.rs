// Fixture replica of crates/simsrv/src/engine.rs with a seeded
// violation: `io_queue_depth_peak` is collected by the run but missing
// from named_counters() — the unplumbed-counter class.
pub struct SimResult {
    pub ops_completed: u64,
    pub cache_get_fast: u64,
    pub io_queue_depth_peak: u64,
}

impl SimResult {
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ops_completed", self.ops_completed),
            ("cache_get_fast", self.cache_get_fast),
        ]
    }

    pub fn metrics_text(&self) -> String {
        let reg = Registry::new();
        reg.import_counters(self.named_counters());
        reg.text_snapshot()
    }
}
