// Fixture replica of crates/wafl/src/cleaner.rs (reporting surface).
impl CleanerPool {
    pub fn metrics_text(&self) -> String {
        let reg = Registry::new();
        reg.import_counters(self.shared.alloc.stats().named());
        let f = self.shared.alloc.infra().io().fault_snapshot();
        reg.counter("io_reconstructed_reads").set(f.reconstructed_reads);
        reg.counter("io_blocks_rebuilt").set(f.blocks_rebuilt);
        reg.gauge("io_inflight_now").set(io_inflight());
        reg.text_snapshot()
    }
}
