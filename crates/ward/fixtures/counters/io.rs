// Fixture replica of crates/blockdev/src/io.rs (FaultSnapshot only).
pub struct FaultSnapshot {
    pub reconstructed_reads: u64,
    pub blocks_rebuilt: u64,
}
