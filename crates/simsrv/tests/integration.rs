//! Simulator integration tests: determinism, config serialization, and
//! cross-scenario sanity.

use wafl_simsrv::config::Era;
use wafl_simsrv::scenario::{chunk_sweep, load_sweep};
use wafl_simsrv::{knee_point, CleanerSetting, SimConfig, Simulator, WorkloadKind};

fn quick(w: WorkloadKind) -> SimConfig {
    let mut c = SimConfig::paper_platform(w);
    c.duration_ns = 200_000_000;
    c.warmup_ns = 50_000_000;
    c
}

#[test]
fn identical_configs_produce_identical_results() {
    let cfg = quick(WorkloadKind::oltp());
    let a = Simulator::new(cfg.clone()).run();
    let b = Simulator::new(cfg).run();
    assert_eq!(a.ops_completed, b.ops_completed);
    assert_eq!(a.blocks_written, b.blocks_written);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.usage, b.usage);
    assert_eq!(a.refills, b.refills);
}

#[test]
fn different_seeds_differ_only_stochastically() {
    let mut a_cfg = quick(WorkloadKind::oltp());
    a_cfg.seed = 1;
    let mut b_cfg = quick(WorkloadKind::oltp());
    b_cfg.seed = 2;
    let a = Simulator::new(a_cfg).run();
    let b = Simulator::new(b_cfg).run();
    // Same config, different RNG: results close but (almost surely) not
    // byte-identical.
    let ratio = a.throughput_ops / b.throughput_ops;
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds shift results mildly: {ratio}"
    );
}

#[test]
fn config_round_trips_through_serde() {
    let cfg = quick(WorkloadKind::random_write());
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    let a = Simulator::new(cfg).run();
    let b = Simulator::new(back).run();
    assert_eq!(a.ops_completed, b.ops_completed);
}

#[test]
fn result_serializes_for_experiment_records() {
    let r = Simulator::new(quick(WorkloadKind::sequential_write())).run();
    let json = serde_json::to_string(&r).unwrap();
    assert!(json.contains("throughput_ops"));
    let back: wafl_simsrv::SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.ops_completed, r.ops_completed);
}

#[test]
fn zero_write_workload_never_engages_write_allocation() {
    let mut cfg = quick(WorkloadKind::Oltp {
        op_blocks: 4,
        write_fraction: 0.0,
    });
    cfg.clients = 8;
    let r = Simulator::new(cfg).run();
    assert_eq!(r.usage.cleaner_ns, 0);
    assert_eq!(r.blocks_written, 0);
    assert!(r.ops_completed > 0, "reads still flow");
    assert_eq!(r.refills, 0, "no bucket demand");
}

#[test]
fn think_time_reduces_throughput_not_correctness() {
    let mut busy = quick(WorkloadKind::oltp());
    busy.think_ns = 0;
    let mut idle = quick(WorkloadKind::oltp());
    idle.think_ns = 10_000_000; // 10 ms think per op
    let rb = Simulator::new(busy).run();
    let ri = Simulator::new(idle).run();
    assert!(ri.throughput_ops < rb.throughput_ops);
    assert!(
        ri.latency.mean_ns < rb.latency.mean_ns,
        "off-peak load has lower latency: {} vs {}",
        ri.latency.mean_ns,
        rb.latency.mean_ns
    );
}

#[test]
fn knee_detection_on_a_real_sweep() {
    let cfg = quick(WorkloadKind::oltp());
    let curve = load_sweep(&cfg, &[2, 4, 8, 16, 32, 64]);
    let knee = knee_point(&curve).expect("curve non-empty");
    // The knee is an actual point of the sweep and not the most extreme
    // latency.
    assert!(curve.iter().any(|p| p.load == knee.load));
    let max_lat = curve.iter().map(|p| p.latency_ns).max().unwrap();
    assert!(knee.latency_ns <= max_lat);
}

#[test]
fn single_core_platform_still_functions() {
    let mut cfg = quick(WorkloadKind::sequential_write());
    cfg.cores = 1;
    cfg.clients = 4;
    cfg.cleaners = CleanerSetting::Fixed(1);
    let r = Simulator::new(cfg).run();
    assert!(r.ops_completed > 0);
    assert!(r.total_cores() <= 1.0 + 1e-9);
}

#[test]
fn chunk_one_still_completes_work() {
    // Per-VBN allocation is slow but must remain functionally correct.
    let rows = chunk_sweep(&quick(WorkloadKind::sequential_write()), &[1]);
    assert!(rows[0].1.ops_completed > 0);
    assert!(rows[0].1.refills > 0);
}

#[test]
fn all_eras_complete_all_workloads() {
    for era in [
        Era::SerialWafl,
        Era::ClassicalSerialCleaning,
        Era::ClassicalCleanerThread,
        Era::WhiteAlligator,
    ] {
        for w in [
            WorkloadKind::sequential_write(),
            WorkloadKind::random_write(),
            WorkloadKind::oltp(),
            WorkloadKind::nfs_mix(),
        ] {
            let mut cfg = quick(w);
            cfg.era = era;
            cfg.duration_ns = 100_000_000;
            cfg.warmup_ns = 20_000_000;
            let r = Simulator::new(cfg).run();
            assert!(
                r.ops_completed > 0,
                "era {era:?} workload {w:?} made progress"
            );
        }
    }
}

#[test]
fn dynamic_tuner_stays_within_bounds() {
    let mut cfg = quick(WorkloadKind::sequential_write());
    cfg.cleaners = CleanerSetting::dynamic_default(3);
    let r = Simulator::new(cfg).run();
    assert!(r.avg_active_cleaners >= 1.0 - 1e-9);
    assert!(r.avg_active_cleaners <= 3.0 + 1e-9);
}
