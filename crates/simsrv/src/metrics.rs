//! Measurement: latency distributions, throughput, core-usage accounting,
//! and knee-of-curve detection.

use serde::{Deserialize, Serialize};

/// Online latency statistics over a log-bucketed histogram
/// ([`obs::LogHistogram`]): O(1) record, constant memory, exact
/// count/mean/max, and ceil nearest-rank percentiles within `+1/64`
/// relative error above the true order statistic (never below it).
///
/// Same API as the previous sorted-`Vec` recorder; the quantile
/// semantics are the ones that implementation established — the p-th
/// percentile is the `ceil(p·n)`-th smallest sample (1-based), so p99
/// of 100 samples is the 99th value and p100 is the max (see the
/// regression test against the old implementation below).
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    hist: obs::LogHistogram,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency (ns).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.hist.record(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.hist.count() as usize
    }

    /// Summarize. (`&mut` kept for API compatibility with the sorting
    /// recorder this replaced; the histogram needs no mutation.)
    pub fn stats(&mut self) -> LatencyStats {
        if self.hist.count() == 0 {
            return LatencyStats::default();
        }
        LatencyStats {
            count: self.hist.count(),
            mean_ns: self.hist.mean(),
            p50_ns: self.hist.percentile(0.50),
            p95_ns: self.hist.percentile(0.95),
            p99_ns: self.hist.percentile(0.99),
            p999_ns: self.hist.percentile(0.999),
            max_ns: self.hist.max(),
        }
    }
}

/// Summary of a latency distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Samples measured.
    pub count: u64,
    /// Mean latency (ns).
    pub mean_ns: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// 99.9th percentile (ns) — the tail the serving SLOs gate on.
    pub p999_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

/// One point on a throughput/latency curve (Figs 8–9).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load identifier (e.g., client count).
    pub load: u64,
    /// Achieved throughput, ops/s.
    pub throughput_ops: f64,
    /// Mean latency at that load (ns).
    pub latency_ns: u64,
}

/// Find the "knee" of a latency curve using the half-latency rule of
/// N. Patel (the paper's reference \[11\]): the highest-throughput point
/// whose latency is still at most **twice the baseline** (lowest-load)
/// latency — beyond it, load increases buy disproportionate latency.
///
/// Returns `None` for an empty curve.
pub fn knee_point(points: &[LoadPoint]) -> Option<LoadPoint> {
    let base = points.iter().map(|p| p.latency_ns).min()?;
    points
        .iter()
        .filter(|p| p.latency_ns <= base.saturating_mul(2))
        .max_by(|a, b| {
            a.throughput_ops
                .partial_cmp(&b.throughput_ops)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied()
}

/// Busy-time accounting per simulated component; `cores(x)` = average
/// cores consumed by that component over the measured interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreUsage {
    /// Protocol-stack busy ns.
    pub protocol_ns: u64,
    /// Client Waffinity message busy ns.
    pub client_msg_ns: u64,
    /// Cleaner-thread busy ns.
    pub cleaner_ns: u64,
    /// Write-allocation infrastructure busy ns.
    pub infra_ns: u64,
}

impl CoreUsage {
    /// Average cores used by cleaners.
    pub fn cleaner_cores(&self, elapsed_ns: u64) -> f64 {
        self.cleaner_ns as f64 / elapsed_ns.max(1) as f64
    }

    /// Average cores used by the infrastructure.
    pub fn infra_cores(&self, elapsed_ns: u64) -> f64 {
        self.infra_ns as f64 / elapsed_ns.max(1) as f64
    }

    /// Average cores used by write-allocation work (cleaners + infra) —
    /// the quantity Figures 4–7 plot.
    pub fn write_alloc_cores(&self, elapsed_ns: u64) -> f64 {
        (self.cleaner_ns + self.infra_ns) as f64 / elapsed_ns.max(1) as f64
    }

    /// Average total cores used.
    pub fn total_cores(&self, elapsed_ns: u64) -> f64 {
        (self.protocol_ns + self.client_msg_ns + self.cleaner_ns + self.infra_ns) as f64
            / elapsed_ns.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert a histogram percentile against the exact order statistic:
    /// at or above it, within the histogram's `+1/64` relative error.
    fn assert_pct(got: u64, exact: u64, label: &str) {
        assert!(
            got >= exact && got <= exact + exact / 64 + 1,
            "{label}: got {got}, exact order statistic {exact}"
        );
    }

    #[test]
    fn latency_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(i * 1000);
        }
        let s = r.stats();
        assert_eq!(s.count, 100);
        assert_pct(s.p50_ns, 50_000, "p50");
        assert_pct(s.p95_ns, 95_000, "p95");
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.mean_ns, 50_500);
    }

    #[test]
    fn p99_of_100_samples_is_the_99th_value() {
        // Regression: floor nearest-rank returned the 98th; the histogram
        // must round the rank up before quantizing, so p99 lands in the
        // 99th value's bucket (never the 98th's, which is a full sample
        // below — outside the 1/64 bucket width).
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(i * 1000);
        }
        assert_pct(r.stats().p99_ns, 99_000, "p99");
    }

    #[test]
    fn small_sample_percentiles_round_up() {
        // Nearest-rank on n=10: p99 → ceil(9.9) = 10th value = max;
        // p50 → ceil(5.0) = 5th value.
        let mut r = LatencyRecorder::new();
        for i in 1..=10u64 {
            r.record(i);
        }
        let s = r.stats();
        assert_eq!(s.p50_ns, 5);
        assert_eq!(s.p99_ns, 10);
        assert_eq!(s.p99_ns, s.max_ns);
        // Single sample: every percentile is that sample.
        let mut one = LatencyRecorder::new();
        one.record(42);
        let s = one.stats();
        assert_eq!((s.p50_ns, s.p99_ns, s.max_ns), (42, 42, 42));
    }

    #[test]
    fn repeated_stats_calls_are_stable_and_merge_new_samples() {
        let mut r = LatencyRecorder::new();
        // Record descending — insertion order must not matter.
        for i in (1..=50u64).rev() {
            r.record(i * 1000);
        }
        let first = r.stats();
        assert_eq!(r.stats(), first, "second call re-summarizes identically");
        // Append out-of-order samples after a stats() call; the summary
        // must match a fresh recorder fed everything at once.
        for i in (51..=100u64).rev() {
            r.record(i * 1000);
        }
        let merged = r.stats();
        assert_eq!(merged.count, 100);
        assert_pct(merged.p50_ns, 50_000, "p50");
        assert_pct(merged.p99_ns, 99_000, "p99");
        assert_eq!(merged.max_ns, 100_000);
    }

    #[test]
    fn empty_recorder_yields_zeros() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.stats(), LatencyStats::default());
    }

    /// The sorted-`Vec` recorder this histogram replaced, kept verbatim as
    /// the reference for ceil nearest-rank semantics (ISSUE 5 satellite:
    /// "regression test against the old implementation").
    struct OldRecorder {
        samples: Vec<u64>,
    }

    impl OldRecorder {
        fn pct(&mut self, p: f64) -> u64 {
            self.samples.sort_unstable();
            let n = self.samples.len();
            let rank = (p * n as f64).ceil() as usize;
            self.samples[rank.clamp(1, n) - 1]
        }
    }

    #[test]
    fn histogram_matches_old_sorted_vec_reference() {
        // Deterministic pseudo-random latencies spanning several binades
        // (sub-µs to tens of ms), the realistic range for simulated ops.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut samples = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            samples.push(200 + state.wrapping_mul(0x9e37_79b9_7f4a_7c15) % 50_000_000);
        }
        let mut old = OldRecorder {
            samples: samples.clone(),
        };
        let mut new = LatencyRecorder::new();
        for &s in &samples {
            new.record(s);
        }
        let stats = new.stats();
        for (got, p, label) in [
            (stats.p50_ns, 0.50, "p50"),
            (stats.p95_ns, 0.95, "p95"),
            (stats.p99_ns, 0.99, "p99"),
            (stats.p999_ns, 0.999, "p999"),
        ] {
            assert_pct(got, old.pct(p), label);
        }
        assert_eq!(stats.count, samples.len() as u64);
        assert_eq!(stats.max_ns, *samples.iter().max().unwrap());
        let exact_mean =
            (samples.iter().map(|&s| s as u128).sum::<u128>() / samples.len() as u128) as u64;
        assert_eq!(stats.mean_ns, exact_mean, "mean stays exact");
    }

    #[test]
    fn knee_follows_half_latency_rule() {
        // Latency doubles between load 40 and 50 → knee at 40.
        let curve: Vec<LoadPoint> = vec![
            (10, 1000.0, 100),
            (20, 2000.0, 110),
            (30, 3000.0, 130),
            (40, 3800.0, 180),
            (50, 4000.0, 400),
            (60, 4050.0, 900),
        ]
        .into_iter()
        .map(|(load, throughput_ops, latency_ns)| LoadPoint {
            load,
            throughput_ops,
            latency_ns,
        })
        .collect();
        let knee = knee_point(&curve).unwrap();
        assert_eq!(knee.load, 40);
    }

    #[test]
    fn knee_of_flat_curve_is_max_throughput() {
        let curve: Vec<LoadPoint> = (1..=5)
            .map(|i| LoadPoint {
                load: i,
                throughput_ops: i as f64 * 100.0,
                latency_ns: 100 + i,
            })
            .collect();
        assert_eq!(knee_point(&curve).unwrap().load, 5);
    }

    #[test]
    fn knee_empty_is_none() {
        assert!(knee_point(&[]).is_none());
    }

    #[test]
    fn core_usage_math() {
        let u = CoreUsage {
            protocol_ns: 10,
            client_msg_ns: 30,
            cleaner_ns: 40,
            infra_ns: 20,
        };
        assert!((u.total_cores(100) - 1.0).abs() < 1e-9);
        assert!((u.write_alloc_cores(100) - 0.6).abs() < 1e-9);
        assert!((u.cleaner_cores(10) - 4.0).abs() < 1e-9);
    }
}
