//! # wafl-simsrv — a discrete-event model of a many-core storage server
//!
//! The paper's evaluation (§V) runs on 20-core NetApp storage servers
//! driven by Fibre Channel clients. This crate substitutes a
//! **discrete-event simulation** for that testbed (see DESIGN.md §3):
//! CPU cores are explicit resources, Waffinity's exclusion rules gate
//! message concurrency (reusing the *real*
//! [`waffinity::Scheduler`]), cleaner threads are schedulable entities
//! governed by the *real* [`wafl::tuner::DynamicTuner`], and service
//! times come from a calibrated [`config::CostModel`].
//!
//! The couplings that produce the paper's results are structural, not
//! curve-fitted:
//!
//! * client writes are acknowledged from NVRAM but accumulate **dirty
//!   buffers**; when the dirty pool hits its limit, admission throttles —
//!   so sustained throughput equals the cleaning rate (the write-allocation
//!   bottleneck of §I);
//! * cleaner quanta need **buckets**; the bucket cache is refilled by
//!   **infrastructure messages** whose concurrency depends on
//!   [`alligator::InfraMode`] — `Serial` maps every message to one
//!   affinity (at most one at a time), `Parallel` spreads them over Range
//!   affinities (§IV-B2);
//! * free-stage commits charge CPU per **distinct metafile block**
//!   touched: sequential overwrites free contiguous VBNs (≈1 block per
//!   stage), random overwrites scatter frees across the VBN space (tens
//!   to hundreds of blocks per stage) — the paper's explanation for the
//!   inverted gains of Figure 7;
//! * each active cleaner adds lock-contention overhead to bucket-cache
//!   synchronization, so *too many* cleaners hurt (Figure 8's 3-thread
//!   regression), which is what the dynamic tuner navigates.
//!
//! [`scenario`] packages the parameter sweeps behind every figure; the
//! `wafl-bench` crate's `fig*` binaries print the resulting tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod workload;

pub use config::{CleanerSetting, CostModel, FaultConfig, SimConfig};
pub use engine::{SimResult, Simulator};
pub use metrics::{knee_point, LatencyStats, LoadPoint};
pub use report::{FigureRow, FigureTable};
pub use scenario::{recovery_sweep, RecoveryRow};
pub use workload::{Workload, WorkloadKind};
