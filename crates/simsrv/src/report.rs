//! Paper-vs-measured reporting helpers shared by the `fig*` binaries.

use crate::engine::SimResult;
use serde::{Deserialize, Serialize};

/// One row of a reproduced figure/table: a named quantity, the paper's
/// reported value (when one exists), and ours.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Row label (e.g., "parallel/parallel gain").
    pub label: String,
    /// The paper's reported value, if it states one.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit for display ("%", "cores", "ops/s", "ms").
    pub unit: String,
}

/// A reproduced figure/table: id, caption, and rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureTable {
    /// Paper artifact id ("fig4", "table-batching", …).
    pub id: String,
    /// What the artifact shows.
    pub caption: String,
    /// The rows.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// New empty table.
    pub fn new(id: impl Into<String>, caption: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            caption: caption.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row with a paper-reported reference value.
    pub fn row(
        &mut self,
        label: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: impl Into<String>,
    ) -> &mut Self {
        self.rows.push(FigureRow {
            label: label.into(),
            paper: Some(paper),
            measured,
            unit: unit.into(),
        });
        self
    }

    /// Append a measurement-only row.
    pub fn row_measured(
        &mut self,
        label: impl Into<String>,
        measured: f64,
        unit: impl Into<String>,
    ) -> &mut Self {
        self.rows.push(FigureRow {
            label: label.into(),
            paper: None,
            measured,
            unit: unit.into(),
        });
        self
    }

    /// Render as an aligned text table (what the `fig*` binaries print).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.caption));
        out.push_str(&format!(
            "{:<44} {:>12} {:>12}  {}\n",
            "quantity", "paper", "measured", "unit"
        ));
        for r in &self.rows {
            let paper = r
                .paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "—".to_string());
            out.push_str(&format!(
                "{:<44} {:>12} {:>12.2}  {}\n",
                r.label, paper, r.measured, r.unit
            ));
        }
        out
    }

    /// Serialize to JSON (machine-readable record for EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureTable serializes")
    }

    /// Append the bucket-cache contention block of a run: home-shard GET
    /// fraction, work-steals, modeled lock-wait time, and blocked GETs.
    /// Measurement-only rows (the paper reports no per-lock numbers).
    pub fn cache_rows(&mut self, label_prefix: &str, r: &SimResult) -> &mut Self {
        let pops = r.cache_get_fast + r.cache_get_steal;
        let fast_pct = if pops > 0 {
            100.0 * r.cache_get_fast as f64 / pops as f64
        } else {
            0.0
        };
        self.row_measured(format!("{label_prefix} GET home-shard hit"), fast_pct, "%")
            .row_measured(
                format!("{label_prefix} GET work-steals"),
                r.cache_get_steal as f64,
                "count",
            )
            .row_measured(
                format!("{label_prefix} shard-lock wait"),
                r.cache_lock_waits_ns as f64 / 1e6,
                "ms",
            )
            .row_measured(
                format!("{label_prefix} blocked GETs"),
                r.cache_blocked_gets as f64,
                "count",
            )
            .row_measured(
                format!("{label_prefix} batched GET extra buckets"),
                r.cache_get_batched as f64,
                "count",
            )
            .row_measured(
                format!("{label_prefix} PUT commit queue high-water"),
                r.put_commit_queue_len as f64,
                "count",
            )
            .row_measured(
                format!("{label_prefix} used-bucket commit time"),
                r.commit_batch_ns as f64 / 1e6,
                "ms",
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_rows() {
        let mut t = FigureTable::new("fig4", "seq write permutations");
        t.row("both parallel gain", 274.0, 265.3, "%");
        t.row_measured("bucket stalls", 12.0, "count");
        let s = t.render();
        assert!(s.contains("fig4"));
        assert!(s.contains("274.00"));
        assert!(s.contains("265.30"));
        assert!(s.contains("—"));
    }

    #[test]
    fn cache_rows_summarize_contention_counters() {
        let mut r = SimResult {
            measured_ns: 1,
            ops_completed: 0,
            blocks_written: 0,
            throughput_ops: 0.0,
            throughput_per_client: 0.0,
            latency: Default::default(),
            usage: Default::default(),
            avg_active_cleaners: 0.0,
            bucket_stalls: 2,
            refills: 0,
            cleaner_messages: 0,
            free_mf_blocks: 0,
            tuner_changes: 0,
            injected_faults: 0,
            fault_retries: 0,
            cache_get_fast: 75,
            cache_get_steal: 25,
            cache_lock_waits_ns: 3_000_000,
            cache_blocked_gets: 2,
            cache_get_batched: 30,
            put_commit_queue_len: 5,
            commit_batch_ns: 2_000_000,
            arena_fresh_mints: 4,
            arena_reuse_hits: 96,
            arena_chunks_retired: 1,
            io_inflight: 0,
            io_queue_depth_peak: 5,
            io_submit_to_complete_ns: 2_000_000,
        };
        let mut t = FigureTable::new("cache", "contention");
        t.cache_rows("sharded", &r);
        assert_eq!(t.rows.len(), 7);
        assert!((t.rows[0].measured - 75.0).abs() < 1e-9, "75% home hits");
        assert!((t.rows[2].measured - 3.0).abs() < 1e-9, "3 ms lock wait");
        assert!((t.rows[4].measured - 30.0).abs() < 1e-9, "batched extras");
        assert!((t.rows[5].measured - 5.0).abs() < 1e-9, "commit high-water");
        assert!((t.rows[6].measured - 2.0).abs() < 1e-9, "2 ms commit time");
        // Zero pops must not divide by zero.
        r.cache_get_fast = 0;
        r.cache_get_steal = 0;
        let mut t2 = FigureTable::new("cache", "contention");
        t2.cache_rows("idle", &r);
        assert_eq!(t2.rows[0].measured, 0.0);
    }

    #[test]
    fn json_roundtrips() {
        let mut t = FigureTable::new("fig7", "random write");
        t.row("gain", 50.0, 48.0, "%");
        let j = t.to_json();
        let back: FigureTable = serde_json::from_str(&j).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].paper, Some(50.0));
    }
}
